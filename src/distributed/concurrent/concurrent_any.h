#ifndef GEMS_DISTRIBUTED_CONCURRENT_CONCURRENT_ANY_H_
#define GEMS_DISTRIBUTED_CONCURRENT_CONCURRENT_ANY_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>

#include "common/status.h"
#include "core/registry.h"
#include "distributed/concurrent/concurrent_summary.h"

/// \file
/// Type-erased concurrent wrapper: ConcurrentSummary over AnySketch, so
/// the engine (and the future gemsd server) can stand up a live,
/// queryable-under-ingest sketch knowing only its registry name. AnySketch
/// is copy-on-write, which composes cleanly with the delta-fold design:
/// publishing shares the global's representation with readers, and the
/// next fold's mutation clones it first (EnsureUnique sees the shared
/// count), so pinned readers always see an immutable version.

namespace gems {

/// A movable handle to a wait-free concurrent type-erased sketch.
/// Construction validates the prototype up front, so the unchecked Update
/// hot path can drop per-item Status plumbing.
class ConcurrentAnySketch {
 public:
  using Options = ConcurrentSummary<AnySketch>::Options;

  ConcurrentAnySketch() = default;
  ConcurrentAnySketch(ConcurrentAnySketch&&) = default;
  ConcurrentAnySketch& operator=(ConcurrentAnySketch&&) = default;

  /// Wraps a concrete prototype handle. The prototype must be non-empty
  /// and accept 64-bit item updates (the only update shape the type-erased
  /// surface carries).
  static Result<ConcurrentAnySketch> Make(AnySketch prototype,
                                          Options options = Options{}) {
    if (!prototype.has_value()) {
      return Status::InvalidArgument(
          "concurrent wrapper needs a non-empty prototype sketch");
    }
    // Probe the update shape on a throwaway copy so a sketch family with
    // no Update(u64) (e.g. edge-sketches) fails here, not silently later.
    AnySketch probe = prototype;
    if (Status s = probe.Update(0); !s.ok()) return s;
    ConcurrentAnySketch any;
    any.prototype_type_ = prototype.type();
    any.impl_ = std::make_unique<ConcurrentSummary<AnySketch>>(
        prototype, options);
    return any;
  }

  /// Builds the prototype from the registry by stable type name (e.g.
  /// "hyperloglog"), with library-default parameters. Callers must have
  /// populated the registry (RegisterBuiltinSketches) first.
  static Result<ConcurrentAnySketch> MakeByName(const std::string& name,
                                                Options options = Options{}) {
    const SketchRegistry::Entry* entry =
        SketchRegistry::Global().FindByName(name);
    if (entry == nullptr || !entry->make_default) {
      return Status::NotFound("no registered sketch type named '" + name +
                              "' with a default factory");
    }
    return Make(entry->make_default(), options);
  }

  bool has_value() const { return impl_ != nullptr; }
  SketchTypeId type() const { return prototype_type_; }

  /// Thread-safe wait-free item update (buffered; see ConcurrentSummary).
  void Update(uint64_t item) { impl_->Update(item); }

  /// Thread-safe batch update through AnySketch's native batch dispatch.
  void UpdateBatch(std::span<const uint64_t> items) {
    impl_->UpdateBatch(items);
  }

  /// Wait-free one-line estimate of the published version.
  std::string EstimateSummary() const {
    return impl_->Query(
        [](const AnySketch& s) { return s.EstimateSummary(); });
  }

  /// Consistent bounded-staleness snapshot (read-your-writes for the
  /// calling thread); the returned handle is an independent COW copy.
  Result<AnySketch> Snapshot() const { return impl_->Snapshot(); }

  /// Publication version; monotone staleness probe.
  uint64_t epoch() const { return impl_->epoch(); }

  /// Folds and publishes the calling thread's residual state.
  void FlushLocal() const { impl_->FlushLocal(); }

 private:
  std::unique_ptr<ConcurrentSummary<AnySketch>> impl_;
  SketchTypeId prototype_type_{};
};

}  // namespace gems

#endif  // GEMS_DISTRIBUTED_CONCURRENT_CONCURRENT_ANY_H_
