#ifndef GEMS_DISTRIBUTED_CONCURRENT_CONCURRENT_ANY_H_
#define GEMS_DISTRIBUTED_CONCURRENT_CONCURRENT_ANY_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>

#include "common/status.h"
#include "core/registry.h"
#include "distributed/concurrent/concurrent_summary.h"

/// \file
/// Type-erased concurrent wrapper: ConcurrentSummary over AnySketch, so
/// the engine (and the future gemsd server) can stand up a live,
/// queryable-under-ingest sketch knowing only its registry name. AnySketch
/// is copy-on-write, which composes cleanly with the delta-fold design:
/// publishing shares the global's representation with readers, and the
/// next fold's mutation clones it first (EnsureUnique sees the shared
/// count), so pinned readers always see an immutable version.

namespace gems {

/// A movable handle to a wait-free concurrent type-erased sketch.
/// Construction validates the prototype up front, so the unchecked Update
/// hot path can drop per-item Status plumbing.
class ConcurrentAnySketch {
 public:
  using Options = ConcurrentSummary<AnySketch>::Options;

  ConcurrentAnySketch() = default;
  ConcurrentAnySketch(ConcurrentAnySketch&&) = default;
  ConcurrentAnySketch& operator=(ConcurrentAnySketch&&) = default;

  /// Wraps a concrete prototype handle. The prototype must be non-empty
  /// and accept 64-bit item updates (the only update shape the type-erased
  /// surface carries).
  static Result<ConcurrentAnySketch> Make(AnySketch prototype,
                                          Options options = Options{}) {
    if (!prototype.has_value()) {
      return Status::InvalidArgument(
          "concurrent wrapper needs a non-empty prototype sketch");
    }
    // Probe the update shape on a throwaway copy so a sketch family with
    // no Update(u64) (e.g. edge-sketches) fails here, not silently later.
    AnySketch probe = prototype;
    if (Status s = probe.Update(0); !s.ok()) return s;
    ConcurrentAnySketch any;
    any.prototype_type_ = prototype.type();
    any.impl_ = std::make_unique<ConcurrentSummary<AnySketch>>(
        prototype, options);
    return any;
  }

  /// Builds the prototype from the registry by stable type name (e.g.
  /// "hyperloglog"), with library-default parameters. Callers must have
  /// populated the registry (RegisterBuiltinSketches) first.
  static Result<ConcurrentAnySketch> MakeByName(const std::string& name,
                                                Options options = Options{}) {
    const SketchRegistry::Entry* entry =
        SketchRegistry::Global().FindByName(name);
    if (entry == nullptr || !entry->make_default) {
      return Status::NotFound("no registered sketch type named '" + name +
                              "' with a default factory");
    }
    return Make(entry->make_default(), options);
  }

  /// Builds the prototype from the registry by stable type name with
  /// explicit window/decay parameters — the gemsd CREATE path for the time
  /// family. kNotFound for names without a timed factory; parameter
  /// validation surfaces as the factory's kInvalidArgument.
  static Result<ConcurrentAnySketch> MakeTimedByName(
      const std::string& name, const TimedSketchParams& params,
      Options options = Options{}) {
    const SketchRegistry::Entry* entry =
        SketchRegistry::Global().FindByName(name);
    if (entry == nullptr || !entry->make_timed) {
      return Status::NotFound("no registered sketch type named '" + name +
                              "' with a timed factory");
    }
    Result<AnySketch> made = entry->make_timed(params);
    if (!made.ok()) return made.status();
    return Make(std::move(made).value(), options);
  }

  bool has_value() const { return impl_ != nullptr; }
  SketchTypeId type() const { return prototype_type_; }

  /// Thread-safe wait-free item update (buffered; see ConcurrentSummary).
  void Update(uint64_t item) { impl_->Update(item); }

  /// Thread-safe batch update through AnySketch's native batch dispatch.
  void UpdateBatch(std::span<const uint64_t> items) {
    impl_->UpdateBatch(items);
  }

  /// Folds a batch straight into the global state under the fold mutex
  /// and publishes before returning — the request-scoped ingest path for
  /// servers fronting very many keys. The per-thread slot machinery binds
  /// one TLS entry per (thread, instance) and its lookup is linear in the
  /// instances a thread has touched, which is exactly wrong for a daemon
  /// whose threads touch millions of keys; this path skips it entirely
  /// while still going through the batched (SIMD-dispatched) UpdateBatch
  /// fast path. Ack-visible: once this returns, every subsequent query on
  /// any thread sees the items.
  Status ApplyBatch(std::span<const uint64_t> items) {
    return impl_->FoldExternal(
        [&](AnySketch& global) { return global.UpdateBatch(items); });
  }

  /// Folds a timestamped batch into the global state and publishes — the
  /// timed analogue of ApplyBatch. Pane rotation and decay happen inside
  /// the fold, so the new epoch is published atomically: readers see
  /// either the pre-rotation or post-rotation state, and Estimate() stays
  /// one atomic load throughout. Untimed sketches ingest the items and
  /// ignore the timestamps.
  Status ApplyBatchTimed(std::span<const uint64_t> timestamps,
                         std::span<const uint64_t> items) {
    return impl_->FoldExternal([&](AnySketch& global) {
      return global.UpdateBatchTimed(timestamps, items);
    });
  }

  /// Advances a timed sketch's clock (rotating/expiring panes, decaying
  /// counts) and publishes the result as a new epoch. kUnimplemented for
  /// untimed sketches.
  Status Advance(uint64_t now) {
    return impl_->FoldExternal(
        [&](AnySketch& global) { return global.Advance(now); });
  }

  /// Wait-free one-line estimate of the published version.
  std::string EstimateSummary() const {
    return impl_->Query(
        [](const AnySketch& s) { return s.EstimateSummary(); });
  }

  /// Wait-free typed whole-sketch estimate with bounds, read from the
  /// epoch-published version — never blocks or is blocked by ingest.
  /// kUnimplemented for families without a global estimate.
  Result<gems::Estimate> EstimateWithBounds(double confidence = 0.95) const {
    return impl_->Query([&](const AnySketch& s) {
      return s.EstimateWithBounds(confidence);
    });
  }

  /// Wait-free typed per-item estimate (frequency families).
  Result<gems::Estimate> EstimateItemWithBounds(
      uint64_t item, double confidence = 0.95) const {
    return impl_->Query([&](const AnySketch& s) {
      return s.EstimateItemWithBounds(item, confidence);
    });
  }

  /// Merges a wrapped serialized peer into the live state, zero-copy for
  /// families with a view merge. Type mismatches and parameter-mismatched
  /// merges surface as the sketch's own typed status; nothing is
  /// published on failure. The view's bytes are only borrowed for the
  /// duration of the call.
  Status MergeFromView(const SketchView& view) {
    if (view.type() != prototype_type_) {
      return Status::InvalidArgument(
          std::string("cannot merge sketch type ") + view.type_name() +
          " into " + SketchTypeName(prototype_type_));
    }
    return impl_->FoldExternal(
        [&](AnySketch& global) { return global.MergeFromView(view); });
  }

  /// Merges a materialized peer handle into the live state.
  Status Merge(const AnySketch& other) {
    return impl_->FoldExternal(
        [&](AnySketch& global) { return global.Merge(other); });
  }

  /// Replaces the live state wholesale — the checkpoint-restore entry
  /// point. `state` must be the same sketch type. Call before concurrent
  /// writers start (on a freshly built instance); residual deltas from
  /// earlier writers would otherwise fold into the replaced state.
  Status Reset(AnySketch state) {
    if (!state.has_value() || state.type() != prototype_type_) {
      return Status::InvalidArgument(
          "reset needs a non-empty sketch of the wrapped type");
    }
    return impl_->FoldExternal([&](AnySketch& global) {
      global = std::move(state);
      return Status::Ok();
    });
  }

  /// Consistent bounded-staleness snapshot (read-your-writes for the
  /// calling thread); the returned handle is an independent COW copy.
  Result<AnySketch> Snapshot() const { return impl_->Snapshot(); }

  /// Publication version; monotone staleness probe.
  uint64_t epoch() const { return impl_->epoch(); }

  /// Folds and publishes the calling thread's residual state.
  void FlushLocal() const { impl_->FlushLocal(); }

 private:
  std::unique_ptr<ConcurrentSummary<AnySketch>> impl_;
  SketchTypeId prototype_type_{};
};

}  // namespace gems

#endif  // GEMS_DISTRIBUTED_CONCURRENT_CONCURRENT_ANY_H_
