#ifndef GEMS_DISTRIBUTED_CONCURRENT_EPOCH_H_
#define GEMS_DISTRIBUTED_CONCURRENT_EPOCH_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <type_traits>
#include <utility>

/// \file
/// Epoch-versioned publication: the snapshot half of the wait-free
/// concurrent-sketch design (Rinberg et al., "Fast Concurrent Data
/// Sketches"). A single serialized publisher alternates between two
/// buffered copies of a value; an epoch counter names the stable copy.
/// Readers pin a copy, verify the epoch did not move, and read without
/// ever taking a lock — a reader can delay the *next* publication (the
/// publisher waits for pins on the buffer it wants to overwrite), but it
/// can never block another reader or an ingesting writer.

namespace gems {

/// Double-buffered, epoch-versioned published value.
///
/// Concurrency contract:
///   - Publish() calls must be externally serialized (the concurrent
///     wrapper calls it under its fold mutex, or from the one background
///     propagator thread).
///   - Read()/epoch() may be called from any number of threads at any
///     time. Read never blocks: it retries only when a publication landed
///     between its epoch load and its pin, so retries are bounded by the
///     publish rate, not by other readers.
///
/// Memory-ordering argument (all epoch/pin operations are seq_cst):
///   - Publisher writes the inactive buffer, then stores epoch e+1.
///     A reader that observes e+1 therefore observes the full write.
///   - Before overwriting a buffer (publishing e+2 over version e), the
///     publisher waits for that buffer's pin count to drop to zero. A
///     reader's value accesses happen-before its releasing unpin, which
///     the publisher's pin load observes — so no buffer is mutated while
///     a verified reader is inside it.
///   - A reader whose epoch re-check fails unpins without having touched
///     the value, so the transient pin is harmless.
template <typename T>
class EpochPublished {
 public:
  explicit EpochPublished(const T& initial)
      : buffers_{{initial}, {initial}} {}

  EpochPublished(const EpochPublished&) = delete;
  EpochPublished& operator=(const EpochPublished&) = delete;

  /// The current version number; advances by one per publication. Starts
  /// at 0 (the initial value). Monotone, so callers can use it both as a
  /// staleness probe and as a "did anything change" ticket.
  uint64_t epoch() const { return epoch_.load(std::memory_order_seq_cst); }

  /// Runs `fn(const T&)` against a pinned stable version and returns its
  /// result. Never blocks; retries only across concurrent publications.
  template <typename Fn>
  auto Read(Fn&& fn) const {
    using R = std::invoke_result_t<Fn&, const T&>;
    for (;;) {
      const uint64_t e = epoch_.load(std::memory_order_seq_cst);
      const Buffer& buffer = buffers_[e & 1];
      buffer.pins.fetch_add(1, std::memory_order_seq_cst);
      if (epoch_.load(std::memory_order_seq_cst) == e) {
        if constexpr (std::is_void_v<R>) {
          fn(static_cast<const T&>(buffer.value));
          buffer.pins.fetch_sub(1, std::memory_order_release);
          return;
        } else {
          R result = fn(static_cast<const T&>(buffer.value));
          buffer.pins.fetch_sub(1, std::memory_order_release);
          return result;
        }
      }
      // A publication landed under us; this buffer may be getting
      // overwritten. We never touched the value — drop the pin and go
      // around to the fresh epoch.
      buffer.pins.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  /// Overwrites the inactive buffer via `fn(T&)` and advances the epoch.
  /// Waits (with backoff) for stragglers still pinning that buffer two
  /// epochs back; ingest is unaffected while it waits.
  template <typename Fn>
  void Publish(Fn&& fn) {
    const uint64_t e = epoch_.load(std::memory_order_relaxed);
    Buffer& target = buffers_[(e + 1) & 1];
    int spins = 0;
    while (target.pins.load(std::memory_order_seq_cst) != 0) {
      if (++spins < 64) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(20));
      }
    }
    fn(target.value);
    epoch_.store(e + 1, std::memory_order_seq_cst);
  }

 private:
  /// One version of the value plus its reader pin count. Cache-line
  /// aligned so pin traffic on one buffer never invalidates the other.
  struct alignas(64) Buffer {
    T value;
    mutable std::atomic<uint32_t> pins{0};
  };

  Buffer buffers_[2];
  std::atomic<uint64_t> epoch_{0};
};

}  // namespace gems

#endif  // GEMS_DISTRIBUTED_CONCURRENT_EPOCH_H_
