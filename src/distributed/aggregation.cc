#include "distributed/aggregation.h"

// AggregateTree is a template defined in the header; this translation unit
// anchors the library target.
