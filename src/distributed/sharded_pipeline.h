#ifndef GEMS_DISTRIBUTED_SHARDED_PIPELINE_H_
#define GEMS_DISTRIBUTED_SHARDED_PIPELINE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <type_traits>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "common/check.h"
#include "common/status.h"
#include "core/summary.h"
#include "distributed/aggregation.h"
#include "distributed/concurrent/concurrent_summary.h"
#include "distributed/spsc_ring.h"
#include "distributed/thread_pool.h"

/// \file
/// Multi-core sharded ingest: the single-process version of the paper's
/// "many independent workers feed one logical sketch" impact stories
/// (Gigascope's GROUP-BY-many-sketches, Aggregate Knowledge's reach
/// counting), in the shape the concurrent-DataSketches line of work
/// (Rinberg et al.) productionized. Each worker thread owns one private,
/// unsynchronized sketch shard and drains a bounded SPSC ring of
/// pre-chunked item spans, so the hot path is exactly the existing
/// UpdateBatch fast path — zero locks, zero shared cache lines. Each
/// shard is constructed *on its own worker thread*, so under Linux's
/// default first-touch NUMA policy the counter pages land on the node
/// that will hammer them; optional worker pinning keeps the thread (and
/// the pages) there for the pipeline's lifetime. Finish()
/// joins the shards with the parallel merge tree. Mergeability is what
/// makes this exact: the shards are just an n-way partition of the stream,
/// so for order-independent sketches (HLL, Count-Min, Bloom — register
/// max, counter sum, bit OR) the merged root is byte-identical to
/// single-threaded ingest of the same stream.

namespace gems {

namespace pipeline_internal {

/// Backoff for the bounded-ring spin paths: yield a few times, then sleep
/// briefly so a stalled peer (full ring on the producer side, empty ring on
/// the consumer side) does not burn a core. This matters when workers
/// outnumber cores — small CI machines still make progress.
inline void SpinBackoff(int* spins) {
  if (++*spins < 16) {
    std::this_thread::yield();
  } else {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

/// Pins the calling thread to `cpu` (mod the hardware concurrency).
/// Returns true if the affinity call succeeded; always false on platforms
/// without pthread affinity.
inline bool PinCurrentThreadTo(size_t cpu) {
#if defined(__linux__)
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(cpu % hw), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace pipeline_internal

/// A summary the pipeline can shard: mergeable, with one of the batch
/// ingest fast paths.
template <typename S>
concept ShardableSummary =
    MergeableSummary<S> && (BatchItemSummary<S> || BatchInsertableSummary<S> ||
                            BatchValueSummary<S>);

/// Fixed-pool sharded ingest pipeline for one logical sketch.
///
/// Usage:
///   ShardedPipeline<HyperLogLog> pipeline(HyperLogLog(12, 1),
///                                         {.num_workers = 8});
///   pipeline.Push(items);            // as many times as you like
///   Result<HyperLogLog> root = pipeline.Finish();
///
/// Push() pre-chunks the span and hands chunks round-robin to the workers'
/// rings, blocking (with backoff) when a ring is full — bounded queues are
/// the backpressure. The pushed spans are borrowed: the underlying buffer
/// must stay alive and unmodified until Finish() returns.
template <typename S>
  requires ShardableSummary<S>
class ShardedPipeline {
 public:
  /// What the rings carry: 64-bit items for item/membership summaries,
  /// doubles for value (quantile) summaries.
  using Item =
      std::conditional_t<BatchItemSummary<S> || BatchInsertableSummary<S>,
                         uint64_t, double>;

  struct Options {
    /// 0 picks the hardware concurrency. One pool thread per worker.
    size_t num_workers = 0;
    /// Chunks each worker's ring can buffer before Push() blocks.
    size_t ring_capacity = 64;
    /// Items per chunk; the batch size every UpdateBatch call sees.
    size_t chunk_items = 4096;
    /// Fanout of the parallel merge tree in Finish().
    int merge_fanout = 2;
    /// Pins worker i to CPU (pin_offset + i) % hardware_concurrency. With
    /// first-touch shard allocation this keeps each shard's counter pages
    /// and the thread that owns them on the same NUMA node for the
    /// pipeline's lifetime. Best-effort: unsupported platforms and denied
    /// affinity calls are counted, not fatal (see pinned_workers()).
    bool pin_workers = false;
    /// First CPU index for pinning — lets two co-resident pipelines
    /// interleave onto disjoint cores.
    size_t pin_offset = 0;
  };

  explicit ShardedPipeline(const S& prototype, Options options = Options{})
      : options_(options),
        pool_(options.num_workers) {
    GEMS_CHECK(options_.chunk_items >= 1);
    GEMS_CHECK(options_.ring_capacity >= 1);
    GEMS_CHECK(options_.merge_fanout >= 2);
    const size_t workers = pool_.num_threads();
    shards_.resize(workers);
    drained_.Add(workers);
    // First-touch placement: each worker task optionally pins itself, then
    // constructs its own shard, so the shard's counter pages are first
    // written by the thread (and thus allocated on the NUMA node) that will
    // drain into them. The constructor blocks until every shard exists, so
    // borrowing `prototype` and `ready` by reference is safe and Push()
    // never races a null shard pointer.
    WaitGroup ready;
    ready.Add(workers);
    for (size_t i = 0; i < workers; ++i) {
      pool_.Submit([this, i, &prototype, &ready] {
        if (options_.pin_workers &&
            pipeline_internal::PinCurrentThreadTo(options_.pin_offset + i)) {
          pinned_count_.fetch_add(1, std::memory_order_relaxed);
        }
        shards_[i] =
            std::make_unique<Shard>(prototype, options_.ring_capacity);
        ready.Done();
        DrainLoop(i);
        drained_.Done();
      });
    }
    ready.Wait();
  }

  ~ShardedPipeline() {
    if (!finished_) {
      stop_.store(true, std::memory_order_release);
      drained_.Wait();
    }
  }

  ShardedPipeline(const ShardedPipeline&) = delete;
  ShardedPipeline& operator=(const ShardedPipeline&) = delete;

  size_t num_workers() const { return shards_.size(); }

  /// Workers that were successfully pinned to a CPU (0 unless
  /// Options::pin_workers, and possibly fewer than num_workers() when the
  /// platform rejects affinity calls — e.g. restricted cpusets).
  size_t pinned_workers() const {
    return pinned_count_.load(std::memory_order_relaxed);
  }

  const Options& options() const { return options_; }

  /// Routes every worker's ingest into `live` instead of the private
  /// shards, so the sketch is queryable (wait-free, bounded staleness)
  /// *while* the pipeline saturates ingest — the serving-layer shape the
  /// paper's impact stories describe. `live` must be built from a
  /// merge-compatible prototype and outlive the pipeline; must be called
  /// before the first Push. Finish() then returns live->Snapshot(), and
  /// for partition-independent sketches the result is still byte-identical
  /// to sequential ingest once quiesced.
  void PublishTo(ConcurrentSummary<S>* live) {
    GEMS_CHECK(live != nullptr);
    GEMS_CHECK(!pushed_);
    GEMS_CHECK(!finished_);
    live_.store(live, std::memory_order_release);
  }

  /// Feeds a span of items through the pipeline. Chunks go round-robin to
  /// the workers; blocks when the target ring is full. Single producer:
  /// Push must not be called concurrently with itself or Finish.
  void Push(std::span<const Item> items) {
    GEMS_CHECK(!finished_);
    pushed_ = true;
    while (!items.empty()) {
      const size_t n = std::min(items.size(), options_.chunk_items);
      const Chunk chunk{items.data(), n};
      Shard& shard = *shards_[next_shard_];
      next_shard_ = next_shard_ + 1 == shards_.size() ? 0 : next_shard_ + 1;
      int spins = 0;
      while (!shard.ring.TryPush(chunk)) {
        pipeline_internal::SpinBackoff(&spins);
      }
      items = items.subspan(n);
    }
  }

  /// Stops the workers, waits for every ring to drain, and joins the
  /// shards through the parallel merge tree on the same pool (the drain
  /// tasks have exited, so all workers are free for the merges). May be
  /// called once.
  Result<S> Finish() {
    GEMS_CHECK(!finished_);
    finished_ = true;
    stop_.store(true, std::memory_order_release);
    drained_.Wait();
    if (ConcurrentSummary<S>* live = live_.load(std::memory_order_acquire)) {
      // Live mode: every worker flushed its residual into the concurrent
      // global before signalling drained, so the published version is the
      // complete stream; the private shards never saw an item.
      return live->Snapshot();
    }
    std::vector<S> leaves;
    leaves.reserve(shards_.size());
    for (std::unique_ptr<Shard>& shard : shards_) {
      leaves.push_back(std::move(shard->summary));
    }
    return ParallelAggregateTree(std::move(leaves), options_.merge_fanout,
                                 &pool_);
  }

  /// Finish() variant that serializes the merged root straight into a
  /// caller-owned arena (appending, never clearing) and returns the span
  /// of the root's envelope within it — the shape a combiner that ships
  /// its output over the wire wants, with no per-result allocation beyond
  /// the arena's own growth. Requires a sink-serializable summary. May be
  /// called once, instead of Finish().
  Result<ByteSpan> FinishInto(std::vector<uint8_t>* arena)
    requires SinkSerializableSummary<S>
  {
    GEMS_CHECK(arena != nullptr);
    Result<S> root = Finish();
    if (!root.ok()) return root.status();
    ByteSink sink(arena);
    const size_t start = sink.size();
    root.value().SerializeTo(sink);
    return sink.Slice(start, sink.size() - start);
  }

 private:
  /// A borrowed span in ring-slot form (trivially copyable).
  struct Chunk {
    const Item* data = nullptr;
    size_t size = 0;
  };

  /// One worker's world: its ring and its private sketch. Each shard is a
  /// separate heap allocation, so two workers never share a cache line.
  struct Shard {
    Shard(const S& prototype, size_t ring_capacity)
        : ring(ring_capacity), summary(prototype) {}
    SpscRing<Chunk> ring;
    S summary;
  };

  static void Apply(S& summary, const Chunk& chunk) {
    const std::span<const Item> span(chunk.data, chunk.size);
    if constexpr (BatchItemSummary<S>) {
      summary.UpdateBatch(span);
    } else if constexpr (BatchInsertableSummary<S>) {
      summary.InsertBatch(span);
    } else {
      summary.UpdateBatch(span);  // BatchValueSummary.
    }
  }

  /// Applies one chunk to the live concurrent global through its batched
  /// (thread-local buffered) ingest paths — same dispatch as Apply.
  static void ApplyLive(ConcurrentSummary<S>& live, const Chunk& chunk) {
    const std::span<const Item> span(chunk.data, chunk.size);
    if constexpr (BatchItemSummary<S>) {
      live.UpdateBatch(span);
    } else if constexpr (BatchInsertableSummary<S>) {
      live.InsertBatch(span);
    } else {
      live.UpdateBatch(span);  // BatchValueSummary.
    }
  }

  void DrainLoop(size_t index) {
    Shard& shard = *shards_[index];
    // The live pointer is re-checked until first seen non-null: PublishTo
    // must precede the first Push, and the ring hand-off that delivered a
    // chunk also ordered PublishTo's store before it — so no chunk can be
    // applied to the private shard after a publish target was set.
    ConcurrentSummary<S>* live = nullptr;
    const auto apply = [&](const Chunk& chunk) {
      if (live == nullptr) live = live_.load(std::memory_order_acquire);
      if (live != nullptr) {
        ApplyLive(*live, chunk);
      } else {
        Apply(shard.summary, chunk);
      }
    };
    Chunk chunk;
    int spins = 0;
    for (;;) {
      if (shard.ring.TryPop(&chunk)) {
        spins = 0;
        apply(chunk);
      } else if (stop_.load(std::memory_order_acquire)) {
        // Stop was requested after the last Push, so one more empty-check
        // after seeing the flag means the ring is drained for good.
        if (!shard.ring.TryPop(&chunk)) break;
        spins = 0;
        apply(chunk);
      } else {
        pipeline_internal::SpinBackoff(&spins);
      }
    }
    // Fold this worker's buffered/local residual so Finish()'s Snapshot
    // (sequenced after drained_.Wait()) sees the complete stream.
    if (live != nullptr) live->FlushLocal();
  }

  Options options_;
  ThreadPool pool_;
  std::vector<std::unique_ptr<Shard>> shards_;
  WaitGroup drained_;
  std::atomic<size_t> pinned_count_{0};
  std::atomic<bool> stop_{false};
  std::atomic<ConcurrentSummary<S>*> live_{nullptr};
  size_t next_shard_ = 0;
  bool pushed_ = false;
  bool finished_ = false;
};

}  // namespace gems

#endif  // GEMS_DISTRIBUTED_SHARDED_PIPELINE_H_
