#ifndef GEMS_DISTRIBUTED_THREAD_POOL_H_
#define GEMS_DISTRIBUTED_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// \file
/// A fixed pool of worker threads shared by the multi-core subsystems: the
/// ShardedPipeline parks one long-lived drain task per shard on it during
/// ingest, then reuses the freed workers for the parallel merge tree, and
/// the engine's ProcessBatchParallel borrows it per window segment. Task
/// dispatch goes through one mutex-protected FIFO — fine for the coarse
/// tasks scheduled here (a drain loop, a merge group, a bucket of GROUP-BY
/// updates), which each amortize the queue round-trip over thousands of
/// sketch updates. The per-item hot path never touches this queue; it runs
/// inside a task, on SPSC rings and private shards.

namespace gems {

/// Counts outstanding work items; Wait() blocks until the count returns to
/// zero. The usual pattern: Add(n), hand n tasks to the pool, each calls
/// Done() when finished, owner Wait()s.
class WaitGroup {
 public:
  void Add(size_t n);
  void Done();
  void Wait();

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  size_t count_ = 0;
};

/// Fixed-size thread pool draining a FIFO of std::function tasks.
class ThreadPool {
 public:
  /// `num_threads` = 0 picks the hardware concurrency (at least 1).
  explicit ThreadPool(size_t num_threads = 0);

  /// Joins all workers; queued tasks submitted before destruction still
  /// run to completion.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Enqueues one task; returns immediately. Tasks may block (the sharded
  /// pipeline's drain loops do, for their whole lifetime), so callers that
  /// need k concurrently-blocking tasks must size the pool >= k.
  void Submit(std::function<void()> task);

  /// Runs every task on the pool and blocks until all of them finished.
  /// Tasks must be independent of each other (they may run in any order
  /// and concurrently).
  void RunAll(std::vector<std::function<void()>> tasks);

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace gems

#endif  // GEMS_DISTRIBUTED_THREAD_POOL_H_
