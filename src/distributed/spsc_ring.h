#ifndef GEMS_DISTRIBUTED_SPSC_RING_H_
#define GEMS_DISTRIBUTED_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <vector>

#include "common/check.h"

/// \file
/// Bounded single-producer / single-consumer ring buffer: the queue between
/// the sharded pipeline's feeder thread and each worker. One producer and
/// one consumer means the whole protocol is two monotonically increasing
/// counters with acquire/release ordering — no locks, no CAS loops, and the
/// producer and consumer never write the same cache line (the counters are
/// padded apart). Capacity is rounded up to a power of two so the slot
/// index is a mask.

namespace gems {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(size_t capacity) {
    GEMS_CHECK(capacity >= 1);
    size_t rounded = 1;
    while (rounded < capacity) rounded <<= 1;
    slots_.resize(rounded);
    mask_ = rounded - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  size_t capacity() const { return slots_.size(); }

  /// Producer side. Returns false when the ring is full.
  bool TryPush(const T& value) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) == slots_.size()) {
      return false;
    }
    slots_[tail & mask_] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool TryPop(T* out) {
    const size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    *out = slots_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

 private:
  std::vector<T> slots_;
  size_t mask_ = 0;
  /// Consumer-owned and producer-owned counters on separate cache lines so
  /// the hot path never false-shares.
  alignas(64) std::atomic<size_t> head_{0};
  alignas(64) std::atomic<size_t> tail_{0};
};

}  // namespace gems

#endif  // GEMS_DISTRIBUTED_SPSC_RING_H_
