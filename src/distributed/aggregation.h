#ifndef GEMS_DISTRIBUTED_AGGREGATION_H_
#define GEMS_DISTRIBUTED_AGGREGATION_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "core/summary.h"
#include "core/wire.h"
#include "distributed/thread_pool.h"
#include "hash/hash.h"
#include "hash/hashed_batch.h"

/// \file
/// Simulated distributed aggregation: the sensor-network / mergeable-
/// summaries scenario from the paper (q-digest's original motivation, and
/// the PODS 2012 "Mergeable Summaries" formalization). A fleet of nodes
/// each summarizes its local shard; summaries are combined up a fanout-f
/// merge tree. Works with any MergeableSummary; when the summary is also
/// Serializable, the driver accounts the bytes each tree level would send
/// over the network.

namespace gems {

/// Statistics from one tree aggregation.
struct AggregationStats {
  int tree_depth = 0;
  size_t num_merges = 0;
  /// Total wire-format bytes crossing links — full envelopes (header +
  /// payload), exactly what a network transport would carry. Only counted
  /// when summaries are serializable; otherwise 0.
  size_t communication_bytes = 0;
  /// Envelope messages sent (one per serialized summary shipped).
  size_t num_messages = 0;
  /// The share of communication_bytes spent on envelope headers
  /// (num_messages * kWireHeaderSize) rather than sketch payloads.
  size_t envelope_overhead_bytes = 0;
};

/// Routes item `i` of a stream to one of the shards described by a hoisted
/// `InvariantMod` (by hash, the way a load balancer would). Callers routing
/// a whole stream construct the InvariantMod once outside the loop, like
/// every other probe path built on hash/hashed_batch.h, so the per-item
/// reduction is a multiply (or a mask) instead of a hardware divide.
inline size_t ShardOf(uint64_t item, const InvariantMod& num_nodes,
                      uint64_t seed = 17) {
  return static_cast<size_t>(num_nodes(Hash64(item, seed)));
}

/// One-shot convenience overload; prefer the InvariantMod form in loops.
inline size_t ShardOf(uint64_t item, size_t num_nodes, uint64_t seed = 17) {
  GEMS_CHECK(num_nodes >= 1);
  return ShardOf(item, InvariantMod(num_nodes), seed);
}

/// Merges `leaves` up a fanout-`fanout` tree; returns the root summary.
/// The leaves vector is consumed. Stats (depth, merges, bytes) go to
/// `stats` if non-null.
template <typename S>
  requires MergeableSummary<S>
Result<S> AggregateTree(std::vector<S> leaves, int fanout,
                        AggregationStats* stats) {
  GEMS_CHECK(fanout >= 2);
  if (leaves.empty()) {
    return Status::InvalidArgument("no leaves to aggregate");
  }
  AggregationStats local;
  std::vector<S> level = std::move(leaves);
  while (level.size() > 1) {
    ++local.tree_depth;
    std::vector<S> next;
    next.reserve((level.size() + fanout - 1) / fanout);
    for (size_t i = 0; i < level.size(); i += fanout) {
      S combined = std::move(level[i]);
      for (size_t j = i + 1; j < std::min(level.size(), i + fanout); ++j) {
        if constexpr (SerializableSummary<S>) {
          // Serialize() emits the full wire envelope, so this counts what
          // the link would actually carry, checksum and all. Only paid when
          // the caller asked for stats — serializing every absorbed summary
          // would otherwise dominate the merge itself.
          if (stats != nullptr) {
            local.communication_bytes += level[j].Serialize().size();
            ++local.num_messages;
            local.envelope_overhead_bytes += kWireHeaderSize;
          }
        }
        Status s = combined.Merge(level[j]);
        if (!s.ok()) return s;
        ++local.num_merges;
      }
      next.push_back(std::move(combined));
    }
    level = std::move(next);
  }
  if (stats != nullptr) *stats = local;
  return std::move(level.front());
}

/// Convenience: aggregate with default fanout 2 and no stats.
template <typename S>
  requires MergeableSummary<S>
Result<S> AggregateTree(std::vector<S> leaves) {
  return AggregateTree(std::move(leaves), 2, nullptr);
}

/// Parallel merge tree: same pairing and same in-group merge order as
/// AggregateTree, but the groups of each level — which touch disjoint
/// summaries — are merged concurrently on `pool`. Because every individual
/// Merge call is identical to the sequential tree's, the root is
/// byte-identical (Serialize()) to sequential AggregateTree over the same
/// leaves. Stats report depth and merge count only; communication-byte
/// accounting stays on the sequential tree, which remains the reference
/// path.
template <typename S>
  requires MergeableSummary<S>
Result<S> ParallelAggregateTree(std::vector<S> leaves, int fanout,
                                ThreadPool* pool,
                                AggregationStats* stats = nullptr) {
  GEMS_CHECK(fanout >= 2);
  GEMS_CHECK(pool != nullptr);
  if (leaves.empty()) {
    return Status::InvalidArgument("no leaves to aggregate");
  }
  AggregationStats local;
  std::vector<S> level = std::move(leaves);
  const size_t fan = static_cast<size_t>(fanout);
  while (level.size() > 1) {
    ++local.tree_depth;
    const size_t num_groups = (level.size() + fan - 1) / fan;
    local.num_merges += level.size() - num_groups;
    // Each task owns group g: slots are disjoint, so no synchronization
    // beyond the RunAll barrier is needed.
    std::vector<std::optional<S>> next(num_groups);
    std::vector<Status> statuses(num_groups);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(num_groups);
    for (size_t g = 0; g < num_groups; ++g) {
      tasks.push_back([&level, &next, &statuses, fan, g] {
        const size_t begin = g * fan;
        const size_t end = std::min(level.size(), begin + fan);
        S combined = std::move(level[begin]);
        for (size_t j = begin + 1; j < end; ++j) {
          Status s = combined.Merge(level[j]);
          if (!s.ok()) {
            statuses[g] = std::move(s);
            return;
          }
        }
        next[g].emplace(std::move(combined));
      });
    }
    pool->RunAll(std::move(tasks));
    for (const Status& s : statuses) {
      if (!s.ok()) return s;
    }
    std::vector<S> merged;
    merged.reserve(num_groups);
    for (std::optional<S>& slot : next) merged.push_back(std::move(*slot));
    level = std::move(merged);
  }
  if (stats != nullptr) *stats = local;
  return std::move(level.front());
}

}  // namespace gems

#endif  // GEMS_DISTRIBUTED_AGGREGATION_H_
