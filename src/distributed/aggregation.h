#ifndef GEMS_DISTRIBUTED_AGGREGATION_H_
#define GEMS_DISTRIBUTED_AGGREGATION_H_

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "core/summary.h"
#include "core/wire.h"
#include "hash/hash.h"

/// \file
/// Simulated distributed aggregation: the sensor-network / mergeable-
/// summaries scenario from the paper (q-digest's original motivation, and
/// the PODS 2012 "Mergeable Summaries" formalization). A fleet of nodes
/// each summarizes its local shard; summaries are combined up a fanout-f
/// merge tree. Works with any MergeableSummary; when the summary is also
/// Serializable, the driver accounts the bytes each tree level would send
/// over the network.

namespace gems {

/// Statistics from one tree aggregation.
struct AggregationStats {
  int tree_depth = 0;
  size_t num_merges = 0;
  /// Total wire-format bytes crossing links — full envelopes (header +
  /// payload), exactly what a network transport would carry. Only counted
  /// when summaries are serializable; otherwise 0.
  size_t communication_bytes = 0;
  /// Envelope messages sent (one per serialized summary shipped).
  size_t num_messages = 0;
  /// The share of communication_bytes spent on envelope headers
  /// (num_messages * kWireHeaderSize) rather than sketch payloads.
  size_t envelope_overhead_bytes = 0;
};

/// Routes item `i` of a stream to one of `num_nodes` shards (by hash, the
/// way a load balancer would).
inline size_t ShardOf(uint64_t item, size_t num_nodes, uint64_t seed = 17) {
  GEMS_CHECK(num_nodes >= 1);
  return static_cast<size_t>(Hash64(item, seed) % num_nodes);
}

/// Merges `leaves` up a fanout-`fanout` tree; returns the root summary.
/// The leaves vector is consumed. Stats (depth, merges, bytes) go to
/// `stats` if non-null.
template <typename S>
  requires MergeableSummary<S>
Result<S> AggregateTree(std::vector<S> leaves, int fanout,
                        AggregationStats* stats) {
  GEMS_CHECK(fanout >= 2);
  if (leaves.empty()) {
    return Status::InvalidArgument("no leaves to aggregate");
  }
  AggregationStats local;
  std::vector<S> level = std::move(leaves);
  while (level.size() > 1) {
    ++local.tree_depth;
    std::vector<S> next;
    next.reserve((level.size() + fanout - 1) / fanout);
    for (size_t i = 0; i < level.size(); i += fanout) {
      S combined = std::move(level[i]);
      for (size_t j = i + 1; j < std::min(level.size(), i + fanout); ++j) {
        if constexpr (SerializableSummary<S>) {
          // Serialize() emits the full wire envelope, so this counts what
          // the link would actually carry, checksum and all.
          local.communication_bytes += level[j].Serialize().size();
          ++local.num_messages;
          local.envelope_overhead_bytes += kWireHeaderSize;
        }
        Status s = combined.Merge(level[j]);
        if (!s.ok()) return s;
        ++local.num_merges;
      }
      next.push_back(std::move(combined));
    }
    level = std::move(next);
  }
  if (stats != nullptr) *stats = local;
  return std::move(level.front());
}

/// Convenience: aggregate with default fanout 2 and no stats.
template <typename S>
  requires MergeableSummary<S>
Result<S> AggregateTree(std::vector<S> leaves) {
  return AggregateTree(std::move(leaves), 2, nullptr);
}

}  // namespace gems

#endif  // GEMS_DISTRIBUTED_AGGREGATION_H_
