#ifndef GEMS_DISTRIBUTED_AGGREGATION_H_
#define GEMS_DISTRIBUTED_AGGREGATION_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "core/io.h"
#include "core/summary.h"
#include "core/view.h"
#include "core/wire.h"
#include "distributed/thread_pool.h"
#include "hash/hash.h"
#include "hash/hashed_batch.h"

/// \file
/// Simulated distributed aggregation: the sensor-network / mergeable-
/// summaries scenario from the paper (q-digest's original motivation, and
/// the PODS 2012 "Mergeable Summaries" formalization). A fleet of nodes
/// each summarizes its local shard; summaries are combined up a fanout-f
/// merge tree. Works with any MergeableSummary; when the summary is also
/// Serializable, the driver accounts the bytes each tree level would send
/// over the network.

namespace gems {

/// Statistics from one tree aggregation.
struct AggregationStats {
  int tree_depth = 0;
  size_t num_merges = 0;
  /// Total wire-format bytes crossing links — full envelopes (header +
  /// payload), exactly what a network transport would carry. Only counted
  /// when summaries are serializable; otherwise 0.
  size_t communication_bytes = 0;
  /// Envelope messages sent (one per serialized summary shipped).
  size_t num_messages = 0;
  /// The share of communication_bytes spent on envelope headers
  /// (num_messages * kWireHeaderSize) rather than sketch payloads.
  size_t envelope_overhead_bytes = 0;
};

/// Routes item `i` of a stream to one of the shards described by a hoisted
/// `InvariantMod` (by hash, the way a load balancer would). Callers routing
/// a whole stream construct the InvariantMod once outside the loop, like
/// every other probe path built on hash/hashed_batch.h, so the per-item
/// reduction is a multiply (or a mask) instead of a hardware divide.
inline size_t ShardOf(uint64_t item, const InvariantMod& num_nodes,
                      uint64_t seed = 17) {
  return static_cast<size_t>(num_nodes(Hash64(item, seed)));
}

/// One-shot convenience overload; prefer the InvariantMod form in loops.
inline size_t ShardOf(uint64_t item, size_t num_nodes, uint64_t seed = 17) {
  GEMS_CHECK(num_nodes >= 1);
  return ShardOf(item, InvariantMod(num_nodes), seed);
}

/// Merges `leaves` up a fanout-`fanout` tree; returns the root summary.
/// The leaves vector is consumed. Stats (depth, merges, bytes) go to
/// `stats` if non-null.
template <typename S>
  requires MergeableSummary<S>
Result<S> AggregateTree(std::vector<S> leaves, int fanout,
                        AggregationStats* stats) {
  GEMS_CHECK(fanout >= 2);
  if (leaves.empty()) {
    return Status::InvalidArgument("no leaves to aggregate");
  }
  AggregationStats local;
  std::vector<S> level = std::move(leaves);
  while (level.size() > 1) {
    ++local.tree_depth;
    std::vector<S> next;
    next.reserve((level.size() + fanout - 1) / fanout);
    for (size_t i = 0; i < level.size(); i += fanout) {
      S combined = std::move(level[i]);
      for (size_t j = i + 1; j < std::min(level.size(), i + fanout); ++j) {
        if constexpr (SerializableSummary<S>) {
          // Serialize() emits the full wire envelope, so this counts what
          // the link would actually carry, checksum and all. Only paid when
          // the caller asked for stats — serializing every absorbed summary
          // would otherwise dominate the merge itself.
          if (stats != nullptr) {
            local.communication_bytes += level[j].Serialize().size();
            ++local.num_messages;
            local.envelope_overhead_bytes += kWireHeaderSize;
          }
        }
        Status s = combined.Merge(level[j]);
        if (!s.ok()) return s;
        ++local.num_merges;
      }
      next.push_back(std::move(combined));
    }
    level = std::move(next);
  }
  if (stats != nullptr) *stats = local;
  return std::move(level.front());
}

/// Convenience: aggregate with default fanout 2 and no stats.
template <typename S>
  requires MergeableSummary<S>
Result<S> AggregateTree(std::vector<S> leaves) {
  return AggregateTree(std::move(leaves), 2, nullptr);
}

/// Merges serialized leaf envelopes up a fanout-`fanout` tree without
/// materializing them: each leaf-level group materializes only its first
/// envelope (the accumulator) and absorbs the rest via MergeFromView,
/// straight out of the caller's buffers. Upper levels run the ordinary
/// AggregateTree over the group accumulators, so the root is byte-identical
/// (Serialize()) to deserializing every envelope and calling AggregateTree
/// — that equivalence is pinned by tests/view_test.cc.
///
/// This is the fan-in shape of the mergeable-summaries scenario as it
/// actually occurs in production: the combiner holds N serialized blobs
/// (from workers, from a shuffle, from object storage) and wants one root.
/// Stats count the real envelope byte sizes at the leaf level — no
/// re-serialization needed to account communication.
///
/// The envelopes are borrowed and must stay alive and unmodified for the
/// duration of the call.
template <typename S>
  requires MergeableSummary<S> && ViewMergeableSummary<S> &&
           SerializableSummary<S>
Result<S> AggregateTreeFromEnvelopes(std::span<const ByteSpan> envelopes,
                                     int fanout,
                                     AggregationStats* stats = nullptr) {
  GEMS_CHECK(fanout >= 2);
  if (envelopes.empty()) {
    return Status::InvalidArgument("no leaves to aggregate");
  }
  AggregationStats local;
  const size_t fan = static_cast<size_t>(fanout);
  std::vector<S> level;
  level.reserve((envelopes.size() + fan - 1) / fan);
  if (envelopes.size() > 1) ++local.tree_depth;
  for (size_t i = 0; i < envelopes.size(); i += fan) {
    Result<View<S>> first = View<S>::Wrap(envelopes[i]);
    if (!first.ok()) return first.status();
    Result<S> combined = first.value().Materialize();
    if (!combined.ok()) return combined.status();
    const size_t end = std::min(envelopes.size(), i + fan);
    for (size_t j = i + 1; j < end; ++j) {
      Result<View<S>> view = View<S>::Wrap(envelopes[j]);
      if (!view.ok()) return view.status();
      if (stats != nullptr) {
        local.communication_bytes += envelopes[j].size();
        ++local.num_messages;
        local.envelope_overhead_bytes += kWireHeaderSize;
      }
      Status s = combined.value().MergeFromView(view.value());
      if (!s.ok()) return s;
      ++local.num_merges;
    }
    level.push_back(std::move(combined).value());
  }
  AggregationStats upper;
  Result<S> root =
      AggregateTree(std::move(level), fanout, stats ? &upper : nullptr);
  if (!root.ok()) return root.status();
  if (stats != nullptr) {
    local.tree_depth += upper.tree_depth;
    local.num_merges += upper.num_merges;
    local.communication_bytes += upper.communication_bytes;
    local.num_messages += upper.num_messages;
    local.envelope_overhead_bytes += upper.envelope_overhead_bytes;
    *stats = local;
  }
  return root;
}

/// Parallel merge tree: same pairing and same in-group merge order as
/// AggregateTree, but the groups of each level — which touch disjoint
/// summaries — are merged concurrently on `pool`. Because every individual
/// Merge call is identical to the sequential tree's, the root is
/// byte-identical (Serialize()) to sequential AggregateTree over the same
/// leaves. Stats report depth and merge count only; communication-byte
/// accounting stays on the sequential tree, which remains the reference
/// path.
template <typename S>
  requires MergeableSummary<S>
Result<S> ParallelAggregateTree(std::vector<S> leaves, int fanout,
                                ThreadPool* pool,
                                AggregationStats* stats = nullptr) {
  GEMS_CHECK(fanout >= 2);
  GEMS_CHECK(pool != nullptr);
  if (leaves.empty()) {
    return Status::InvalidArgument("no leaves to aggregate");
  }
  AggregationStats local;
  std::vector<S> level = std::move(leaves);
  const size_t fan = static_cast<size_t>(fanout);
  while (level.size() > 1) {
    ++local.tree_depth;
    const size_t num_groups = (level.size() + fan - 1) / fan;
    local.num_merges += level.size() - num_groups;
    // Each task owns group g: slots are disjoint, so no synchronization
    // beyond the RunAll barrier is needed.
    std::vector<std::optional<S>> next(num_groups);
    std::vector<Status> statuses(num_groups);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(num_groups);
    for (size_t g = 0; g < num_groups; ++g) {
      tasks.push_back([&level, &next, &statuses, fan, g] {
        const size_t begin = g * fan;
        const size_t end = std::min(level.size(), begin + fan);
        S combined = std::move(level[begin]);
        for (size_t j = begin + 1; j < end; ++j) {
          Status s = combined.Merge(level[j]);
          if (!s.ok()) {
            statuses[g] = std::move(s);
            return;
          }
        }
        next[g].emplace(std::move(combined));
      });
    }
    pool->RunAll(std::move(tasks));
    for (const Status& s : statuses) {
      if (!s.ok()) return s;
    }
    std::vector<S> merged;
    merged.reserve(num_groups);
    for (std::optional<S>& slot : next) merged.push_back(std::move(*slot));
    level = std::move(merged);
  }
  if (stats != nullptr) *stats = local;
  return std::move(level.front());
}

/// Parallel form of AggregateTreeFromEnvelopes: the leaf-level groups —
/// which wrap and absorb disjoint envelopes — run concurrently on `pool`,
/// then the group accumulators are merged with ParallelAggregateTree.
/// Every individual MergeFromView matches the sequential envelope tree's,
/// so the root is byte-identical to both the sequential envelope tree and
/// the deserialize-everything AggregateTree. Stats report depth and merge
/// count only, like ParallelAggregateTree.
template <typename S>
  requires MergeableSummary<S> && ViewMergeableSummary<S> &&
           SerializableSummary<S>
Result<S> ParallelAggregateTreeFromEnvelopes(
    std::span<const ByteSpan> envelopes, int fanout, ThreadPool* pool,
    AggregationStats* stats = nullptr) {
  GEMS_CHECK(fanout >= 2);
  GEMS_CHECK(pool != nullptr);
  if (envelopes.empty()) {
    return Status::InvalidArgument("no leaves to aggregate");
  }
  AggregationStats local;
  const size_t fan = static_cast<size_t>(fanout);
  const size_t num_groups = (envelopes.size() + fan - 1) / fan;
  if (envelopes.size() > 1) ++local.tree_depth;
  local.num_merges += envelopes.size() - num_groups;
  std::vector<std::optional<S>> slots(num_groups);
  std::vector<Status> statuses(num_groups);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(num_groups);
  for (size_t g = 0; g < num_groups; ++g) {
    tasks.push_back([&envelopes, &slots, &statuses, fan, g] {
      const size_t begin = g * fan;
      const size_t end = std::min(envelopes.size(), begin + fan);
      Result<View<S>> first = View<S>::Wrap(envelopes[begin]);
      if (!first.ok()) {
        statuses[g] = first.status();
        return;
      }
      Result<S> combined = first.value().Materialize();
      if (!combined.ok()) {
        statuses[g] = combined.status();
        return;
      }
      for (size_t j = begin + 1; j < end; ++j) {
        Result<View<S>> view = View<S>::Wrap(envelopes[j]);
        if (!view.ok()) {
          statuses[g] = view.status();
          return;
        }
        Status s = combined.value().MergeFromView(view.value());
        if (!s.ok()) {
          statuses[g] = std::move(s);
          return;
        }
      }
      slots[g].emplace(std::move(combined).value());
    });
  }
  pool->RunAll(std::move(tasks));
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  std::vector<S> level;
  level.reserve(num_groups);
  for (std::optional<S>& slot : slots) level.push_back(std::move(*slot));
  AggregationStats upper;
  Result<S> root = ParallelAggregateTree(std::move(level), fanout, pool,
                                         stats ? &upper : nullptr);
  if (!root.ok()) return root.status();
  if (stats != nullptr) {
    local.tree_depth += upper.tree_depth;
    local.num_merges += upper.num_merges;
    *stats = local;
  }
  return root;
}

}  // namespace gems

#endif  // GEMS_DISTRIBUTED_AGGREGATION_H_
