#ifndef GEMS_DISTRIBUTED_CONCURRENT_H_
#define GEMS_DISTRIBUTED_CONCURRENT_H_

#include <atomic>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "common/check.h"
#include "core/summary.h"

/// \file
/// Thread-safe wrapper for any mergeable summary, in the spirit of the
/// concurrent DataSketches work (Rinberg et al., TOPC 2022) the paper
/// cites: writers update striped local copies under per-stripe locks
/// (contention-free for typical thread counts), and readers merge a
/// snapshot. Mergeability is exactly what makes this sound: the striped
/// copies are just an n-way partition of the stream.

namespace gems {

/// Striped concurrent wrapper around a mergeable summary S.
/// S must be copyable; all stripes start as copies of the prototype, so
/// they are merge-compatible by construction.
template <typename S>
  requires MergeableSummary<S>
class ConcurrentSummary {
 public:
  /// All stripes are clones of `prototype` (same seed/shape).
  /// `num_stripes` = 0 picks the hardware concurrency; any value is
  /// rounded up to a power of two and clamped to [1, kMaxStripes] so the
  /// stripe selector can mask instead of divide.
  explicit ConcurrentSummary(const S& prototype, size_t num_stripes = 0)
      : stripes_(ResolveStripes(num_stripes)) {
    for (Stripe& stripe : stripes_) stripe.summary.emplace(prototype);
  }

  ConcurrentSummary(const ConcurrentSummary&) = delete;
  ConcurrentSummary& operator=(const ConcurrentSummary&) = delete;

  /// Upper bound on the stripe count (a 256-way partition already exceeds
  /// any machine this library targets).
  static constexpr size_t kMaxStripes = 256;

  size_t num_stripes() const { return stripes_.size(); }

  /// Thread-safe update; forwards `args` to S::Update on this thread's
  /// stripe.
  template <typename... Args>
  void Update(Args&&... args) {
    Stripe& stripe = stripes_[StripeIndex()];
    std::lock_guard<std::mutex> lock(stripe.mutex);
    stripe.summary->Update(std::forward<Args>(args)...);
  }

  /// Thread-safe batch drain: acquires this thread's stripe lock once and
  /// feeds the whole span through the summary's batch fast path. This is
  /// the concurrent analogue of UpdateBatch — one lock round-trip per
  /// batch instead of one per item.
  void UpdateBatch(std::span<const uint64_t> items)
    requires BatchItemSummary<S>
  {
    Stripe& stripe = stripes_[StripeIndex()];
    std::lock_guard<std::mutex> lock(stripe.mutex);
    stripe.summary->UpdateBatch(items);
  }

  /// Batch drain for membership filters (InsertBatch entry point).
  void InsertBatch(std::span<const uint64_t> keys)
    requires BatchInsertableSummary<S>
  {
    Stripe& stripe = stripes_[StripeIndex()];
    std::lock_guard<std::mutex> lock(stripe.mutex);
    stripe.summary->InsertBatch(keys);
  }

  /// Merged snapshot of all stripes (readers pay the merge; writers are
  /// only briefly blocked one stripe at a time). Stripes are clones of one
  /// prototype, so merges should always succeed — but a failure (e.g. a
  /// summary whose Merge has data-dependent preconditions) is propagated
  /// to the caller rather than aborting the process.
  Result<S> Snapshot() const {
    S merged = [&] {
      std::lock_guard<std::mutex> lock(stripes_[0].mutex);
      return *stripes_[0].summary;
    }();
    for (size_t i = 1; i < stripes_.size(); ++i) {
      std::lock_guard<std::mutex> lock(stripes_[i].mutex);
      Status s = merged.Merge(*stripes_[i].summary);
      if (!s.ok()) return s;
    }
    return merged;
  }

 private:
  struct Stripe {
    mutable std::mutex mutex;
    std::optional<S> summary;  // Emplaced in the constructor.
  };

  static size_t ResolveStripes(size_t requested) {
    size_t n = requested != 0
                   ? requested
                   : static_cast<size_t>(std::thread::hardware_concurrency());
    if (n == 0) n = 1;  // hardware_concurrency may be unknown.
    if (n > kMaxStripes) n = kMaxStripes;
    size_t rounded = 1;
    while (rounded < n) rounded <<= 1;
    return rounded;
  }

  size_t StripeIndex() const {
    // Round-robin stripe assignment: each thread draws one token from an
    // atomic counter on its first touch and keeps it for life. Hashing the
    // thread id (the previous scheme) could map several threads to one
    // stripe while others sat idle; with sequential tokens, any k <=
    // num_stripes() threads whose tokens are consecutive (the common case:
    // a worker fleet spun up together) land on k distinct stripes, because
    // consecutive integers are distinct under a power-of-two mask.
    static std::atomic<size_t> next_token{0};
    thread_local const size_t token =
        next_token.fetch_add(1, std::memory_order_relaxed);
    return token & (stripes_.size() - 1);
  }

  // Count-constructed once and never resized (Stripe is immovable).
  std::vector<Stripe> stripes_;
};

}  // namespace gems

#endif  // GEMS_DISTRIBUTED_CONCURRENT_H_
