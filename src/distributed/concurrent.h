#ifndef GEMS_DISTRIBUTED_CONCURRENT_H_
#define GEMS_DISTRIBUTED_CONCURRENT_H_

/// \file
/// Forwarding header, kept so existing includes of
/// "distributed/concurrent.h" keep working. The striped-mutex wrapper
/// that used to live here was replaced by the wait-free
/// local-buffer/propagator design in distributed/concurrent/ — same name,
/// same core API surface (Update / UpdateBatch / InsertBatch / Snapshot),
/// plus wait-free Estimate / EstimateWithBounds / Query / epoch.

#include "distributed/concurrent/concurrent_any.h"      // IWYU pragma: export
#include "distributed/concurrent/concurrent_summary.h"  // IWYU pragma: export
#include "distributed/concurrent/epoch.h"               // IWYU pragma: export

#endif  // GEMS_DISTRIBUTED_CONCURRENT_H_
