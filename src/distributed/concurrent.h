#ifndef GEMS_DISTRIBUTED_CONCURRENT_H_
#define GEMS_DISTRIBUTED_CONCURRENT_H_

#include <array>
#include <mutex>
#include <optional>
#include <thread>

#include "common/check.h"
#include "core/summary.h"

/// \file
/// Thread-safe wrapper for any mergeable summary, in the spirit of the
/// concurrent DataSketches work (Rinberg et al., TOPC 2022) the paper
/// cites: writers update striped local copies under per-stripe locks
/// (contention-free for typical thread counts), and readers merge a
/// snapshot. Mergeability is exactly what makes this sound: the striped
/// copies are just a 16-way partition of the stream.

namespace gems {

/// Striped concurrent wrapper around a mergeable summary S.
/// S must be copyable; all stripes start as copies of the prototype, so
/// they are merge-compatible by construction.
template <typename S>
  requires MergeableSummary<S>
class ConcurrentSummary {
 public:
  static constexpr size_t kStripes = 16;

  /// All stripes are clones of `prototype` (same seed/shape).
  explicit ConcurrentSummary(const S& prototype) {
    for (size_t i = 0; i < kStripes; ++i) {
      stripes_[i].summary.emplace(prototype);
    }
  }

  ConcurrentSummary(const ConcurrentSummary&) = delete;
  ConcurrentSummary& operator=(const ConcurrentSummary&) = delete;

  /// Thread-safe update; forwards `args` to S::Update on this thread's
  /// stripe.
  template <typename... Args>
  void Update(Args&&... args) {
    Stripe& stripe = stripes_[StripeIndex()];
    std::lock_guard<std::mutex> lock(stripe.mutex);
    stripe.summary->Update(std::forward<Args>(args)...);
  }

  /// Merged snapshot of all stripes (readers pay the merge; writers are
  /// only briefly blocked one stripe at a time). Stripes are clones of one
  /// prototype, so merges should always succeed — but a failure (e.g. a
  /// summary whose Merge has data-dependent preconditions) is propagated
  /// to the caller rather than aborting the process.
  Result<S> Snapshot() const {
    S merged = [&] {
      std::lock_guard<std::mutex> lock(stripes_[0].mutex);
      return *stripes_[0].summary;
    }();
    for (size_t i = 1; i < kStripes; ++i) {
      std::lock_guard<std::mutex> lock(stripes_[i].mutex);
      Status s = merged.Merge(*stripes_[i].summary);
      if (!s.ok()) return s;
    }
    return merged;
  }

 private:
  struct Stripe {
    mutable std::mutex mutex;
    std::optional<S> summary;  // Emplaced in the constructor.
  };

  static size_t StripeIndex() {
    // Hash the thread id once per thread.
    static thread_local const size_t index =
        std::hash<std::thread::id>{}(std::this_thread::get_id()) % kStripes;
    return index;
  }

  std::array<Stripe, kStripes> stripes_;
};

}  // namespace gems

#endif  // GEMS_DISTRIBUTED_CONCURRENT_H_
