#include "distributed/thread_pool.h"

#include <utility>

namespace gems {

void WaitGroup::Add(size_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  count_ += n;
}

void WaitGroup::Done() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (--count_ == 0) cv_.notify_all();
}

void WaitGroup::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return count_ == 0; });
}

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = num_threads != 0
                 ? num_threads
                 : static_cast<size_t>(std::thread::hardware_concurrency());
  if (n == 0) n = 1;  // hardware_concurrency may be unknown.
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::RunAll(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  WaitGroup done;
  done.Add(tasks.size());
  for (std::function<void()>& task : tasks) {
    Submit([task = std::move(task), &done] {
      task();
      done.Done();
    });
  }
  done.Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and nothing left to drain.
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

}  // namespace gems
