#ifndef GEMS_QUANTILES_MRL_H_
#define GEMS_QUANTILES_MRL_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

/// \file
/// Manku-Rajagopalan-Lindsay quantiles (SIGMOD 1998): the adaptation of
/// Munro-Paterson's multi-pass selection to one streaming pass that the
/// paper places at the head of the quantile lineage (MRL -> GK ->
/// q-digest -> KLL). Maintains b buffers of k sorted elements with
/// weights; full buffers COLLAPSE (merge-and-thin) into one buffer of
/// doubled weight. KLL is this scheme with randomized thinning and
/// geometric capacities; MRL's deterministic odd-index thinning gives a
/// deterministic guarantee at O((1/eps) log^2(eps n)) space.

namespace gems {

/// MRL summary with `num_buffers` buffers of `buffer_size` elements.
class MrlSketch {
 public:
  MrlSketch(size_t num_buffers, size_t buffer_size);

  /// Sizes a sketch for roughly eps rank error at stream length n.
  static MrlSketch ForAccuracy(double epsilon, uint64_t expected_n);

  MrlSketch(const MrlSketch&) = default;
  MrlSketch& operator=(const MrlSketch&) = default;
  MrlSketch(MrlSketch&&) = default;
  MrlSketch& operator=(MrlSketch&&) = default;

  /// Inserts a value.
  void Update(double value);

  /// Approximate value at quantile q; requires >= 1 update.
  double Quantile(double q) const;

  /// Estimated rank of `value`.
  uint64_t Rank(double value) const;

  /// Merges another MRL sketch (same shape).
  Status Merge(const MrlSketch& other);

  uint64_t Count() const { return count_; }
  size_t NumRetained() const;
  size_t MemoryBytes() const { return NumRetained() * sizeof(double); }

 private:
  struct Buffer {
    uint64_t weight = 0;          // 0 = empty/free.
    std::vector<double> values;   // Sorted once full.
  };

  /// Collapses the two (or more) lowest-weight full buffers into one.
  void CollapseIfNeeded();
  static Buffer Collapse(const std::vector<const Buffer*>& inputs,
                         size_t buffer_size);

  size_t num_buffers_;
  size_t buffer_size_;
  uint64_t count_ = 0;
  std::vector<double> incoming_;  // Fills the next weight-1 buffer.
  std::vector<Buffer> buffers_;
};

}  // namespace gems

#endif  // GEMS_QUANTILES_MRL_H_
