#include "quantiles/mrl.h"

#include <algorithm>
#include <cmath>

#include "common/bits.h"
#include "common/check.h"
#include "simd/dispatch.h"

namespace gems {

MrlSketch::MrlSketch(size_t num_buffers, size_t buffer_size)
    : num_buffers_(num_buffers), buffer_size_(buffer_size) {
  GEMS_CHECK(num_buffers >= 2);
  GEMS_CHECK(buffer_size >= 2);
  buffers_.resize(num_buffers);
  incoming_.reserve(buffer_size);
}

MrlSketch MrlSketch::ForAccuracy(double epsilon, uint64_t expected_n) {
  GEMS_CHECK(epsilon > 0.0 && epsilon < 0.5);
  GEMS_CHECK(expected_n >= 1);
  // MRL error after the collapse tree is roughly (#levels)/(2*buffer_size)
  // in rank fraction; levels ~ log2(eps*n). Solve conservatively.
  const double levels =
      std::max(2.0, std::log2(epsilon * static_cast<double>(expected_n)) + 2);
  const size_t buffer_size = static_cast<size_t>(
      std::max(8.0, std::ceil(levels / epsilon / 2.0)));
  const size_t num_buffers = static_cast<size_t>(levels) + 2;
  return MrlSketch(num_buffers, buffer_size);
}

void MrlSketch::Update(double value) {
  incoming_.push_back(value);
  ++count_;
  if (incoming_.size() < buffer_size_) return;
  // Seal the incoming buffer as a weight-1 buffer.
  CollapseIfNeeded();
  for (Buffer& buffer : buffers_) {
    if (buffer.weight == 0) {
      buffer.weight = 1;
      buffer.values = std::move(incoming_);
      simd::Kernels().sort_doubles(buffer.values.data(),
                                   buffer.values.size());
      incoming_.clear();
      incoming_.reserve(buffer_size_);
      return;
    }
  }
  GEMS_CHECK(false);  // CollapseIfNeeded must have freed a slot.
}

void MrlSketch::CollapseIfNeeded() {
  size_t full = 0;
  for (const Buffer& buffer : buffers_) full += buffer.weight > 0 ? 1 : 0;
  if (full < num_buffers_) return;

  // Collapse the two lowest-weight buffers into one.
  size_t first = num_buffers_, second = num_buffers_;
  for (size_t i = 0; i < buffers_.size(); ++i) {
    if (buffers_[i].weight == 0) continue;
    if (first == num_buffers_ ||
        buffers_[i].weight < buffers_[first].weight) {
      second = first;
      first = i;
    } else if (second == num_buffers_ ||
               buffers_[i].weight < buffers_[second].weight) {
      second = i;
    }
  }
  GEMS_CHECK(first != num_buffers_ && second != num_buffers_);
  Buffer merged =
      Collapse({&buffers_[first], &buffers_[second]}, buffer_size_);
  buffers_[first] = std::move(merged);
  buffers_[second] = Buffer{};
}

MrlSketch::Buffer MrlSketch::Collapse(
    const std::vector<const Buffer*>& inputs, size_t buffer_size) {
  // Weighted merge of all input elements.
  std::vector<std::pair<double, uint64_t>> weighted;
  uint64_t total_weight = 0;
  for (const Buffer* input : inputs) {
    for (double value : input->values) {
      weighted.emplace_back(value, input->weight);
    }
    total_weight += input->weight;
  }
  std::sort(weighted.begin(), weighted.end());
  const double total_mass =
      static_cast<double>(total_weight) * static_cast<double>(buffer_size);

  Buffer output;
  output.weight = total_weight;
  output.values.reserve(buffer_size);
  // Select elements at weighted ranks (j + 0.5) * total / buffer_size.
  size_t cursor = 0;
  double cumulative = 0;
  for (size_t j = 0; j < buffer_size; ++j) {
    const double target =
        (static_cast<double>(j) + 0.5) * total_mass /
        static_cast<double>(buffer_size);
    while (cursor + 1 < weighted.size() &&
           cumulative + static_cast<double>(weighted[cursor].second) <
               target) {
      cumulative += static_cast<double>(weighted[cursor].second);
      ++cursor;
    }
    output.values.push_back(weighted[cursor].first);
  }
  return output;
}

uint64_t MrlSketch::Rank(double value) const {
  uint64_t rank = 0;
  for (double v : incoming_) {
    if (v <= value) ++rank;
  }
  for (const Buffer& buffer : buffers_) {
    if (buffer.weight == 0) continue;
    const uint64_t below = static_cast<uint64_t>(
        std::upper_bound(buffer.values.begin(), buffer.values.end(), value) -
        buffer.values.begin());
    rank += below * buffer.weight;
  }
  return rank;
}

double MrlSketch::Quantile(double q) const {
  GEMS_CHECK(count_ > 0);
  GEMS_CHECK(q >= 0.0 && q <= 1.0);
  std::vector<std::pair<double, uint64_t>> weighted;
  for (double v : incoming_) weighted.emplace_back(v, 1);
  for (const Buffer& buffer : buffers_) {
    if (buffer.weight == 0) continue;
    for (double v : buffer.values) weighted.emplace_back(v, buffer.weight);
  }
  std::sort(weighted.begin(), weighted.end());
  uint64_t total = 0;
  for (const auto& [value, weight] : weighted) total += weight;
  const double target = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (const auto& [value, weight] : weighted) {
    cumulative += weight;
    if (static_cast<double>(cumulative) >= target) return value;
  }
  return weighted.back().first;
}

Status MrlSketch::Merge(const MrlSketch& other) {
  if (buffer_size_ != other.buffer_size_) {
    return Status::InvalidArgument("MRL merge requires equal buffer size");
  }
  // Raw values stream in normally; full buffers are adopted, collapsing
  // as needed to stay within the buffer budget.
  for (double value : other.incoming_) Update(value);
  for (const Buffer& theirs : other.buffers_) {
    if (theirs.weight == 0) continue;
    CollapseIfNeeded();
    bool placed = false;
    for (Buffer& mine : buffers_) {
      if (mine.weight == 0) {
        mine = theirs;
        placed = true;
        break;
      }
    }
    GEMS_CHECK(placed);
    count_ += theirs.weight * theirs.values.size();
  }
  return Status::Ok();
}

size_t MrlSketch::NumRetained() const {
  size_t total = incoming_.size();
  for (const Buffer& buffer : buffers_) total += buffer.values.size();
  return total;
}

}  // namespace gems
