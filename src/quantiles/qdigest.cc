#include "quantiles/qdigest.h"

#include <algorithm>

#include "common/bits.h"
#include "common/check.h"
#include "core/wire.h"

namespace gems {

QDigest::QDigest(int universe_bits, uint64_t compression)
    : universe_bits_(universe_bits), compression_(compression) {
  GEMS_CHECK(universe_bits >= 1 && universe_bits <= 48);
  GEMS_CHECK(compression >= 1);
}

void QDigest::Update(uint64_t x, uint64_t weight) {
  GEMS_DCHECK(x < (uint64_t{1} << universe_bits_));
  GEMS_CHECK(weight >= 1);
  nodes_[LeafId(x)] += weight;
  count_ += weight;
  updates_since_compress_ += 1;
  CompressIfNeeded();
}

void QDigest::CompressIfNeeded() {
  // Compress once the node count could exceed ~3k (the theoretical bound),
  // or periodically by update count.
  if (nodes_.size() > 3 * compression_ ||
      updates_since_compress_ >= compression_) {
    Compress();
    updates_since_compress_ = 0;
  }
}

void QDigest::Compress() {
  const uint64_t threshold = count_ / compression_;
  if (threshold == 0) return;
  // Bottom-up: merge child pairs into parents while the triple is light.
  for (int depth = universe_bits_; depth >= 1; --depth) {
    const uint64_t level_begin = uint64_t{1} << depth;
    const uint64_t level_end = uint64_t{1} << (depth + 1);
    // Collect this level's live node ids first (mutation-safe).
    std::vector<uint64_t> level_nodes;
    for (const auto& [id, node_count] : nodes_) {
      if (id >= level_begin && id < level_end) level_nodes.push_back(id);
    }
    std::sort(level_nodes.begin(), level_nodes.end());
    for (uint64_t id : level_nodes) {
      const auto it = nodes_.find(id);
      if (it == nodes_.end()) continue;  // Already merged as a sibling.
      const uint64_t sibling = id ^ 1;
      const uint64_t parent = id >> 1;
      const auto sibling_it = nodes_.find(sibling);
      const uint64_t sibling_count =
          sibling_it == nodes_.end() ? 0 : sibling_it->second;
      const auto parent_it = nodes_.find(parent);
      const uint64_t parent_count =
          parent_it == nodes_.end() ? 0 : parent_it->second;
      if (it->second + sibling_count + parent_count <= threshold) {
        nodes_[parent] = parent_count + it->second + sibling_count;
        nodes_.erase(id);
        if (sibling_it != nodes_.end()) nodes_.erase(sibling);
      }
    }
  }
}

std::vector<QDigest::NodeRange> QDigest::SortedRanges() const {
  std::vector<NodeRange> ranges;
  ranges.reserve(nodes_.size());
  for (const auto& [id, node_count] : nodes_) {
    // Depth of the node: position of its leading bit; leaves at depth B.
    const int depth = FloorLog2(id);
    const int shift = universe_bits_ - depth;
    const uint64_t base = (id - (uint64_t{1} << depth)) << shift;
    ranges.push_back(
        NodeRange{base, base + ((uint64_t{1} << shift) - 1), node_count});
  }
  // Sort by right endpoint; ties broken smaller range first.
  std::sort(ranges.begin(), ranges.end(),
            [](const NodeRange& a, const NodeRange& b) {
              if (a.hi != b.hi) return a.hi < b.hi;
              return a.lo > b.lo;
            });
  return ranges;
}

uint64_t QDigest::Quantile(double q) const {
  GEMS_CHECK(count_ > 0);
  GEMS_CHECK(q >= 0.0 && q <= 1.0);
  const double target = q * static_cast<double>(count_);
  uint64_t cumulative = 0;
  const auto ranges = SortedRanges();
  for (const NodeRange& range : ranges) {
    cumulative += range.count;
    if (static_cast<double>(cumulative) >= target) return range.hi;
  }
  return ranges.back().hi;
}

uint64_t QDigest::Rank(uint64_t x) const {
  uint64_t rank = 0;
  for (const NodeRange& range : SortedRanges()) {
    if (range.hi <= x) rank += range.count;
  }
  return rank;
}

Status QDigest::Merge(const QDigest& other) {
  if (universe_bits_ != other.universe_bits_ ||
      compression_ != other.compression_) {
    return Status::InvalidArgument(
        "QDigest merge requires equal universe and compression");
  }
  for (const auto& [id, node_count] : other.nodes_) {
    nodes_[id] += node_count;
  }
  count_ += other.count_;
  Compress();
  return Status::Ok();
}

std::vector<uint8_t> QDigest::Serialize() const {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(universe_bits_));
  w.PutU64(compression_);
  w.PutU64(count_);
  w.PutVarint(nodes_.size());
  // Canonical order so identical digests serialize to identical bytes.
  std::vector<std::pair<uint64_t, uint64_t>> sorted(nodes_.begin(),
                                                    nodes_.end());
  std::sort(sorted.begin(), sorted.end());
  for (const auto& [id, node_count] : sorted) {
    w.PutVarint(id);
    w.PutVarint(node_count);
  }
  return WrapEnvelope(SketchTypeId::kQDigest,
                      std::move(w).TakeBytes());
}

Result<QDigest> QDigest::Deserialize(std::span<const uint8_t> bytes) {
  Result<ByteReader> payload = OpenEnvelope(SketchTypeId::kQDigest, bytes);
  if (!payload.ok()) return payload.status();
  ByteReader r = std::move(payload).value();
  uint8_t universe_bits;
  uint64_t compression, count, num_nodes;
  if (Status su = r.GetU8(&universe_bits); !su.ok()) return su;
  if (Status sc = r.GetU64(&compression); !sc.ok()) return sc;
  if (Status sn = r.GetU64(&count); !sn.ok()) return sn;
  if (Status sz = r.GetVarint(&num_nodes); !sz.ok()) return sz;
  if (universe_bits < 1 || universe_bits > 48 || compression < 1) {
    return Status::Corruption("invalid QDigest header");
  }
  QDigest digest(universe_bits, compression);
  digest.count_ = count;
  const uint64_t max_id = uint64_t{1} << (universe_bits + 1);
  for (uint64_t i = 0; i < num_nodes; ++i) {
    uint64_t id, node_count;
    if (Status si = r.GetVarint(&id); !si.ok()) return si;
    if (Status sv = r.GetVarint(&node_count); !sv.ok()) return sv;
    if (id == 0 || id >= max_id) {
      return Status::Corruption("QDigest node id out of range");
    }
    digest.nodes_[id] = node_count;
  }
  return digest;
}

}  // namespace gems
