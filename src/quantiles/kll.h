#ifndef GEMS_QUANTILES_KLL_H_
#define GEMS_QUANTILES_KLL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/io.h"
#include "core/view.h"

/// \file
/// KLL quantile sketch (Karnin, Lang & Liberty, FOCS 2016): the
/// space-optimal randomized quantile summary the paper presents as the
/// culmination of the MRL -> GK -> q-digest line. A stack of "compactors"
/// with geometrically decaying capacities: level h stores items with weight
/// 2^h; a full compactor sorts itself, keeps a random odd/even half, and
/// promotes it upward. Fully mergeable (concatenate compactors level-wise
/// and recompact), which is what the distributed substrate relies on.

namespace gems {

/// KLL sketch with parameter `k` (top-compactor capacity; error ~ 1/k).
class KllSketch {
 public:
  /// Wire-format type tag, for View<KllSketch> wrapping.
  static constexpr SketchTypeId kTypeId = SketchTypeId::kKll;

  explicit KllSketch(uint32_t k = 200, uint64_t seed = 0);

  /// Advisor-driven constructor: the smallest k whose rank error ~1/k is
  /// <= `rank_error`. kInvalidArgument if `rank_error` is outside (0, 1).
  static Result<KllSketch> ForRankError(double rank_error, uint64_t seed = 0);

  KllSketch(const KllSketch&) = default;
  KllSketch& operator=(const KllSketch&) = default;
  KllSketch(KllSketch&&) = default;
  KllSketch& operator=(KllSketch&&) = default;

  /// Inserts a value.
  void Update(double value);

  /// Batched ingest: bulk-appends to the level-0 compactor up to its
  /// capacity, compresses, and repeats. Consumes the same coin flips in
  /// the same order as per-item Update(), so state (including the Rng) is
  /// byte-identical to sequential ingest.
  void UpdateBatch(std::span<const double> values);

  /// Approximate value at quantile q in [0, 1]; requires >= 1 update.
  double Quantile(double q) const;

  /// Batched Quantile: one answer per point, each identical to
  /// Quantile(qs[i]), but the retained items are gathered and sorted once
  /// for the whole set instead of once per point — the emission path for
  /// windowed quantile queries asks for several points per group per
  /// window close.
  std::vector<double> Quantiles(std::span<const double> qs) const;

  /// Estimated number of inserted values <= `value`.
  uint64_t Rank(double value) const;

  /// CDF evaluated at the given split points (monotone, in [0, 1]).
  std::vector<double> Cdf(const std::vector<double>& split_points) const;

  /// Merges another KLL sketch (any k; the result keeps this sketch's k).
  Status Merge(const KllSketch& other);

  /// Merges a wrapped serialized peer. Compactor concatenation and the
  /// compression that follows restructure both operands, so this
  /// materializes one temporary from the view (skipping only the
  /// caller-side envelope copy) — byte-identical to
  /// Merge(*view.Materialize()) by construction.
  Status MergeFromView(const View<KllSketch>& view);

  uint64_t Count() const { return count_; }
  uint32_t k() const { return k_; }
  size_t NumRetained() const;
  size_t MemoryBytes() const { return NumRetained() * sizeof(double); }
  int NumLevels() const { return static_cast<int>(compactors_.size()); }

  std::vector<uint8_t> Serialize() const;
  /// Appends the wire envelope into a caller-owned buffer; byte-identical
  /// to Serialize().
  void SerializeTo(ByteSink& sink) const;
  static Result<KllSketch> Deserialize(std::span<const uint8_t> bytes);

 private:
  /// Capacity of the compactor at `level` given the current top level.
  size_t CapacityAt(int level) const;
  /// Compacts any over-full levels, promoting halves upward.
  void CompressIfNeeded();

  uint32_t k_;
  uint64_t count_ = 0;
  Rng rng_;
  std::vector<std::vector<double>> compactors_;  // compactors_[h]: weight 2^h.
  size_t level0_capacity_;  // Cached CapacityAt(0) for the update fast path.
};

}  // namespace gems

#endif  // GEMS_QUANTILES_KLL_H_
