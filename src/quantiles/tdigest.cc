#include "quantiles/tdigest.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "core/wire.h"

namespace gems {
namespace {

// k1 scale function: k(q) = delta / (2*pi) * asin(2q - 1).
inline double ScaleK(double q, double compression) {
  q = std::clamp(q, 0.0, 1.0);
  return compression / (2.0 * M_PI) * std::asin(2.0 * q - 1.0);
}

}  // namespace

TDigest::TDigest(double compression)
    : compression_(compression),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  GEMS_CHECK(compression >= 20.0);
}

uint64_t TDigest::BufferedWeight() const {
  double w = 0;
  for (const Centroid& c : buffer_) w += c.weight;
  return static_cast<uint64_t>(w);
}

void TDigest::Update(double value) { Update(value, 1); }

void TDigest::Update(double value, uint64_t weight) {
  GEMS_CHECK(weight >= 1);
  GEMS_CHECK(std::isfinite(value));
  buffer_.push_back(Centroid{value, static_cast<double>(weight)});
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  if (buffer_.size() >= static_cast<size_t>(8 * compression_)) Flush();
}

void TDigest::Flush() const {
  if (buffer_.empty()) return;
  std::vector<Centroid> all = centroids_;
  all.insert(all.end(), buffer_.begin(), buffer_.end());
  buffer_.clear();
  std::sort(all.begin(), all.end(),
            [](const Centroid& a, const Centroid& b) {
              return a.mean < b.mean;
            });
  double total = 0;
  for (const Centroid& c : all) total += c.weight;

  std::vector<Centroid> merged;
  merged.reserve(static_cast<size_t>(2 * compression_) + 8);
  double so_far = 0;  // Weight fully emitted into `merged`.
  Centroid open = all.front();
  for (size_t i = 1; i < all.size(); ++i) {
    const Centroid& next = all[i];
    const double q0 = so_far / total;
    const double q1 = (so_far + open.weight + next.weight) / total;
    // Absorb next into the open centroid if the k-size stays within 1.
    if (ScaleK(q1, compression_) - ScaleK(q0, compression_) <= 1.0) {
      const double w = open.weight + next.weight;
      open.mean += (next.mean - open.mean) * next.weight / w;
      open.weight = w;
    } else {
      so_far += open.weight;
      merged.push_back(open);
      open = next;
    }
  }
  merged.push_back(open);
  centroids_ = std::move(merged);
  total_weight_ = static_cast<uint64_t>(total);
}

size_t TDigest::NumCentroids() const {
  Flush();
  return centroids_.size();
}

double TDigest::Quantile(double q) const {
  GEMS_CHECK(q >= 0.0 && q <= 1.0);
  Flush();
  GEMS_CHECK(!centroids_.empty());
  const double total = static_cast<double>(total_weight_);
  if (centroids_.size() == 1) return centroids_[0].mean;
  const double target = q * total;

  // Walk centroids treating each as located at its midpoint in rank space;
  // interpolate linearly between adjacent centroid means.
  double cumulative = 0;
  for (size_t i = 0; i < centroids_.size(); ++i) {
    const double mid = cumulative + centroids_[i].weight / 2.0;
    if (target <= mid || i + 1 == centroids_.size()) {
      if (i == 0 && target < mid) {
        // Interpolate from the true minimum.
        const double t = target / mid;
        return min_ + t * (centroids_[0].mean - min_);
      }
      if (i + 1 == centroids_.size() && target > mid) {
        // Interpolate toward the true maximum.
        const double remaining = total - mid;
        const double t = remaining <= 0 ? 0 : (target - mid) / remaining;
        return centroids_[i].mean + t * (max_ - centroids_[i].mean);
      }
      const double prev_mid =
          cumulative - centroids_[i - 1].weight / 2.0;
      const double t = (target - prev_mid) / (mid - prev_mid);
      return centroids_[i - 1].mean +
             t * (centroids_[i].mean - centroids_[i - 1].mean);
    }
    cumulative += centroids_[i].weight;
  }
  return centroids_.back().mean;
}

double TDigest::Cdf(double value) const {
  Flush();
  if (centroids_.empty()) return 0.0;
  if (value < min_) return 0.0;
  if (value >= max_) return 1.0;
  const double total = static_cast<double>(total_weight_);
  double cumulative = 0;
  for (size_t i = 0; i < centroids_.size(); ++i) {
    if (value < centroids_[i].mean) {
      const double prev_mean = i == 0 ? min_ : centroids_[i - 1].mean;
      const double prev_cum =
          i == 0 ? 0 : cumulative - centroids_[i - 1].weight / 2.0;
      const double this_cum = cumulative + centroids_[i].weight / 2.0;
      const double span = centroids_[i].mean - prev_mean;
      const double t = span <= 0 ? 1.0 : (value - prev_mean) / span;
      return std::clamp((prev_cum + t * (this_cum - prev_cum)) / total, 0.0,
                        1.0);
    }
    cumulative += centroids_[i].weight;
  }
  return 1.0;
}

Status TDigest::Merge(const TDigest& other) {
  other.Flush();
  for (const Centroid& c : other.centroids_) {
    buffer_.push_back(c);
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  Flush();
  return Status::Ok();
}

std::vector<uint8_t> TDigest::Serialize() const {
  Flush();
  ByteWriter w;
  w.PutDouble(compression_);
  w.PutDouble(min_);
  w.PutDouble(max_);
  w.PutU64(total_weight_);
  w.PutVarint(centroids_.size());
  for (const Centroid& c : centroids_) {
    w.PutDouble(c.mean);
    w.PutDouble(c.weight);
  }
  return WrapEnvelope(SketchTypeId::kTDigest,
                      std::move(w).TakeBytes());
}

Result<TDigest> TDigest::Deserialize(std::span<const uint8_t> bytes) {
  Result<ByteReader> payload = OpenEnvelope(SketchTypeId::kTDigest, bytes);
  if (!payload.ok()) return payload.status();
  ByteReader r = std::move(payload).value();
  double compression, min_value, max_value;
  uint64_t total, num_centroids;
  if (Status sc = r.GetDouble(&compression); !sc.ok()) return sc;
  if (Status sm = r.GetDouble(&min_value); !sm.ok()) return sm;
  if (Status sx = r.GetDouble(&max_value); !sx.ok()) return sx;
  if (Status st = r.GetU64(&total); !st.ok()) return st;
  if (Status sn = r.GetVarint(&num_centroids); !sn.ok()) return sn;
  if (!(compression >= 20.0)) {
    return Status::Corruption("invalid t-digest compression");
  }
  TDigest digest(compression);
  digest.min_ = min_value;
  digest.max_ = max_value;
  digest.total_weight_ = total;
  digest.centroids_.resize(num_centroids);
  for (Centroid& c : digest.centroids_) {
    if (Status sm2 = r.GetDouble(&c.mean); !sm2.ok()) return sm2;
    if (Status sw = r.GetDouble(&c.weight); !sw.ok()) return sw;
    if (!(c.weight > 0)) return Status::Corruption("bad centroid weight");
  }
  return digest;
}

}  // namespace gems
