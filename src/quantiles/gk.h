#ifndef GEMS_QUANTILES_GK_H_
#define GEMS_QUANTILES_GK_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

/// \file
/// Greenwald-Khanna quantile summary (SIGMOD 2001): the classic
/// deterministic eps-approximate quantile sketch. Maintains tuples
/// (value, g, delta) where g is the gap in minimum rank to the previous
/// tuple and delta the uncertainty; the invariant g + delta <= 2*eps*n
/// guarantees every rank query is answered within eps*n. Deterministic and
/// streaming, but not (classically) mergeable — the gap that the
/// "Mergeable Summaries" line of work (PODS 2012) and ultimately KLL
/// closed, which is why this class deliberately has no Merge().

namespace gems {

/// GK summary with target rank error `epsilon`.
class GreenwaldKhanna {
 public:
  explicit GreenwaldKhanna(double epsilon);

  GreenwaldKhanna(const GreenwaldKhanna&) = default;
  GreenwaldKhanna& operator=(const GreenwaldKhanna&) = default;
  GreenwaldKhanna(GreenwaldKhanna&&) = default;
  GreenwaldKhanna& operator=(GreenwaldKhanna&&) = default;

  /// Inserts a value.
  void Update(double value);

  /// Value whose rank is within eps*n of q*n. Requires at least one update.
  double Quantile(double q) const;

  /// Estimated rank of `value` (count of inserted values <= value),
  /// accurate to eps*n.
  uint64_t Rank(double value) const;

  uint64_t Count() const { return count_; }
  double epsilon() const { return epsilon_; }
  size_t NumTuples() const { return tuples_.size(); }
  size_t MemoryBytes() const { return tuples_.size() * sizeof(Tuple); }

  std::vector<uint8_t> Serialize() const;
  static Result<GreenwaldKhanna> Deserialize(
      std::span<const uint8_t> bytes);

 private:
  struct Tuple {
    double value;
    uint64_t g;      // min_rank(this) - min_rank(previous).
    uint64_t delta;  // max_rank(this) - min_rank(this).
  };

  void Compress();

  double epsilon_;
  uint64_t count_ = 0;
  uint64_t compress_period_;
  std::vector<Tuple> tuples_;  // Sorted by value.
};

}  // namespace gems

#endif  // GEMS_QUANTILES_GK_H_
