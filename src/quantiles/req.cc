#include "quantiles/req.h"

#include <algorithm>
#include <cmath>

#include "common/bits.h"
#include "common/check.h"

namespace gems {

ReqSketch::ReqSketch(uint32_t k, uint64_t seed, bool high_rank_accuracy)
    : k_(k), high_rank_accuracy_(high_rank_accuracy), rng_(seed) {
  GEMS_CHECK(k >= 4 && k % 2 == 0);
  compactors_.emplace_back();
}

void ReqSketch::Update(double value) {
  Compactor& bottom = compactors_[0];
  bottom.values.push_back(value);
  ++count_;
  // Fast path: only scan the stack when the bottom compactor is full.
  if (bottom.values.size() >= CapacityOf(bottom)) CompressIfNeeded();
}

void ReqSketch::CompressIfNeeded() {
  for (size_t level = 0; level < compactors_.size(); ++level) {
    if (compactors_[level].values.size() >= CapacityOf(compactors_[level])) {
      Compact(level);
    }
  }
}

void ReqSketch::Compact(size_t level) {
  if (level + 1 == compactors_.size()) compactors_.emplace_back();
  Compactor& compactor = compactors_[level];
  std::sort(compactor.values.begin(), compactor.values.end());

  // Binary schedule: the number of low sections entering this compaction
  // is 1 + (trailing zeros of the compaction counter), capped so at least
  // half the compactor (the high-rank suffix) is always protected.
  ++compactor.num_compactions;
  uint32_t sections_to_compact =
      1 + static_cast<uint32_t>(
              CountTrailingZeros64(compactor.num_compactions));
  sections_to_compact = std::min(sections_to_compact,
                                 compactor.num_sections);
  // Once the schedule has cycled through every section, the compactor has
  // aged: double its section count (growing capacity), which is what
  // yields the relative-error guarantee.
  if (compactor.num_compactions >=
      (uint64_t{1} << compactor.num_sections)) {
    compactor.num_sections *= 2;
    compactor.num_compactions = 0;
  }

  const size_t compact_count = std::min(
      static_cast<size_t>(sections_to_compact) * k_,
      compactor.values.size() / 2);
  if (compact_count < 2) return;

  // The compaction region is the prefix at the UNprotected end: the
  // lowest ranks for high-rank accuracy, the highest ranks otherwise.
  const size_t offset = rng_.NextU64() & 1;
  std::vector<double>& above = compactors_[level + 1].values;
  if (high_rank_accuracy_) {
    for (size_t i = offset; i < compact_count; i += 2) {
      above.push_back(compactor.values[i]);
    }
    compactor.values.erase(compactor.values.begin(),
                           compactor.values.begin() + compact_count);
  } else {
    const size_t begin = compactor.values.size() - compact_count;
    for (size_t i = begin + offset; i < compactor.values.size(); i += 2) {
      above.push_back(compactor.values[i]);
    }
    compactor.values.resize(begin);
  }
}

uint64_t ReqSketch::Rank(double value) const {
  uint64_t rank = 0;
  for (size_t level = 0; level < compactors_.size(); ++level) {
    const uint64_t weight = uint64_t{1} << level;
    for (double item : compactors_[level].values) {
      if (item <= value) rank += weight;
    }
  }
  return rank;
}

double ReqSketch::Quantile(double q) const {
  GEMS_CHECK(count_ > 0);
  GEMS_CHECK(q >= 0.0 && q <= 1.0);
  std::vector<std::pair<double, uint64_t>> weighted;
  weighted.reserve(NumRetained());
  for (size_t level = 0; level < compactors_.size(); ++level) {
    const uint64_t weight = uint64_t{1} << level;
    for (double item : compactors_[level].values) {
      weighted.emplace_back(item, weight);
    }
  }
  std::sort(weighted.begin(), weighted.end());
  uint64_t total = 0;
  for (const auto& [value, weight] : weighted) total += weight;
  const double target = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (const auto& [value, weight] : weighted) {
    cumulative += weight;
    if (static_cast<double>(cumulative) >= target) return value;
  }
  return weighted.back().first;
}

Status ReqSketch::Merge(const ReqSketch& other) {
  if (k_ != other.k_ || high_rank_accuracy_ != other.high_rank_accuracy_) {
    return Status::InvalidArgument(
        "REQ merge requires equal k and accuracy mode");
  }
  while (compactors_.size() < other.compactors_.size()) {
    compactors_.emplace_back();
  }
  for (size_t level = 0; level < other.compactors_.size(); ++level) {
    Compactor& mine = compactors_[level];
    const Compactor& theirs = other.compactors_[level];
    mine.values.insert(mine.values.end(), theirs.values.begin(),
                       theirs.values.end());
    // Adopt the larger section count so the merged compactor keeps the
    // older lineage's accuracy budget.
    mine.num_sections = std::max(mine.num_sections, theirs.num_sections);
  }
  count_ += other.count_;
  CompressIfNeeded();
  return Status::Ok();
}

size_t ReqSketch::NumRetained() const {
  size_t total = 0;
  for (const Compactor& compactor : compactors_) {
    total += compactor.values.size();
  }
  return total;
}

}  // namespace gems
