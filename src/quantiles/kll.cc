#include "quantiles/kll.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/check.h"
#include "core/params.h"
#include "core/wire.h"
#include "simd/dispatch.h"

namespace gems {
namespace {

constexpr double kCapacityRatio = 2.0 / 3.0;

}  // namespace

KllSketch::KllSketch(uint32_t k, uint64_t seed) : k_(k), rng_(seed) {
  GEMS_CHECK(k >= 8);
  compactors_.emplace_back();
  level0_capacity_ = CapacityAt(0);
}

size_t KllSketch::CapacityAt(int level) const {
  // Top level gets capacity k; each level below decays by 2/3, floored at
  // 8 (the DataSketches floor: tiny bottom buffers compact too often for
  // negligible space savings).
  const int depth = static_cast<int>(compactors_.size()) - 1 - level;
  const double cap = static_cast<double>(k_) * std::pow(kCapacityRatio, depth);
  return std::max<size_t>(8, static_cast<size_t>(std::ceil(cap)));
}

Result<KllSketch> KllSketch::ForRankError(double rank_error, uint64_t seed) {
  if (!(rank_error > 0.0 && rank_error < 1.0)) {
    return Status::InvalidArgument("KLL rank error must be in (0, 1)");
  }
  return KllSketch(KllKFor(rank_error), seed);
}

void KllSketch::Update(double value) {
  compactors_[0].push_back(value);
  ++count_;
  if (compactors_[0].size() >= level0_capacity_) CompressIfNeeded();
}

void KllSketch::UpdateBatch(std::span<const double> values) {
  while (!values.empty()) {
    // Re-acquire level 0 each round: CompressIfNeeded may reallocate the
    // compactor stack.
    std::vector<double>& level0 = compactors_[0];
    const size_t room = level0_capacity_ - level0.size();
    const size_t n = std::min(values.size(), room);
    level0.insert(level0.end(), values.begin(), values.begin() + n);
    count_ += n;
    if (level0.size() >= level0_capacity_) CompressIfNeeded();
    values = values.subspan(n);
  }
}

void KllSketch::CompressIfNeeded() {
  for (size_t level = 0; level < compactors_.size(); ++level) {
    if (compactors_[level].size() < CapacityAt(static_cast<int>(level))) {
      continue;
    }
    if (level + 1 == compactors_.size()) compactors_.emplace_back();
    std::vector<double>& current = compactors_[level];
    // Level-buffer sort through the kernel table. Every variant points at
    // the same implementation today (a vectorized unstable sort could
    // permute -0.0/+0.0 differently and break serialized-byte identity),
    // but the call site is the contract: compaction order is the kernel's.
    simd::Kernels().sort_doubles(current.data(), current.size());
    // Keep a random parity half; promote it with doubled weight.
    const size_t offset = rng_.NextU64() & 1;
    std::vector<double>& above = compactors_[level + 1];
    for (size_t i = offset; i < current.size(); i += 2) {
      above.push_back(current[i]);
    }
    current.clear();
  }
  level0_capacity_ = CapacityAt(0);
}

uint64_t KllSketch::Rank(double value) const {
  uint64_t rank = 0;
  for (size_t level = 0; level < compactors_.size(); ++level) {
    const uint64_t weight = uint64_t{1} << level;
    for (double item : compactors_[level]) {
      if (item <= value) rank += weight;
    }
  }
  return rank;
}

double KllSketch::Quantile(double q) const {
  const std::array<double, 1> qs = {q};
  return Quantiles(qs)[0];
}

std::vector<double> KllSketch::Quantiles(std::span<const double> qs) const {
  GEMS_CHECK(count_ > 0);
  // Gather (value, weight) pairs, sort by value, prefix-sum the weights —
  // once for the whole point set — then binary-search each point's target
  // rank. Per point this returns the first value whose cumulative weight
  // reaches q * total, exactly the single-point CDF walk.
  std::vector<std::pair<double, uint64_t>> weighted;
  weighted.reserve(NumRetained());
  for (size_t level = 0; level < compactors_.size(); ++level) {
    const uint64_t weight = uint64_t{1} << level;
    for (double item : compactors_[level]) weighted.emplace_back(item, weight);
  }
  std::sort(weighted.begin(), weighted.end());
  uint64_t cumulative = 0;
  for (auto& [value, weight] : weighted) {
    cumulative += weight;
    weight = cumulative;  // In place: weight becomes the cumulative rank.
  }
  const uint64_t total = cumulative;
  std::vector<double> out;
  out.reserve(qs.size());
  for (double q : qs) {
    GEMS_CHECK(q >= 0.0 && q <= 1.0);
    const double target = q * static_cast<double>(total);
    size_t lo = 0, hi = weighted.size() - 1;
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (static_cast<double>(weighted[mid].second) >= target) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    out.push_back(weighted[lo].first);
  }
  return out;
}

std::vector<double> KllSketch::Cdf(
    const std::vector<double>& split_points) const {
  std::vector<double> out;
  out.reserve(split_points.size());
  const double n = static_cast<double>(count_);
  for (double split : split_points) {
    out.push_back(n == 0 ? 0.0 : static_cast<double>(Rank(split)) / n);
  }
  return out;
}

Status KllSketch::Merge(const KllSketch& other) {
  while (compactors_.size() < other.compactors_.size()) {
    compactors_.emplace_back();
  }
  for (size_t level = 0; level < other.compactors_.size(); ++level) {
    compactors_[level].insert(compactors_[level].end(),
                              other.compactors_[level].begin(),
                              other.compactors_[level].end());
  }
  count_ += other.count_;
  CompressIfNeeded();
  return Status::Ok();
}

size_t KllSketch::NumRetained() const {
  size_t total = 0;
  for (const std::vector<double>& compactor : compactors_) {
    total += compactor.size();
  }
  return total;
}

Status KllSketch::MergeFromView(const View<KllSketch>& view) {
  Result<KllSketch> other = view.Materialize();
  if (!other.ok()) return other.status();
  return Merge(other.value());
}

std::vector<uint8_t> KllSketch::Serialize() const {
  std::vector<uint8_t> out;
  ByteSink sink(&out);
  SerializeTo(sink);
  return out;
}

void KllSketch::SerializeTo(ByteSink& sink) const {
  EnvelopeBuilder env(sink, kTypeId);
  sink.PutU32(k_);
  sink.PutU64(count_);
  sink.PutVarint(compactors_.size());
  for (const std::vector<double>& compactor : compactors_) {
    sink.PutVarint(compactor.size());
    for (double item : compactor) sink.PutDouble(item);
  }
}

Result<KllSketch> KllSketch::Deserialize(std::span<const uint8_t> bytes) {
  Result<ByteReader> payload = OpenEnvelope(SketchTypeId::kKll, bytes);
  if (!payload.ok()) return payload.status();
  ByteReader r = std::move(payload).value();
  uint32_t k;
  uint64_t count, num_levels;
  if (Status sk = r.GetU32(&k); !sk.ok()) return sk;
  if (Status sc = r.GetU64(&count); !sc.ok()) return sc;
  if (Status sl = r.GetVarint(&num_levels); !sl.ok()) return sl;
  if (k < 8 || num_levels == 0 || num_levels > 64) {
    return Status::Corruption("invalid KLL header");
  }
  KllSketch sketch(k, /*seed=*/count ^ 0x5EED);
  sketch.count_ = count;
  sketch.compactors_.resize(num_levels);
  sketch.level0_capacity_ = sketch.CapacityAt(0);
  for (uint64_t level = 0; level < num_levels; ++level) {
    uint64_t size;
    if (Status ss = r.GetVarint(&size); !ss.ok()) return ss;
    if (size > count + 1) return Status::Corruption("KLL level too large");
    sketch.compactors_[level].resize(size);
    for (double& item : sketch.compactors_[level]) {
      if (Status sd = r.GetDouble(&item); !sd.ok()) return sd;
    }
  }
  return sketch;
}

}  // namespace gems
