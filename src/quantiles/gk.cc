#include "quantiles/gk.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "core/wire.h"

namespace gems {

GreenwaldKhanna::GreenwaldKhanna(double epsilon) : epsilon_(epsilon) {
  GEMS_CHECK(epsilon > 0.0 && epsilon < 0.5);
  compress_period_ =
      std::max<uint64_t>(1, static_cast<uint64_t>(1.0 / (2.0 * epsilon)));
}

void GreenwaldKhanna::Update(double value) {
  ++count_;
  // Find insertion position (first tuple with larger value).
  const auto it = std::upper_bound(
      tuples_.begin(), tuples_.end(), value,
      [](double v, const Tuple& t) { return v < t.value; });

  uint64_t delta;
  if (it == tuples_.begin() || it == tuples_.end()) {
    delta = 0;  // New min or max is known exactly.
  } else {
    delta = static_cast<uint64_t>(
        std::floor(2.0 * epsilon_ * static_cast<double>(count_)));
  }
  tuples_.insert(it, Tuple{value, 1, delta});

  if (count_ % compress_period_ == 0) Compress();
}

void GreenwaldKhanna::Compress() {
  if (tuples_.size() < 3) return;
  const uint64_t threshold = static_cast<uint64_t>(
      std::floor(2.0 * epsilon_ * static_cast<double>(count_)));
  std::vector<Tuple> kept;
  kept.reserve(tuples_.size());
  kept.push_back(tuples_.front());
  // Greedily merge tuple i into its successor when the invariant
  // g_i + g_{i+1} + delta_{i+1} <= 2*eps*n allows; the successor absorbs
  // the merged tuple's gap.
  for (size_t i = 1; i + 1 < tuples_.size(); ++i) {
    const Tuple& current = tuples_[i];
    Tuple& next = tuples_[i + 1];
    if (current.g + next.g + next.delta <= threshold) {
      next.g += current.g;
    } else {
      kept.push_back(current);
    }
  }
  kept.push_back(tuples_.back());
  tuples_ = std::move(kept);
}

double GreenwaldKhanna::Quantile(double q) const {
  GEMS_CHECK(count_ > 0);
  GEMS_CHECK(q >= 0.0 && q <= 1.0);
  const double target_rank = q * static_cast<double>(count_);
  const double allowed = epsilon_ * static_cast<double>(count_);

  uint64_t min_rank = 0;
  for (const Tuple& t : tuples_) {
    min_rank += t.g;
    const uint64_t max_rank = min_rank + t.delta;
    if (static_cast<double>(max_rank) >= target_rank - allowed &&
        static_cast<double>(min_rank) <= target_rank + allowed) {
      return t.value;
    }
    if (static_cast<double>(min_rank) > target_rank) return t.value;
  }
  return tuples_.back().value;
}

uint64_t GreenwaldKhanna::Rank(double value) const {
  uint64_t min_rank = 0;
  uint64_t best = 0;
  for (const Tuple& t : tuples_) {
    min_rank += t.g;
    if (t.value <= value) {
      best = min_rank + t.delta / 2;
    } else {
      break;
    }
  }
  return best;
}

std::vector<uint8_t> GreenwaldKhanna::Serialize() const {
  ByteWriter w;
  w.PutDouble(epsilon_);
  w.PutU64(count_);
  w.PutVarint(tuples_.size());
  for (const Tuple& t : tuples_) {
    w.PutDouble(t.value);
    w.PutVarint(t.g);
    w.PutVarint(t.delta);
  }
  return WrapEnvelope(SketchTypeId::kGreenwaldKhanna,
                      std::move(w).TakeBytes());
}

Result<GreenwaldKhanna> GreenwaldKhanna::Deserialize(
    std::span<const uint8_t> bytes) {
  Result<ByteReader> payload = OpenEnvelope(SketchTypeId::kGreenwaldKhanna, bytes);
  if (!payload.ok()) return payload.status();
  ByteReader r = std::move(payload).value();
  double epsilon;
  uint64_t count, num_tuples;
  if (Status se = r.GetDouble(&epsilon); !se.ok()) return se;
  if (Status sc = r.GetU64(&count); !sc.ok()) return sc;
  if (Status sn = r.GetVarint(&num_tuples); !sn.ok()) return sn;
  if (!(epsilon > 0.0 && epsilon < 0.5) || num_tuples > count) {
    return Status::Corruption("invalid GK header");
  }
  GreenwaldKhanna gk(epsilon);
  gk.count_ = count;
  gk.tuples_.resize(num_tuples);
  for (Tuple& t : gk.tuples_) {
    if (Status sv = r.GetDouble(&t.value); !sv.ok()) return sv;
    if (Status sg = r.GetVarint(&t.g); !sg.ok()) return sg;
    if (Status sd = r.GetVarint(&t.delta); !sd.ok()) return sd;
  }
  return gk;
}

}  // namespace gems
