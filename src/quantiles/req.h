#ifndef GEMS_QUANTILES_REQ_H_
#define GEMS_QUANTILES_REQ_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"

/// \file
/// Relative-Error Quantiles sketch (Cormode, Karnin, Liberty, Thaler &
/// Veselý, PODS 2021 best paper — one of the award papers the survey
/// highlights). Where KLL guarantees ADDITIVE rank error eps*n uniformly,
/// REQ guarantees MULTIPLICATIVE error: the rank of a returned value is
/// within (1 +/- eps) of the true rank measured from the accurate end.
/// This high-rank-accuracy (HRA) variant keeps extreme high quantiles
/// (p99.9, p99.99 — SLO territory) essentially exact while compacting the
/// low ranks aggressively.
///
/// Mechanism (following the DataSketches realization): a stack of
/// compactors with weight 2^level. Each compactor holds `num_sections`
/// sections of `section_size` values; when full it sorts itself and
/// compacts only a low-rank prefix of sections — the high-rank suffix is
/// never touched. How many sections compact follows the binary schedule
/// (trailing-zero count of the compaction counter), and the section count
/// doubles as a compactor ages, which is what converts uniform error into
/// relative error.

namespace gems {

/// REQ sketch; high-rank-accuracy by default, low-rank-accuracy optional.
class ReqSketch {
 public:
  /// `k`: section size (even, >= 4). Relative rank error shrinks ~ 1/k.
  /// `high_rank_accuracy`: true protects high quantiles (p99.99...), false
  /// protects low quantiles (p0.0001...) — pick the end your application
  /// cares about.
  explicit ReqSketch(uint32_t k = 32, uint64_t seed = 0,
                     bool high_rank_accuracy = true);

  ReqSketch(const ReqSketch&) = default;
  ReqSketch& operator=(const ReqSketch&) = default;
  ReqSketch(ReqSketch&&) = default;
  ReqSketch& operator=(ReqSketch&&) = default;

  /// Inserts a value.
  void Update(double value);

  /// Approximate value at quantile q in [0, 1]; requires >= 1 update.
  double Quantile(double q) const;

  /// Estimated number of inserted values <= `value`.
  uint64_t Rank(double value) const;

  /// Merges another REQ sketch (same k).
  Status Merge(const ReqSketch& other);

  uint64_t Count() const { return count_; }
  uint32_t k() const { return k_; }
  bool high_rank_accuracy() const { return high_rank_accuracy_; }
  size_t NumRetained() const;
  size_t MemoryBytes() const { return NumRetained() * sizeof(double); }
  int NumLevels() const { return static_cast<int>(compactors_.size()); }

 private:
  struct Compactor {
    uint32_t num_sections = 3;
    uint64_t num_compactions = 0;
    std::vector<double> values;  // Unsorted between compactions.
  };

  size_t CapacityOf(const Compactor& compactor) const {
    return static_cast<size_t>(2) * compactor.num_sections * k_;
  }
  /// Compacts `level` once (must be at capacity), promoting upward.
  void Compact(size_t level);
  void CompressIfNeeded();

  uint32_t k_;
  bool high_rank_accuracy_;
  uint64_t count_ = 0;
  Rng rng_;
  std::vector<Compactor> compactors_;  // compactors_[h]: weight 2^h.
};

}  // namespace gems

#endif  // GEMS_QUANTILES_REQ_H_
