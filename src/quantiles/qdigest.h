#ifndef GEMS_QUANTILES_QDIGEST_H_
#define GEMS_QUANTILES_QDIGEST_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/status.h"

/// \file
/// q-digest (Shrivastava, Buragohain, Agrawal & Suri, SenSys 2004):
/// quantiles over a fixed integer universe [0, 2^bits), designed for the
/// sensor-network aggregation setting the paper describes — its selling
/// point was mergability for distributed data before "mergeable summaries"
/// was formalized. The digest is a subset of nodes of the complete binary
/// tree over the universe; the compression invariant keeps every
/// (non-leaf-level) node triple (node, sibling, parent) above n/k total
/// weight, bounding the node count by O(k log U) and rank error by
/// n * log(U) / k.

namespace gems {

/// q-digest over the universe [0, 2^universe_bits).
class QDigest {
 public:
  /// `compression` is the k parameter; larger k = more nodes, less error.
  QDigest(int universe_bits, uint64_t compression);

  QDigest(const QDigest&) = default;
  QDigest& operator=(const QDigest&) = default;
  QDigest(QDigest&&) = default;
  QDigest& operator=(QDigest&&) = default;

  /// Adds `weight` occurrences of integer value `x` (x < 2^universe_bits).
  void Update(uint64_t x, uint64_t weight = 1);

  /// Approximate value at quantile q; requires >= 1 update.
  uint64_t Quantile(double q) const;

  /// Estimated rank of `x` (values <= x).
  uint64_t Rank(uint64_t x) const;

  /// Merges another q-digest (same universe and compression).
  Status Merge(const QDigest& other);

  uint64_t Count() const { return count_; }
  int universe_bits() const { return universe_bits_; }
  size_t NumNodes() const { return nodes_.size(); }
  size_t MemoryBytes() const {
    return nodes_.size() * (sizeof(uint64_t) * 2 + 2 * sizeof(void*));
  }

  std::vector<uint8_t> Serialize() const;
  static Result<QDigest> Deserialize(std::span<const uint8_t> bytes);

 private:
  /// Heap-style node ids: root = 1; children of v are 2v, 2v+1. Leaves for
  /// value x have id 2^universe_bits + x.
  uint64_t LeafId(uint64_t x) const {
    return (uint64_t{1} << universe_bits_) + x;
  }

  void CompressIfNeeded();
  void Compress();

  /// Collects nodes as (range_lo, range_hi, count) sorted for rank walks.
  struct NodeRange {
    uint64_t lo;
    uint64_t hi;
    uint64_t count;
  };
  std::vector<NodeRange> SortedRanges() const;

  int universe_bits_;
  uint64_t compression_;
  uint64_t count_ = 0;
  uint64_t updates_since_compress_ = 0;
  std::unordered_map<uint64_t, uint64_t> nodes_;  // node id -> count.
};

}  // namespace gems

#endif  // GEMS_QUANTILES_QDIGEST_H_
