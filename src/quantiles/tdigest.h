#ifndef GEMS_QUANTILES_TDIGEST_H_
#define GEMS_QUANTILES_TDIGEST_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

/// \file
/// t-digest (Dunning & Ertl): the quantile summary the paper lists among
/// the new big-data-era algorithms shipped in libraries and platforms
/// (Apache DataSketches, Splunk, Salesforce...). Clusters values into
/// centroids whose maximum weight shrinks near the distribution's tails
/// (via the arcsine scale function), giving very accurate extreme
/// quantiles — the property benchmarked against KLL in experiment E4.
/// This is the "merging" variant: updates buffer and periodically merge
/// into the centroid list.

namespace gems {

/// Merging t-digest with the k1 (arcsine) scale function.
class TDigest {
 public:
  /// `compression` (delta) bounds the number of centroids (~2*delta).
  explicit TDigest(double compression = 100.0);

  TDigest(const TDigest&) = default;
  TDigest& operator=(const TDigest&) = default;
  TDigest(TDigest&&) = default;
  TDigest& operator=(TDigest&&) = default;

  /// Inserts a value.
  void Update(double value);

  /// Inserts a value with integer weight >= 1.
  void Update(double value, uint64_t weight);

  /// Approximate value at quantile q; requires >= 1 update.
  double Quantile(double q) const;

  /// Approximate CDF at `value` (fraction of mass <= value).
  double Cdf(double value) const;

  /// Merges another t-digest (any compression; keeps this one's).
  Status Merge(const TDigest& other);

  uint64_t Count() const { return total_weight_ + BufferedWeight(); }
  double compression() const { return compression_; }
  size_t NumCentroids() const;
  double Min() const { return min_; }
  double Max() const { return max_; }
  size_t MemoryBytes() const {
    return (centroids_.size() + buffer_.size()) * 2 * sizeof(double);
  }

  std::vector<uint8_t> Serialize() const;
  static Result<TDigest> Deserialize(std::span<const uint8_t> bytes);

 private:
  struct Centroid {
    double mean;
    double weight;
  };

  uint64_t BufferedWeight() const;
  /// Folds the buffer into the centroid list (the "merge" pass).
  void Flush() const;

  double compression_;
  double min_;
  double max_;
  // Mutable so const queries can flush lazily.
  mutable uint64_t total_weight_ = 0;
  mutable std::vector<Centroid> centroids_;  // Sorted by mean after Flush.
  mutable std::vector<Centroid> buffer_;
};

}  // namespace gems

#endif  // GEMS_QUANTILES_TDIGEST_H_
