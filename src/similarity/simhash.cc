#include "similarity/simhash.h"

#include <cmath>

#include "common/bits.h"
#include "common/check.h"
#include "hash/hash.h"

namespace gems {

SimHasher::SimHasher(uint32_t num_bits, uint64_t seed)
    : num_bits_(num_bits), seed_(seed) {
  GEMS_CHECK(num_bits >= 1);
}

int SimHasher::PlaneEntry(uint32_t bit, size_t coordinate) const {
  const uint64_t h =
      Hash64(static_cast<uint64_t>(coordinate), DeriveSeed(seed_, bit));
  return (h & 1) ? 1 : -1;
}

std::vector<uint64_t> SimHasher::Signature(
    const std::vector<double>& vector) const {
  std::vector<uint64_t> signature((num_bits_ + 63) / 64, 0);
  for (uint32_t bit = 0; bit < num_bits_; ++bit) {
    double dot = 0.0;
    for (size_t coordinate = 0; coordinate < vector.size(); ++coordinate) {
      dot += PlaneEntry(bit, coordinate) * vector[coordinate];
    }
    if (dot >= 0) signature[bit / 64] |= uint64_t{1} << (bit % 64);
  }
  return signature;
}

uint32_t SimHasher::HammingDistance(const std::vector<uint64_t>& a,
                                    const std::vector<uint64_t>& b) {
  GEMS_CHECK(a.size() == b.size());
  uint32_t distance = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    distance += PopCount64(a[i] ^ b[i]);
  }
  return distance;
}

double SimHasher::EstimateCosine(const std::vector<uint64_t>& a,
                                 const std::vector<uint64_t>& b) const {
  const double theta = M_PI * static_cast<double>(HammingDistance(a, b)) /
                       static_cast<double>(num_bits_);
  return std::cos(theta);
}

double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b) {
  GEMS_CHECK(a.size() == b.size());
  double dot = 0, norm_a = 0, norm_b = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    norm_a += a[i] * a[i];
    norm_b += b[i] * b[i];
  }
  if (norm_a == 0 || norm_b == 0) return 0.0;
  return dot / std::sqrt(norm_a * norm_b);
}

}  // namespace gems
