#ifndef GEMS_SIMILARITY_MINHASH_H_
#define GEMS_SIMILARITY_MINHASH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

/// \file
/// MinHash (Broder 1997): a sketch of a *set* whose coordinates are the
/// minimum hash values under k independent hash functions. The collision
/// probability of each coordinate equals the Jaccard similarity, making
/// MinHash the canonical input to banding LSH (src/similarity/lsh.h) — the
/// technique the paper credits for multimedia similarity search at the
/// early internet companies.

namespace gems {

/// A MinHash sketch of a streaming set.
class MinHashSketch {
 public:
  /// `k` signature coordinates; Jaccard std error ~ 1/sqrt(k).
  MinHashSketch(uint32_t k, uint64_t seed = 0);

  MinHashSketch(const MinHashSketch&) = default;
  MinHashSketch& operator=(const MinHashSketch&) = default;
  MinHashSketch(MinHashSketch&&) = default;
  MinHashSketch& operator=(MinHashSketch&&) = default;

  /// Adds a set element (idempotent).
  void Update(uint64_t item);

  /// Batched ingest: folds the whole batch into each signature coordinate
  /// with one hoisted min-reduction per coordinate. Min commutes, so the
  /// signature is byte-identical to per-item Update().
  void UpdateBatch(std::span<const uint64_t> items);

  /// Estimated Jaccard similarity with another sketch (same k and seed).
  Result<double> Jaccard(const MinHashSketch& other) const;

  /// Union of the underlying sets = coordinate-wise min.
  Status Merge(const MinHashSketch& other);

  const std::vector<uint64_t>& signature() const { return signature_; }
  uint32_t k() const { return k_; }

  std::vector<uint8_t> Serialize() const;
  static Result<MinHashSketch> Deserialize(std::span<const uint8_t> bytes);

 private:
  uint32_t k_;
  uint64_t seed_;
  std::vector<uint64_t> signature_;  // Coordinate i = min over items of h_i.
};

}  // namespace gems

#endif  // GEMS_SIMILARITY_MINHASH_H_
