#include "similarity/lsh.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/check.h"
#include "hash/hash.h"

namespace gems {

LshIndex::LshIndex(uint32_t bands, uint32_t rows_per_band, uint64_t seed)
    : bands_(bands), rows_per_band_(rows_per_band), seed_(seed) {
  GEMS_CHECK(bands >= 1);
  GEMS_CHECK(rows_per_band >= 1);
  tables_.resize(bands);
}

uint64_t LshIndex::BandKey(uint32_t band,
                           const std::vector<uint64_t>& signature) const {
  // Hash the band's rows together into one bucket key.
  uint64_t key = DeriveSeed(seed_, band);
  for (uint32_t row = 0; row < rows_per_band_; ++row) {
    key = Hash64(signature[static_cast<size_t>(band) * rows_per_band_ + row],
                 key);
  }
  return key;
}

Status LshIndex::Insert(uint64_t id,
                        const std::vector<uint64_t>& signature) {
  if (signature.size() != signature_length()) {
    return Status::InvalidArgument("signature length mismatch");
  }
  for (uint32_t band = 0; band < bands_; ++band) {
    tables_[band][BandKey(band, signature)].push_back(id);
  }
  ++num_items_;
  return Status::Ok();
}

Result<std::vector<uint64_t>> LshIndex::Query(
    const std::vector<uint64_t>& signature) const {
  if (signature.size() != signature_length()) {
    return Status::InvalidArgument("signature length mismatch");
  }
  std::unordered_set<uint64_t> candidates;
  for (uint32_t band = 0; band < bands_; ++band) {
    const auto it = tables_[band].find(BandKey(band, signature));
    if (it == tables_[band].end()) continue;
    candidates.insert(it->second.begin(), it->second.end());
  }
  std::vector<uint64_t> out(candidates.begin(), candidates.end());
  std::sort(out.begin(), out.end());
  return out;
}

double LshIndex::CollisionProbability(double similarity) const {
  const double per_band = std::pow(similarity, rows_per_band_);
  return 1.0 - std::pow(1.0 - per_band, bands_);
}

size_t LshIndex::NumBucketEntries() const {
  size_t total = 0;
  for (const auto& table : tables_) {
    for (const auto& [key, bucket] : table) total += bucket.size();
  }
  return total;
}

}  // namespace gems
