#ifndef GEMS_SIMILARITY_LSH_H_
#define GEMS_SIMILARITY_LSH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"

/// \file
/// Banded LSH index (Indyk & Motwani 1998; banding per Mining of Massive
/// Datasets): splits a signature into b bands of r rows; items colliding on
/// any full band become candidates. Collision probability for similarity s
/// is 1 - (1 - s^r)^b — the classic S-curve whose shape experiment E11
/// reproduces. Works over MinHash signatures (Jaccard) or SimHash bit
/// blocks (cosine).

namespace gems {

/// LSH index over fixed-length signatures (one uint64 per row).
class LshIndex {
 public:
  /// Signature length must equal bands * rows_per_band.
  LshIndex(uint32_t bands, uint32_t rows_per_band, uint64_t seed = 0);

  LshIndex(const LshIndex&) = default;
  LshIndex& operator=(const LshIndex&) = default;
  LshIndex(LshIndex&&) = default;
  LshIndex& operator=(LshIndex&&) = default;

  /// Indexes an item id under its signature.
  Status Insert(uint64_t id, const std::vector<uint64_t>& signature);

  /// Ids sharing at least one band with the query signature (deduplicated;
  /// may include false positives, to be filtered by exact comparison).
  Result<std::vector<uint64_t>> Query(
      const std::vector<uint64_t>& signature) const;

  /// Theoretical candidate probability at similarity s: 1 - (1 - s^r)^b.
  double CollisionProbability(double similarity) const;

  uint32_t bands() const { return bands_; }
  uint32_t rows_per_band() const { return rows_per_band_; }
  size_t signature_length() const {
    return static_cast<size_t>(bands_) * rows_per_band_;
  }
  size_t NumItems() const { return num_items_; }

  /// Total bucket entries (probe-cost accounting for E11).
  size_t NumBucketEntries() const;

 private:
  uint64_t BandKey(uint32_t band,
                   const std::vector<uint64_t>& signature) const;

  uint32_t bands_;
  uint32_t rows_per_band_;
  uint64_t seed_;
  size_t num_items_ = 0;
  /// One hash table per band: band key -> item ids.
  std::vector<std::unordered_map<uint64_t, std::vector<uint64_t>>> tables_;
};

}  // namespace gems

#endif  // GEMS_SIMILARITY_LSH_H_
