#include "similarity/minhash.h"

#include <limits>

#include <algorithm>

#include "common/check.h"
#include "core/wire.h"
#include "hash/hash.h"
#include "simd/dispatch.h"

namespace gems {

MinHashSketch::MinHashSketch(uint32_t k, uint64_t seed)
    : k_(k), seed_(seed) {
  GEMS_CHECK(k >= 1);
  signature_.assign(k, std::numeric_limits<uint64_t>::max());
}

void MinHashSketch::Update(uint64_t item) {
  for (uint32_t i = 0; i < k_; ++i) {
    const uint64_t h = Hash64(item, DeriveSeed(seed_, i));
    if (h < signature_[i]) signature_[i] = h;
  }
}

void MinHashSketch::UpdateBatch(std::span<const uint64_t> items) {
  // Coordinates outer: each signature slot is a pure min-reduction over
  // the batch under its own hash function, so one kernel call folds the
  // whole batch with the seed mix hoisted out of the item loop (per-item
  // Update re-derives it for every item). Min commutes and the hash values
  // are identical, so the signature is byte-identical to per-item ingest.
  const simd::SimdKernels& kernels = simd::Kernels();
  for (uint32_t i = 0; i < k_; ++i) {
    // Hash64(item, s) = Mix64(item + Mix64(s + C)); hoist the seed mix.
    const uint64_t mixed_seed =
        Mix64(DeriveSeed(seed_, i) + 0x9E3779B97F4A7C15ULL);
    const uint64_t batch_min =
        kernels.mix64_min(items.data(), items.size(), mixed_seed);
    signature_[i] = std::min(signature_[i], batch_min);
  }
}

Result<double> MinHashSketch::Jaccard(const MinHashSketch& other) const {
  if (k_ != other.k_ || seed_ != other.seed_) {
    return Status::InvalidArgument(
        "MinHash Jaccard requires identical k and seed");
  }
  uint32_t matches = 0;
  for (uint32_t i = 0; i < k_; ++i) {
    if (signature_[i] == other.signature_[i]) ++matches;
  }
  return static_cast<double>(matches) / static_cast<double>(k_);
}

Status MinHashSketch::Merge(const MinHashSketch& other) {
  if (k_ != other.k_ || seed_ != other.seed_) {
    return Status::InvalidArgument(
        "MinHash merge requires identical k and seed");
  }
  simd::Kernels().u64_min(signature_.data(), other.signature_.data(),
                          signature_.size());
  return Status::Ok();
}

std::vector<uint8_t> MinHashSketch::Serialize() const {
  ByteWriter w;
  w.PutU32(k_);
  w.PutU64(seed_);
  for (uint64_t coordinate : signature_) w.PutU64(coordinate);
  return WrapEnvelope(SketchTypeId::kMinHash,
                      std::move(w).TakeBytes());
}

Result<MinHashSketch> MinHashSketch::Deserialize(
    std::span<const uint8_t> bytes) {
  Result<ByteReader> payload = OpenEnvelope(SketchTypeId::kMinHash, bytes);
  if (!payload.ok()) return payload.status();
  ByteReader r = std::move(payload).value();
  uint32_t k;
  uint64_t seed;
  if (Status sk = r.GetU32(&k); !sk.ok()) return sk;
  if (Status ss = r.GetU64(&seed); !ss.ok()) return ss;
  if (k == 0 || k > (1u << 20)) {
    return Status::Corruption("invalid MinHash k");
  }
  MinHashSketch sketch(k, seed);
  for (uint64_t& coordinate : sketch.signature_) {
    if (Status sc = r.GetU64(&coordinate); !sc.ok()) return sc;
  }
  return sketch;
}

}  // namespace gems
