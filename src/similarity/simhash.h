#ifndef GEMS_SIMILARITY_SIMHASH_H_
#define GEMS_SIMILARITY_SIMHASH_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

/// \file
/// SimHash (Charikar 2002): random-hyperplane LSH for cosine similarity.
/// Bit i of the signature is the sign of the dot product with a random
/// Rademacher hyperplane; P[bit collision] = 1 - angle/pi. This is the
/// signature the paper's image-similarity scenario uses over learned
/// vector embeddings (experiment E11).

namespace gems {

/// Generates b-bit SimHash signatures of real vectors.
class SimHasher {
 public:
  /// `num_bits` signature length.
  SimHasher(uint32_t num_bits, uint64_t seed = 0);

  SimHasher(const SimHasher&) = default;
  SimHasher& operator=(const SimHasher&) = default;

  /// Signature of a dense vector (packed into 64-bit words).
  std::vector<uint64_t> Signature(const std::vector<double>& vector) const;

  /// Hamming distance between two signatures.
  static uint32_t HammingDistance(const std::vector<uint64_t>& a,
                                  const std::vector<uint64_t>& b);

  /// Estimated cosine similarity from a Hamming distance:
  /// cos(pi * hamming / num_bits).
  double EstimateCosine(const std::vector<uint64_t>& a,
                        const std::vector<uint64_t>& b) const;

  uint32_t num_bits() const { return num_bits_; }

 private:
  /// Rademacher entry of hyperplane `bit` at coordinate `coordinate`.
  int PlaneEntry(uint32_t bit, size_t coordinate) const;

  uint32_t num_bits_;
  uint64_t seed_;
};

/// Exact cosine similarity between two vectors (baseline).
double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b);

}  // namespace gems

#endif  // GEMS_SIMILARITY_SIMHASH_H_
