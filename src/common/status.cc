#include "common/status.h"

namespace gems {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

StatusCode StatusCodeFromWire(uint8_t raw) {
  if (raw > static_cast<uint8_t>(StatusCode::kUnavailable)) {
    return StatusCode::kCorruption;
  }
  return static_cast<StatusCode>(raw);
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace gems
