#ifndef GEMS_COMMON_HUGEPAGE_H_
#define GEMS_COMMON_HUGEPAGE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

/// \file
/// Hugepage-backed allocation for large sketch register arrays. Once ingest
/// is vectorized, big sketches bottleneck on TLB misses: a 32 MiB Count-Min
/// walked by random probes touches 8192 distinct 4 KiB pages, but only 16
/// 2 MiB hugepages. `HugePageAllocator` routes allocations at or above a
/// 2 MiB threshold through anonymous mmap + madvise(MADV_HUGEPAGE) so the
/// kernel backs them with transparent hugepages where it can, and falls
/// back to aligned operator new everywhere else (small allocations,
/// non-Linux hosts, GEMS_DISABLE_HUGEPAGES=1). The fallback is transparent:
/// callers see only an allocator whose blocks are always 64-byte aligned —
/// which the cache-line-blocked sketch layouts rely on.
///
/// Grant/deny counters are process-global and exported through
/// HugePageStats()/LayoutJson() so benches can record placement provenance
/// next to the SIMD dispatch provenance.

namespace gems {

/// Allocation-path counters since process start. "granted" counts mmap
/// allocations whose MADV_HUGEPAGE advice the kernel accepted, "denied"
/// counts mmap allocations where the advice was refused (the 4 KiB-paged
/// mapping is still used), "fallback_small" counts allocations under the
/// threshold or on hosts without hugepage support (always heap-served).
struct HugePageStats {
  uint64_t granted = 0;
  uint64_t denied = 0;
  uint64_t fallback_small = 0;
};

HugePageStats GetHugePageStats();

/// False when GEMS_DISABLE_HUGEPAGES is set or the platform has no
/// MADV_HUGEPAGE; cached on first call.
bool HugePagesEnabled();

namespace hugepage_internal {

/// Allocations at or above this go the mmap + MADV_HUGEPAGE route (2 MiB —
/// the x86-64 transparent-hugepage size).
inline constexpr size_t kHugePageThreshold = size_t{2} << 20;

void* Allocate(size_t bytes);
void Deallocate(void* ptr, size_t bytes) noexcept;

}  // namespace hugepage_internal

/// Minimal std allocator over the hugepage path. Stateless: deallocate
/// recomputes the allocation route from the byte count, so containers can
/// copy/move freely.
template <typename T>
class HugePageAllocator {
 public:
  using value_type = T;

  HugePageAllocator() = default;
  template <typename U>
  HugePageAllocator(const HugePageAllocator<U>&) {}  // NOLINT

  T* allocate(size_t n) {
    return static_cast<T*>(hugepage_internal::Allocate(n * sizeof(T)));
  }
  void deallocate(T* ptr, size_t n) noexcept {
    hugepage_internal::Deallocate(ptr, n * sizeof(T));
  }

  friend bool operator==(const HugePageAllocator&, const HugePageAllocator&) {
    return true;
  }
};

/// The register-array vector type the big sketch families use: std::vector
/// semantics, hugepage-backed above the threshold, 64-byte aligned always.
template <typename T>
using HugeVector = std::vector<T, HugePageAllocator<T>>;

/// Memory-layout provenance for bench JSON: prefetch on/off and the
/// hugepage grant/deny counters, alongside simd::DispatchJson().
std::string LayoutJson();

}  // namespace gems

#endif  // GEMS_COMMON_HUGEPAGE_H_
