#ifndef GEMS_COMMON_CHECK_H_
#define GEMS_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// Runtime invariant checks for programmer errors.
///
/// Library code does not throw exceptions. Recoverable failures are reported
/// through gems::Status; violations of documented preconditions abort via
/// GEMS_CHECK. GEMS_DCHECK compiles away in release builds and is used on
/// hot paths.

/// Aborts the process with a message if `condition` is false.
#define GEMS_CHECK(condition)                                               \
  do {                                                                      \
    if (!(condition)) {                                                     \
      std::fprintf(stderr, "GEMS_CHECK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #condition);                                   \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

/// Like GEMS_CHECK but only enabled in debug builds.
#ifdef NDEBUG
#define GEMS_DCHECK(condition) \
  do {                         \
  } while (false)
#else
#define GEMS_DCHECK(condition) GEMS_CHECK(condition)
#endif

#endif  // GEMS_COMMON_CHECK_H_
