#ifndef GEMS_COMMON_NUMERIC_H_
#define GEMS_COMMON_NUMERIC_H_

#include <cstddef>
#include <vector>

/// \file
/// Numeric helpers shared by estimators and the benchmark harness:
/// compensated summation, normal-distribution quantiles for confidence
/// intervals, and simple descriptive statistics.

namespace gems {

/// Kahan compensated summation; keeps O(1) rounding error over long streams.
class KahanSum {
 public:
  KahanSum() = default;

  KahanSum(const KahanSum&) = default;
  KahanSum& operator=(const KahanSum&) = default;

  void Add(double value) {
    const double y = value - compensation_;
    const double t = sum_ + y;
    compensation_ = (t - sum_) - y;
    sum_ = t;
  }

  double sum() const { return sum_; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

/// Inverse standard-normal CDF (Acklam's rational approximation, relative
/// error < 1.2e-9). `p` must be in (0, 1).
double InverseNormalCdf(double p);

/// Two-sided z-value for a given confidence level, e.g.
/// NormalQuantileForConfidence(0.95) == 1.9599...
double NormalQuantileForConfidence(double confidence);

/// Mean of `values` (0 for empty input).
double Mean(const std::vector<double>& values);

/// Population standard deviation of `values` (0 for fewer than 2 entries).
double StdDev(const std::vector<double>& values);

/// Root-mean-square of `values` (0 for empty input).
double Rms(const std::vector<double>& values);

/// Median (averages the middle pair for even sizes); copies and sorts.
double Median(std::vector<double> values);

/// Relative error |estimate - truth| / max(|truth|, 1).
double RelativeError(double estimate, double truth);

}  // namespace gems

#endif  // GEMS_COMMON_NUMERIC_H_
