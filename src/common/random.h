#ifndef GEMS_COMMON_RANDOM_H_
#define GEMS_COMMON_RANDOM_H_

#include <cstdint>

#include "common/check.h"

/// \file
/// Deterministic pseudo-random generators. Sketch algorithms are randomized;
/// every randomized component in this library takes an explicit seed so that
/// experiments are reproducible run-to-run.

namespace gems {

/// SplitMix64: tiny, fast generator used to seed others and as a cheap
/// stateless mixer (Steele, Lea & Flood 2014).
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  SplitMix64(const SplitMix64&) = default;
  SplitMix64& operator=(const SplitMix64&) = default;

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Stateless finalizer form of SplitMix64: maps any 64-bit value to a
/// well-mixed 64-bit value. Used for deriving per-row seeds.
uint64_t Mix64(uint64_t x);

/// Xoshiro256**: the library's general-purpose PRNG (Blackman & Vigna).
/// Fast, 256-bit state, passes BigCrush.
class Rng {
 public:
  /// Seeds the full state from `seed` via SplitMix64 (seed 0 is fine).
  explicit Rng(uint64_t seed);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform in [0, bound) without modulo bias; bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Standard normal via Box-Muller (cached pair).
  double NextGaussian();

  /// Exponential with rate 1.
  double NextExponential();

  /// True with probability p (p clamped to [0, 1]).
  bool NextBernoulli(double p);

  /// Rademacher +1/-1 with equal probability.
  int NextSign() { return (NextU64() & 1) ? 1 : -1; }

  /// Geometric sample: number of failures before first success with success
  /// probability p in (0, 1].
  uint64_t NextGeometric(double p);

 private:
  uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace gems

#endif  // GEMS_COMMON_RANDOM_H_
