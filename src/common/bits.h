#ifndef GEMS_COMMON_BITS_H_
#define GEMS_COMMON_BITS_H_

#include <bit>
#include <cstdint>

#include "common/check.h"

/// \file
/// Bit-manipulation helpers shared by the sketch implementations. Sketches
/// lean heavily on "fiddly bit manipulation tricks" (leading-zero counts for
/// HLL registers, power-of-two masks for hash-bucket selection), so these
/// live in one audited place.

namespace gems {

/// Number of leading zero bits in `x`; returns 64 for x == 0.
inline int CountLeadingZeros64(uint64_t x) { return std::countl_zero(x); }

/// Number of trailing zero bits in `x`; returns 64 for x == 0.
inline int CountTrailingZeros64(uint64_t x) { return std::countr_zero(x); }

/// Population count.
inline int PopCount64(uint64_t x) { return std::popcount(x); }

/// True iff `x` is a power of two (and non-zero).
inline bool IsPowerOfTwo(uint64_t x) { return std::has_single_bit(x); }

/// Smallest power of two >= `x` (x must be <= 2^63).
inline uint64_t NextPowerOfTwo(uint64_t x) {
  GEMS_DCHECK(x <= (uint64_t{1} << 63));
  return std::bit_ceil(x);
}

/// floor(log2(x)); requires x > 0.
inline int FloorLog2(uint64_t x) {
  GEMS_DCHECK(x > 0);
  return 63 - CountLeadingZeros64(x);
}

/// ceil(log2(x)); requires x > 0.
inline int CeilLog2(uint64_t x) {
  GEMS_DCHECK(x > 0);
  return IsPowerOfTwo(x) ? FloorLog2(x) : FloorLog2(x) + 1;
}

/// Position (1-based) of the leftmost 1-bit within the low `width` bits of
/// `x`, as used by LogLog/HyperLogLog register updates: rho(0b0001, 4) == 4,
/// rho(0b1000, 4) == 1, rho(0, width) == width + 1.
inline int RankOfLeftmostOne(uint64_t x, int width) {
  GEMS_DCHECK(width >= 1 && width <= 64);
  if (width < 64) x &= (uint64_t{1} << width) - 1;
  if (x == 0) return width + 1;
  return width - FloorLog2(x);
}

}  // namespace gems

#endif  // GEMS_COMMON_BITS_H_
