#ifndef GEMS_COMMON_LAYOUT_H_
#define GEMS_COMMON_LAYOUT_H_

#include <cstdint>

namespace gems {

/// Counter-array layouts for the frequency sketches.
///
/// `kFlat` is the classic row-major matrix: row r is a contiguous run of
/// `width` counters and an update touches `depth` distinct cache lines.
/// `kBlocked` packs all `depth` counters for a key into one 64-byte block
/// selected by a single hash (the layout BlockedBloom uses), so an update
/// touches exactly one line. The wire format is always flat: blocked
/// sketches serialize through a flat permutation, so checkpoints, MERGE
/// envelopes, and `MergeFromView` are layout-agnostic on the wire.
///
/// The two layouts hash differently, so a flat and a blocked sketch are
/// *not* mergeable with each other even at equal (width, depth, seed).
enum class SketchLayout : uint8_t {
  kFlat = 0,
  kBlocked = 1,
};

inline const char* LayoutName(SketchLayout layout) {
  return layout == SketchLayout::kBlocked ? "blocked" : "flat";
}

}  // namespace gems

#endif  // GEMS_COMMON_LAYOUT_H_
