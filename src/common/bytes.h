#ifndef GEMS_COMMON_BYTES_H_
#define GEMS_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

/// \file
/// Little-endian byte serialization used by every sketch's
/// Serialize/Deserialize pair. The format written by ByteWriter is exactly
/// what ByteReader consumes; all multi-byte integers are little-endian so
/// that serialized sketches are portable across hosts.

namespace gems {

/// Append-only buffer for encoding a sketch into bytes.
class ByteWriter {
 public:
  ByteWriter() = default;

  ByteWriter(const ByteWriter&) = delete;
  ByteWriter& operator=(const ByteWriter&) = delete;
  ByteWriter(ByteWriter&&) = default;
  ByteWriter& operator=(ByteWriter&&) = default;

  void PutU8(uint8_t v) { buffer_.push_back(v); }
  void PutU16(uint16_t v) { PutLittleEndian(v, 2); }
  void PutU32(uint32_t v) { PutLittleEndian(v, 4); }
  void PutU64(uint64_t v) { PutLittleEndian(v, 8); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }

  /// Unsigned LEB128 variable-length encoding (1 byte for values < 128).
  void PutVarint(uint64_t v);

  /// Length-prefixed byte string.
  void PutBytes(const void* data, size_t size);
  void PutString(const std::string& s) { PutBytes(s.data(), s.size()); }

  /// Raw bytes with no length prefix (caller knows the size).
  void PutRaw(const void* data, size_t size);

  const std::vector<uint8_t>& bytes() const { return buffer_; }
  std::vector<uint8_t> TakeBytes() && { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  void PutLittleEndian(uint64_t v, int num_bytes) {
    for (int i = 0; i < num_bytes; ++i) {
      buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<uint8_t> buffer_;
};

/// Sequential decoder over a byte span. All getters return
/// Status::Corruption on truncated input rather than reading out of bounds.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size)
      : data_(data), size_(size), pos_(0) {}
  explicit ByteReader(const std::vector<uint8_t>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}
  explicit ByteReader(std::span<const uint8_t> bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  ByteReader(const ByteReader&) = default;
  ByteReader& operator=(const ByteReader&) = default;

  Status GetU8(uint8_t* out);
  Status GetU16(uint16_t* out);
  Status GetU32(uint32_t* out);
  Status GetU64(uint64_t* out);
  Status GetI64(int64_t* out);
  Status GetDouble(double* out);
  Status GetVarint(uint64_t* out);
  /// Reads a length-prefixed byte string written by PutBytes.
  Status GetBytes(std::vector<uint8_t>* out);
  /// Zero-copy variant of GetBytes: `out` borrows the underlying buffer
  /// (valid only while it lives) instead of copying into a fresh vector.
  /// This is how nested envelopes (checkpoints, arenas) are walked without
  /// materializing each one.
  Status GetBytesView(std::span<const uint8_t>* out);
  Status GetString(std::string* out);
  /// Reads exactly `size` raw bytes.
  Status GetRaw(void* out, size_t size);
  /// Zero-copy variant of GetRaw: borrows `size` bytes of the underlying
  /// buffer without copying.
  Status GetRawView(size_t size, std::span<const uint8_t>* out);

  /// Bytes not yet consumed.
  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  Status GetLittleEndian(uint64_t* out, int num_bytes);

  const uint8_t* data_;
  size_t size_;
  size_t pos_;
};

}  // namespace gems

#endif  // GEMS_COMMON_BYTES_H_
