#include "common/hugepage.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>

#if defined(__linux__)
#include <sys/mman.h>
#endif

#include "common/prefetch.h"

namespace gems {
namespace {

std::atomic<uint64_t> g_granted{0};
std::atomic<uint64_t> g_denied{0};
std::atomic<uint64_t> g_fallback_small{0};

// Heap fallback path. 64-byte alignment is part of the allocator's
// contract (cache-line-blocked layouts index blocks assuming line
// alignment), so the small path over-aligns rather than using plain new.
void* AlignedHeapAllocate(size_t bytes) {
  return ::operator new(bytes, std::align_val_t{64});
}

void AlignedHeapDeallocate(void* ptr, size_t bytes) noexcept {
  ::operator delete(ptr, bytes, std::align_val_t{64});
}

}  // namespace

bool HugePagesEnabled() {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  static const bool enabled =
      std::getenv("GEMS_DISABLE_HUGEPAGES") == nullptr;
  return enabled;
#else
  return false;
#endif
}

HugePageStats GetHugePageStats() {
  HugePageStats stats;
  stats.granted = g_granted.load(std::memory_order_relaxed);
  stats.denied = g_denied.load(std::memory_order_relaxed);
  stats.fallback_small = g_fallback_small.load(std::memory_order_relaxed);
  return stats;
}

namespace hugepage_internal {

void* Allocate(size_t bytes) {
  if (bytes == 0) bytes = 1;
  if (bytes >= kHugePageThreshold && HugePagesEnabled()) {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
    // The deallocate route is recomputed from (bytes, enabled) alone, so
    // a large allocation must always come from mmap: on mmap failure we
    // report OOM rather than silently switching to a heap pointer that
    // Deallocate would munmap.
    void* ptr = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (ptr == MAP_FAILED) throw std::bad_alloc();
    if (::madvise(ptr, bytes, MADV_HUGEPAGE) == 0) {
      g_granted.fetch_add(1, std::memory_order_relaxed);
    } else {
      // The mapping is still usable, just not hugepage-advised.
      g_denied.fetch_add(1, std::memory_order_relaxed);
    }
    return ptr;
#else
    return AlignedHeapAllocate(bytes);
#endif
  }
  g_fallback_small.fetch_add(1, std::memory_order_relaxed);
  return AlignedHeapAllocate(bytes);
}

void Deallocate(void* ptr, size_t bytes) noexcept {
  if (ptr == nullptr) return;
  if (bytes == 0) bytes = 1;
  if (bytes >= kHugePageThreshold && HugePagesEnabled()) {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
    ::munmap(ptr, bytes);
    return;
#endif
  }
  AlignedHeapDeallocate(ptr, bytes);
}

}  // namespace hugepage_internal

std::string LayoutJson() {
  const HugePageStats stats = GetHugePageStats();
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"prefetch\": %s, \"hugepages_enabled\": %s, "
                "\"hugepage_granted\": %llu, \"hugepage_denied\": %llu, "
                "\"hugepage_fallback_small\": %llu}",
                PrefetchEnabled() ? "true" : "false",
                HugePagesEnabled() ? "true" : "false",
                static_cast<unsigned long long>(stats.granted),
                static_cast<unsigned long long>(stats.denied),
                static_cast<unsigned long long>(stats.fallback_small));
  return std::string(buf);
}

}  // namespace gems
