#include "common/numeric.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace gems {

double InverseNormalCdf(double p) {
  GEMS_CHECK(p > 0.0 && p < 1.0);
  // Peter Acklam's rational approximation with one Halley refinement step.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  const double p_high = 1.0 - p_low;

  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= p_high) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
          c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }

  // One step of Halley's method against erfc for ~1e-15 accuracy.
  const double e = 0.5 * std::erfc(-x / std::sqrt(2.0)) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

double NormalQuantileForConfidence(double confidence) {
  GEMS_CHECK(confidence > 0.0 && confidence < 1.0);
  return InverseNormalCdf(0.5 + confidence / 2.0);
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  KahanSum sum;
  for (double v : values) sum.Add(v);
  return sum.sum() / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  KahanSum sum;
  for (double v : values) sum.Add((v - mean) * (v - mean));
  return std::sqrt(sum.sum() / static_cast<double>(values.size()));
}

double Rms(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  KahanSum sum;
  for (double v : values) sum.Add(v * v);
  return std::sqrt(sum.sum() / static_cast<double>(values.size()));
}

double Median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  if (n % 2 == 1) return values[n / 2];
  return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

double RelativeError(double estimate, double truth) {
  const double denom = std::max(std::abs(truth), 1.0);
  return std::abs(estimate - truth) / denom;
}

}  // namespace gems
