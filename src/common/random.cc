#include "common/random.h"

#include <cmath>

namespace gems {
namespace {

inline uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t Mix64(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (uint64_t& word : state_) word = sm.Next();
}

uint64_t Rng::NextU64() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  GEMS_DCHECK(bound > 0);
  // Rejection sampling over the top of the range to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  // 53 high bits -> uniform in [0, 1) with full double precision.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 > 0 guaranteed by adding the smallest step.
  double u1 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::NextExponential() {
  double u = NextDouble();
  while (u <= 0.0) u = NextDouble();
  return -std::log(u);
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

uint64_t Rng::NextGeometric(double p) {
  GEMS_DCHECK(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  // Inverse transform: floor(log(U) / log(1-p)).
  double u = NextDouble();
  while (u <= 0.0) u = NextDouble();
  return static_cast<uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

}  // namespace gems
