#ifndef GEMS_COMMON_STATUS_H_
#define GEMS_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace gems {

/// Error categories for recoverable failures (RocksDB-style Status codes).
///
/// The numeric values are part of the gemsd wire protocol: response frames
/// carry them verbatim as a u8 (see src/server/protocol.h). Append new
/// codes at the end only; never renumber or reuse a value.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kCorruption = 2,        // malformed serialized bytes
  kOutOfRange = 3,        // index / rank out of range
  kUnimplemented = 4,
  kFailedPrecondition = 5,
  kNotFound = 6,
  kAlreadyExists = 7,     // create of a key/entry that is already present
  kResourceExhausted = 8, // a hard capacity limit was hit (frame, keyspace)
  kUnavailable = 9,       // transient transport failure; retry may succeed
};

/// Stable PascalCase name for a status code ("NotFound", ...); "Unknown"
/// for values this build does not know.
const char* StatusCodeName(StatusCode code);

/// Recovers a StatusCode from its wire byte. Values outside the known
/// range decode as kCorruption: the frame itself is malformed, and
/// kCorruption is never a lie about bytes we cannot interpret.
StatusCode StatusCodeFromWire(uint8_t raw);

/// Lightweight success-or-error value used instead of exceptions.
///
/// A Status is cheap to copy in the success case (no allocation) and carries
/// a code plus a human-readable message on failure.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, e.g. `return Status::InvalidArgument("k must be > 0");`
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status Corruption(std::string message) {
    return Status(StatusCode::kCorruption, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status Unimplemented(std::string message) {
    return Status(StatusCode::kUnimplemented, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status AlreadyExists(std::string message) {
    return Status(StatusCode::kAlreadyExists, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }

  /// Rebuilds a status from a (code, message) pair that crossed the wire.
  /// An OK code yields Ok() regardless of the message.
  static Status FromCode(StatusCode code, std::string message) {
    if (code == StatusCode::kOk) return Status();
    return Status(code, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<code>: <message>" for logs and test failures.
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  StatusCode code_;
  std::string message_;
};

/// A value or an error. Use `ok()` before `value()`.
///
/// Example:
///   Result<HyperLogLog> r = HyperLogLog::Deserialize(bytes);
///   if (!r.ok()) return r.status();
///   HyperLogLog sketch = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or from an error Status keeps call
  /// sites terse (`return sketch;` / `return Status::Corruption(...)`).
  Result(T value) : status_(), value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)), value_(std::nullopt) {
    GEMS_CHECK(!status_.ok());  // OK must carry a value.
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Requires ok().
  const T& value() const& {
    GEMS_CHECK(value_.has_value());
    return *value_;
  }
  T& value() & {
    GEMS_CHECK(value_.has_value());
    return *value_;
  }
  T&& value() && {
    GEMS_CHECK(value_.has_value());
    return *std::move(value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace gems

#endif  // GEMS_COMMON_STATUS_H_
