#ifndef GEMS_COMMON_PREFETCH_H_
#define GEMS_COMMON_PREFETCH_H_

#include <cstdlib>

namespace gems {

/// Software prefetch for the two-phase (hash a run, touch its target
/// lines, then update) batched sketch loops. GEMS_DISABLE_PREFETCH=1
/// turns the sketch-layer prefetch passes off for A/B measurement; the
/// flag is read once and cached, like GEMS_FORCE_SCALAR in the SIMD
/// dispatcher.
inline bool PrefetchEnabled() {
  static const bool enabled = std::getenv("GEMS_DISABLE_PREFETCH") == nullptr;
  return enabled;
}

inline void PrefetchForRead(const void* addr) {
  __builtin_prefetch(addr, /*rw=*/0, /*locality=*/1);
}

inline void PrefetchForWrite(const void* addr) {
  __builtin_prefetch(addr, /*rw=*/1, /*locality=*/1);
}

}  // namespace gems

#endif  // GEMS_COMMON_PREFETCH_H_
