#ifndef GEMS_COMMON_FLAT_MAP_H_
#define GEMS_COMMON_FLAT_MAP_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/random.h"

/// \file
/// A flat open-addressing hash map keyed by uint64_t, for the hot lookup
/// tables that node-based containers (std::map, std::unordered_map) make
/// pointer-chasing exercises: one contiguous slot array, linear probing
/// from a SplitMix64-mixed bucket, power-of-two capacity grown at 7/8
/// load. The GROUP-BY table of the stream-query engine is the motivating
/// user — one probe per event lands in one or two cache lines instead of
/// a red-black-tree descent.
///
/// Deliberately minimal: insert-or-find, find, clear, and unordered
/// iteration. No erase (the engine clears whole windows, never single
/// groups), so probe chains never need tombstones. Iteration order is
/// deterministic for a fixed insertion sequence but is NOT sorted;
/// callers that emit ordered results (window snapshots, checkpoints)
/// sort at emission.

namespace gems {

/// Flat hash map from uint64_t keys to V. V must be default-constructible
/// and movable. References returned by operator[]/Find are invalidated by
/// the next insertion (the table may rehash); they are stable across
/// Find-only use.
template <typename V>
class FlatMap64 {
 public:
  FlatMap64() = default;

  FlatMap64(const FlatMap64&) = default;
  FlatMap64& operator=(const FlatMap64&) = default;
  FlatMap64(FlatMap64&&) = default;
  FlatMap64& operator=(FlatMap64&&) = default;

  /// Returns the value for `key`, default-constructing it on first use.
  V& operator[](uint64_t key) {
    if (slots_.empty() || (size_ + 1) * 8 > slots_.size() * 7) {
      Grow();
    }
    const size_t slot = Probe(key);
    if (!full_[slot]) {
      full_[slot] = 1;
      slots_[slot].key = key;
      ++size_;
    }
    return slots_[slot].value;
  }

  /// Returns the value for `key`, or nullptr if absent. Never rehashes.
  V* Find(uint64_t key) {
    if (slots_.empty()) return nullptr;
    const size_t slot = Probe(key);
    return full_[slot] ? &slots_[slot].value : nullptr;
  }
  const V* Find(uint64_t key) const {
    return const_cast<FlatMap64*>(this)->Find(key);
  }

  /// Drops every entry and releases storage (std::map::clear semantics:
  /// the next window starts from an empty table).
  void Clear() {
    slots_.clear();
    full_.clear();
    size_ = 0;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Visits every (key, value) pair in unspecified (hash) order.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (full_[i]) fn(slots_[i].key, slots_[i].value);
    }
  }
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (full_[i]) fn(slots_[i].key, slots_[i].value);
    }
  }

 private:
  struct Slot {
    uint64_t key = 0;
    V value{};
  };

  /// First slot in `key`'s probe chain that holds `key` or is empty.
  size_t Probe(uint64_t key) const {
    const size_t mask = slots_.size() - 1;
    size_t slot = static_cast<size_t>(Mix64(key)) & mask;
    while (full_[slot] && slots_[slot].key != key) {
      slot = (slot + 1) & mask;
    }
    return slot;
  }

  void Grow() {
    const size_t capacity = slots_.empty() ? 16 : slots_.size() * 2;
    std::vector<Slot> old_slots = std::move(slots_);
    std::vector<uint8_t> old_full = std::move(full_);
    slots_.assign(capacity, Slot{});
    full_.assign(capacity, 0);
    for (size_t i = 0; i < old_slots.size(); ++i) {
      if (!old_full[i]) continue;
      const size_t slot = Probe(old_slots[i].key);
      GEMS_CHECK(!full_[slot]);
      full_[slot] = 1;
      slots_[slot] = std::move(old_slots[i]);
    }
  }

  std::vector<Slot> slots_;   // Power-of-two capacity once non-empty.
  std::vector<uint8_t> full_;
  size_t size_ = 0;
};

}  // namespace gems

#endif  // GEMS_COMMON_FLAT_MAP_H_
