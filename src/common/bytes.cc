#include "common/bytes.h"

namespace gems {

void ByteWriter::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    buffer_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buffer_.push_back(static_cast<uint8_t>(v));
}

void ByteWriter::PutBytes(const void* data, size_t size) {
  PutVarint(size);
  PutRaw(data, size);
}

void ByteWriter::PutRaw(const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  buffer_.insert(buffer_.end(), p, p + size);
}

Status ByteReader::GetLittleEndian(uint64_t* out, int num_bytes) {
  if (remaining() < static_cast<size_t>(num_bytes)) {
    return Status::Corruption("truncated integer");
  }
  uint64_t v = 0;
  for (int i = 0; i < num_bytes; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += num_bytes;
  *out = v;
  return Status::Ok();
}

Status ByteReader::GetU8(uint8_t* out) {
  uint64_t v;
  Status s = GetLittleEndian(&v, 1);
  if (s.ok()) *out = static_cast<uint8_t>(v);
  return s;
}

Status ByteReader::GetU16(uint16_t* out) {
  uint64_t v;
  Status s = GetLittleEndian(&v, 2);
  if (s.ok()) *out = static_cast<uint16_t>(v);
  return s;
}

Status ByteReader::GetU32(uint32_t* out) {
  uint64_t v;
  Status s = GetLittleEndian(&v, 4);
  if (s.ok()) *out = static_cast<uint32_t>(v);
  return s;
}

Status ByteReader::GetU64(uint64_t* out) { return GetLittleEndian(out, 8); }

Status ByteReader::GetI64(int64_t* out) {
  uint64_t v;
  Status s = GetU64(&v);
  if (s.ok()) *out = static_cast<int64_t>(v);
  return s;
}

Status ByteReader::GetDouble(double* out) {
  uint64_t bits;
  Status s = GetU64(&bits);
  if (s.ok()) std::memcpy(out, &bits, sizeof(*out));
  return s;
}

Status ByteReader::GetVarint(uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (AtEnd()) return Status::Corruption("truncated varint");
    if (shift >= 64) return Status::Corruption("varint too long");
    uint8_t byte = data_[pos_++];
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  *out = v;
  return Status::Ok();
}

Status ByteReader::GetBytes(std::vector<uint8_t>* out) {
  uint64_t size;
  Status s = GetVarint(&size);
  if (!s.ok()) return s;
  if (remaining() < size) return Status::Corruption("truncated byte string");
  out->assign(data_ + pos_, data_ + pos_ + size);
  pos_ += size;
  return Status::Ok();
}

Status ByteReader::GetBytesView(std::span<const uint8_t>* out) {
  uint64_t size;
  Status s = GetVarint(&size);
  if (!s.ok()) return s;
  if (remaining() < size) return Status::Corruption("truncated byte string");
  *out = std::span<const uint8_t>(data_ + pos_, size);
  pos_ += size;
  return Status::Ok();
}

Status ByteReader::GetString(std::string* out) {
  uint64_t size;
  Status s = GetVarint(&size);
  if (!s.ok()) return s;
  if (remaining() < size) return Status::Corruption("truncated string");
  out->assign(reinterpret_cast<const char*>(data_ + pos_), size);
  pos_ += size;
  return Status::Ok();
}

Status ByteReader::GetRaw(void* out, size_t size) {
  if (remaining() < size) return Status::Corruption("truncated raw bytes");
  std::memcpy(out, data_ + pos_, size);
  pos_ += size;
  return Status::Ok();
}

Status ByteReader::GetRawView(size_t size, std::span<const uint8_t>* out) {
  if (remaining() < size) return Status::Corruption("truncated raw bytes");
  *out = std::span<const uint8_t>(data_ + pos_, size);
  pos_ += size;
  return Status::Ok();
}

}  // namespace gems
