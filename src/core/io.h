#ifndef GEMS_CORE_IO_H_
#define GEMS_CORE_IO_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

/// \file
/// Span-oriented serialization primitives for the zero-copy stack.
///
/// The value-returning Serialize()/Deserialize() surface pays one heap
/// allocation and one full copy per envelope per hop, which is exactly the
/// overhead Friedman's sketch evaluation found dominating merge-heavy
/// workloads. This header supplies the two primitives the rest of the stack
/// is built on instead:
///
///  - ByteSink: an append-into-caller-buffer writer. The caller owns the
///    destination vector (an arena, a network buffer being assembled, a
///    checkpoint body); many sketches can serialize into it back to back
///    with no per-sketch allocation. The encodings are bit-identical to
///    ByteWriter's, so a sink-built envelope matches a writer-built one
///    byte for byte.
///  - ByteReader (from common/bytes.h, re-exported here): the bounds-checked
///    span cursor every decoder uses. Combined with ByteSpan and the
///    *View getters it walks nested envelopes without copying them out.
///
/// ByteWriter remains as the convenience owning form; it is now the thin
/// wrapper (own a vector, sink into it), not the primitive.

namespace gems {

/// Non-owning view of serialized bytes. The canonical parameter type for
/// every deserialization and wrap entry point: callers holding a vector, an
/// mmap'd file, or a slice of a ring buffer all pass it without copying.
using ByteSpan = std::span<const uint8_t>;

/// Append-only encoder writing into a caller-owned buffer. Holds a pointer,
/// not the storage: cheap to construct per call site, and several sinks may
/// append to the same arena in sequence (never interleaved).
///
/// Offsets returned by size() index the underlying buffer, so a caller can
/// record where an envelope started (`size_t at = sink.size()`) and later
/// slice it back out of the arena as a ByteSpan.
class ByteSink {
 public:
  explicit ByteSink(std::vector<uint8_t>* buffer) : buffer_(buffer) {}

  void PutU8(uint8_t v) { buffer_->push_back(v); }
  void PutU16(uint16_t v) { PutLittleEndian(v, 2); }
  void PutU32(uint32_t v) { PutLittleEndian(v, 4); }
  void PutU64(uint64_t v) { PutLittleEndian(v, 8); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }

  /// Unsigned LEB128, identical to ByteWriter::PutVarint.
  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      buffer_->push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buffer_->push_back(static_cast<uint8_t>(v));
  }

  /// Length-prefixed byte string.
  void PutBytes(const void* data, size_t size) {
    PutVarint(size);
    PutRaw(data, size);
  }
  void PutString(const std::string& s) { PutBytes(s.data(), s.size()); }

  /// Raw bytes with no length prefix (caller knows the size).
  void PutRaw(const void* data, size_t size) {
    if (size == 0) return;
    const uint8_t* p = static_cast<const uint8_t*>(data);
    buffer_->insert(buffer_->end(), p, p + size);
  }

  /// Overwrites previously written bytes in place — how envelope headers
  /// backfill the payload length and checksum once the payload is known,
  /// without buffering the payload separately. `offset` + width must be
  /// within what has already been written.
  void PatchU32(size_t offset, uint32_t v) { PatchLittleEndian(offset, v, 4); }
  void PatchU64(size_t offset, uint64_t v) { PatchLittleEndian(offset, v, 8); }

  /// Current end of the underlying buffer: the offset the next Put lands at.
  size_t size() const { return buffer_->size(); }

  /// Borrowed view of a slice written earlier (e.g. one finished envelope).
  /// Invalidated by further appends, like any vector iterator.
  ByteSpan Slice(size_t offset, size_t length) const {
    return ByteSpan(buffer_->data() + offset, length);
  }

 private:
  void PutLittleEndian(uint64_t v, int num_bytes) {
    for (int i = 0; i < num_bytes; ++i) {
      buffer_->push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  void PatchLittleEndian(size_t offset, uint64_t v, int num_bytes) {
    for (int i = 0; i < num_bytes; ++i) {
      (*buffer_)[offset + i] = static_cast<uint8_t>(v >> (8 * i));
    }
  }

  std::vector<uint8_t>* buffer_;
};

}  // namespace gems

#endif  // GEMS_CORE_IO_H_
