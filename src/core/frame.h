#ifndef GEMS_CORE_FRAME_H_
#define GEMS_CORE_FRAME_H_

#include <cstdint>

#include "common/bytes.h"
#include "common/status.h"

/// \file
/// Serialization frame shared by all sketches. Every serialized sketch
/// starts with a fixed header (magic, format version, sketch-type tag) so
/// that bytes written by one sketch type cannot be silently deserialized as
/// another — the classic cross-type corruption bug in summary stores.

namespace gems {

/// Type tags for serialized sketches. Values are part of the wire format;
/// append only, never renumber.
enum class SketchType : uint16_t {
  kMorrisCounter = 1,
  kLinearCounting = 2,
  kFlajoletMartin = 3,
  kLogLog = 4,
  kHyperLogLog = 5,
  kHllPlusPlus = 6,
  kKmv = 7,
  kBloomFilter = 8,
  kCountingBloomFilter = 9,
  kBlockedBloomFilter = 10,
  kCountMin = 11,
  kCountSketch = 12,
  kMisraGries = 13,
  kSpaceSaving = 14,
  kMajority = 15,
  kGreenwaldKhanna = 16,
  kKll = 17,
  kQDigest = 18,
  kTDigest = 19,
  kReservoir = 20,
  kWeightedReservoir = 21,
  kL0Sampler = 22,
  kAmsSketch = 23,
  kMinHash = 24,
  kSimHash = 25,
  kAgmSketch = 26,
  kDyadicCountMin = 27,
};

/// Writes the standard frame header.
void WriteFrameHeader(SketchType type, ByteWriter* writer);

/// Reads and validates the frame header; fails with Corruption on magic or
/// version mismatch and with InvalidArgument on a sketch-type mismatch.
Status ReadFrameHeader(SketchType expected_type, ByteReader* reader);

/// Current serialization format version.
inline constexpr uint8_t kFrameVersion = 1;

}  // namespace gems

#endif  // GEMS_CORE_FRAME_H_
