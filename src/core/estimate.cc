#include "core/estimate.h"

#include <algorithm>
#include <cstdio>

#include "common/numeric.h"

namespace gems {

std::string Estimate::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%.6g [%.6g, %.6g] @ %.0f%%", value, lower,
                upper, confidence * 100.0);
  return std::string(buf);
}

Estimate EstimateFromStdError(double value, double std_error,
                              double confidence) {
  const double z = NormalQuantileForConfidence(confidence);
  Estimate e;
  e.value = value;
  e.lower = value - z * std_error;
  e.upper = value + z * std_error;
  e.confidence = confidence;
  return e;
}

}  // namespace gems
