#include "core/frame.h"

namespace gems {
namespace {

constexpr uint16_t kMagic = 0x47E5;  // "GEms"

}  // namespace

void WriteFrameHeader(SketchType type, ByteWriter* writer) {
  writer->PutU16(kMagic);
  writer->PutU8(kFrameVersion);
  writer->PutU16(static_cast<uint16_t>(type));
}

Status ReadFrameHeader(SketchType expected_type, ByteReader* reader) {
  uint16_t magic;
  Status s = reader->GetU16(&magic);
  if (!s.ok()) return s;
  if (magic != kMagic) return Status::Corruption("bad magic");
  uint8_t version;
  s = reader->GetU8(&version);
  if (!s.ok()) return s;
  if (version != kFrameVersion) {
    return Status::Corruption("unsupported format version");
  }
  uint16_t type;
  s = reader->GetU16(&type);
  if (!s.ok()) return s;
  if (type != static_cast<uint16_t>(expected_type)) {
    return Status::InvalidArgument("sketch type mismatch");
  }
  return Status::Ok();
}

}  // namespace gems
