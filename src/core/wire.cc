#include "core/wire.h"

#include <cstring>

#include "hash/xxhash.h"

namespace gems {
namespace {

/// Checksum of an envelope: hash the payload with a seed derived from the
/// 12 header bytes that precede the checksum field, so header and payload
/// corruption are both detected with a single pass and no copy.
uint64_t EnvelopeChecksum(const uint8_t* header12, const uint8_t* payload,
                          size_t payload_size) {
  const uint64_t header_seed = XxHash64(header12, 12, kWireChecksumSeed);
  return XxHash64(payload, payload_size, header_seed);
}

uint32_t LoadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint16_t LoadU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | p[1] << 8);
}

uint64_t LoadU64(const uint8_t* p) {
  return static_cast<uint64_t>(LoadU32(p)) |
         static_cast<uint64_t>(LoadU32(p + 4)) << 32;
}

}  // namespace

bool IsKnownSketchTypeId(uint16_t raw) {
  return raw >= static_cast<uint16_t>(SketchTypeId::kMorrisCounter) &&
         raw <= static_cast<uint16_t>(SketchTypeId::kExponentialHistogram);
}

const char* SketchTypeName(SketchTypeId id) {
  switch (id) {
    case SketchTypeId::kMorrisCounter: return "morris";
    case SketchTypeId::kLinearCounting: return "linear_counting";
    case SketchTypeId::kFlajoletMartin: return "flajolet_martin";
    case SketchTypeId::kLogLog: return "loglog";
    case SketchTypeId::kHyperLogLog: return "hyperloglog";
    case SketchTypeId::kHllPlusPlus: return "hllpp";
    case SketchTypeId::kKmv: return "kmv";
    case SketchTypeId::kBloomFilter: return "bloom";
    case SketchTypeId::kCountingBloomFilter: return "counting_bloom";
    case SketchTypeId::kBlockedBloomFilter: return "blocked_bloom";
    case SketchTypeId::kCountMin: return "count_min";
    case SketchTypeId::kCountSketch: return "count_sketch";
    case SketchTypeId::kMisraGries: return "misra_gries";
    case SketchTypeId::kSpaceSaving: return "space_saving";
    case SketchTypeId::kMajority: return "majority";
    case SketchTypeId::kGreenwaldKhanna: return "gk";
    case SketchTypeId::kKll: return "kll";
    case SketchTypeId::kQDigest: return "qdigest";
    case SketchTypeId::kTDigest: return "tdigest";
    case SketchTypeId::kReservoir: return "reservoir";
    case SketchTypeId::kWeightedReservoir: return "weighted_reservoir";
    case SketchTypeId::kL0Sampler: return "l0_sampler";
    case SketchTypeId::kAmsSketch: return "ams";
    case SketchTypeId::kMinHash: return "minhash";
    case SketchTypeId::kSimHash: return "simhash";
    case SketchTypeId::kAgmSketch: return "agm";
    case SketchTypeId::kDyadicCountMin: return "dyadic_count_min";
    case SketchTypeId::kSlidingHyperLogLog: return "sliding_hyperloglog";
    case SketchTypeId::kSlidingCountMin: return "sliding_countmin";
    case SketchTypeId::kDecayedCountMin: return "decayed_countmin";
    case SketchTypeId::kExponentialHistogram: return "exponential_histogram";
  }
  return "unknown";
}

std::vector<uint8_t> WrapEnvelope(SketchTypeId type,
                                  std::vector<uint8_t> payload) {
  std::vector<uint8_t> out;
  out.reserve(kWireHeaderSize + payload.size());
  ByteSink sink(&out);
  EnvelopeBuilder env(sink, type);
  sink.PutRaw(payload.data(), payload.size());
  env.Finish();
  return out;
}

EnvelopeBuilder::EnvelopeBuilder(ByteSink& sink, SketchTypeId type)
    : sink_(sink), start_(sink.size()) {
  sink_.PutU32(kWireMagic);
  sink_.PutU16(static_cast<uint16_t>(type));
  sink_.PutU8(kWireVersion);
  sink_.PutU8(0);  // Flags: reserved, zero in version 1.
  sink_.PutU32(0);  // Payload length, backfilled by Finish().
  sink_.PutU64(0);  // Checksum, backfilled by Finish().
}

void EnvelopeBuilder::Finish() {
  if (finished_) return;
  finished_ = true;
  const size_t payload_size = sink_.size() - start_ - kWireHeaderSize;
  sink_.PatchU32(start_ + 8, static_cast<uint32_t>(payload_size));
  const ByteSpan header12 = sink_.Slice(start_, 12);
  const ByteSpan payload = sink_.Slice(start_ + kWireHeaderSize, payload_size);
  sink_.PatchU64(start_ + 12, EnvelopeChecksum(header12.data(), payload.data(),
                                               payload.size()));
}

Result<EnvelopeView> ParseEnvelope(const uint8_t* data, size_t size,
                                   EnvelopeVerify verify) {
  if (data == nullptr || size < kWireHeaderSize) {
    return Status::Corruption("sketch envelope truncated: header incomplete");
  }
  if (LoadU32(data) != kWireMagic) {
    return Status::Corruption("sketch envelope: bad magic");
  }
  const uint16_t raw_type = LoadU16(data + 4);
  if (!IsKnownSketchTypeId(raw_type)) {
    return Status::Corruption("sketch envelope: unknown sketch type id " +
                              std::to_string(raw_type));
  }
  EnvelopeView view;
  view.type = static_cast<SketchTypeId>(raw_type);
  view.version = data[6];
  if (view.version == 0 || view.version > kWireVersion) {
    return Status::Corruption(
        "sketch envelope: unsupported format version " +
        std::to_string(view.version) + " (this build reads <= " +
        std::to_string(kWireVersion) + ")");
  }
  view.flags = data[7];
  if (view.flags != 0) {
    return Status::Corruption("sketch envelope: unknown flag bits set");
  }
  view.payload_size = LoadU32(data + 8);
  if (size - kWireHeaderSize < view.payload_size) {
    return Status::Corruption("sketch envelope truncated: payload incomplete");
  }
  if (size - kWireHeaderSize > view.payload_size) {
    return Status::Corruption("sketch envelope: trailing bytes after payload");
  }
  view.payload = data + kWireHeaderSize;
  if (verify == EnvelopeVerify::kFull) {
    const uint64_t expected = LoadU64(data + 12);
    const uint64_t actual =
        EnvelopeChecksum(data, view.payload, view.payload_size);
    if (expected != actual) {
      return Status::Corruption("sketch envelope: checksum mismatch");
    }
  }
  return view;
}

Result<EnvelopeView> ParseEnvelope(ByteSpan bytes, EnvelopeVerify verify) {
  return ParseEnvelope(bytes.data(), bytes.size(), verify);
}

Result<ByteReader> OpenEnvelope(SketchTypeId expected, ByteSpan bytes) {
  Result<EnvelopeView> view = ParseEnvelope(bytes);
  if (!view.ok()) return view.status();
  if (view.value().type != expected) {
    return Status::Corruption(
        std::string("sketch envelope: type confusion: expected ") +
        SketchTypeName(expected) + ", found " +
        SketchTypeName(view.value().type));
  }
  return ByteReader(view.value().payload, view.value().payload_size);
}

Result<SketchTypeId> PeekSketchType(ByteSpan bytes) {
  Result<EnvelopeView> view = ParseEnvelope(bytes);
  if (!view.ok()) return view.status();
  return view.value().type;
}

}  // namespace gems
