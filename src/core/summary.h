#ifndef GEMS_CORE_SUMMARY_H_
#define GEMS_CORE_SUMMARY_H_

#include <concepts>
#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "core/estimate.h"
#include "core/io.h"
#include "core/view.h"

/// \file
/// Compile-time contracts for summaries, following the "Mergeable
/// Summaries" framing (Agarwal et al., PODS 2012) the paper highlights:
/// a summary supports single-item streaming updates (the streaming model)
/// and pairwise merge (the distributed model), and merging must not degrade
/// the error guarantee relative to streaming the concatenated input.
///
/// These concepts are used by the distributed aggregation substrate and the
/// property tests, which are written once against the concept and
/// instantiated for every conforming sketch.

namespace gems {

/// A summary that can absorb another summary of the same type.
/// `a.Merge(b)` must leave `a` summarizing the union of both inputs.
template <typename S>
concept MergeableSummary = requires(S s, const S& other) {
  { s.Merge(other) } -> std::same_as<Status>;
};

/// A summary over unweighted 64-bit items (sets / multisets of keys).
template <typename S>
concept ItemSummary = requires(S s, uint64_t item) {
  { s.Update(item) };
};

/// A summary over weighted items (frequency vectors).
template <typename S>
concept WeightedItemSummary = requires(S s, uint64_t item, int64_t weight) {
  { s.Update(item, weight) };
};

/// A summary over real values (quantile sketches).
template <typename S>
concept ValueSummary = requires(S s, double value) {
  { s.Update(value) };
};

/// A summary with a batched item ingest path. The contract (verified by the
/// wire tests) is strict: `UpdateBatch(items)` must leave the summary in a
/// state byte-identical (after Serialize) to feeding the same items through
/// `Update` one at a time, in order.
template <typename S>
concept BatchItemSummary = requires(S s, std::span<const uint64_t> items) {
  { s.UpdateBatch(items) };
};

/// A weighted summary with a batched ingest path applying one weight per
/// item (parallel spans).
template <typename S>
concept BatchWeightedItemSummary =
    requires(S s, std::span<const uint64_t> items,
             std::span<const int64_t> weights) {
      { s.UpdateBatch(items, weights) };
    };

/// A value (quantile) summary with a batched ingest path.
template <typename S>
concept BatchValueSummary = requires(S s, std::span<const double> values) {
  { s.UpdateBatch(values) };
};

/// A membership filter with a batched insert path (same byte-identical
/// contract as BatchItemSummary, against Insert).
template <typename S>
concept BatchInsertableSummary =
    requires(S s, std::span<const uint64_t> keys) {
      { s.InsertBatch(keys) };
    };

/// A summary with a no-argument point estimate (the unified Estimate()
/// surface of the cardinality / counting families). The concurrent
/// wrapper caches this value atomically at each publication so its
/// Estimate() is a single load.
template <typename S>
concept EstimableSummary = requires(const S& s) {
  { s.Estimate() } -> std::convertible_to<double>;
};

/// A summary with the unified no-argument interval estimate
/// (`EstimateWithBounds(confidence)` of the cardinality / counting
/// families). Used by the concurrent wrapper and the type-erased query
/// surface the gemsd server serves from.
///
/// The EstimableSummary conjunct is load-bearing, not redundant: a
/// per-item `EstimateWithBounds(uint64_t item, double confidence = ...)`
/// is also callable with a single double (the confidence converts to an
/// item id), so the call expression alone would classify every frequency
/// sketch as whole-sketch estimable and silently answer whole-sketch
/// queries with the frequency of item 0. Requiring the no-argument
/// `Estimate()` too pins this concept to families that genuinely have a
/// whole-sketch figure.
template <typename S>
concept BoundedPointEstimableSummary =
    EstimableSummary<S> &&
    requires(const S& s, double confidence) {
      { s.EstimateWithBounds(confidence) } -> std::same_as<gems::Estimate>;
    };

/// A summary with a per-item point estimate (the frequency families'
/// `Estimate(item)` surface).
template <typename S>
concept ItemEstimableSummary = requires(const S& s, uint64_t item) {
  { s.Estimate(item) } -> std::convertible_to<double>;
};

/// A summary with a per-item interval estimate
/// (`EstimateWithBounds(item, confidence)`).
template <typename S>
concept ItemBoundedEstimableSummary =
    requires(const S& s, uint64_t item, double confidence) {
      { s.EstimateWithBounds(item, confidence) } -> std::same_as<gems::Estimate>;
    };

/// The contract the engine (and the future gemsd server) expects of a
/// concurrent, queryable-under-ingest summary wrapper: thread-safe item
/// ingest, a way to force the calling thread's residual state visible
/// (FlushLocal), wait-free point estimates, a monotone publication epoch
/// usable as a staleness probe, and a consistent snapshot. Satisfied by
/// ConcurrentSummary<S> whenever S itself is estimable.
template <typename C>
concept ConcurrentEstimableSummary =
    requires(C c, const C& cc, uint64_t item) {
      { c.Update(item) };
      { cc.FlushLocal() };
      { cc.Estimate() } -> std::convertible_to<double>;
      { cc.epoch() } -> std::convertible_to<uint64_t>;
      { cc.Snapshot() };
    };

/// A summary that models time as a first-class dimension: its state is a
/// function of a window or decay clock that can advance without data
/// (rotating/expiring panes, decaying counts). Advancing with a timestamp
/// earlier than the newest one seen must clamp, never abort — servers see
/// unsorted input.
template <typename S>
concept TimedSummary = requires(S s, const S& cs, uint64_t timestamp) {
  { s.Advance(timestamp) };
  { cs.last_timestamp() } -> std::convertible_to<uint64_t>;
};

/// A timed summary over 64-bit items with an explicit per-update timestamp.
template <typename S>
concept TimedItemSummary =
    TimedSummary<S> && requires(S s, uint64_t timestamp, uint64_t item) {
      { s.UpdateAt(timestamp, item) };
    };

/// A timed summary with a batched timestamped ingest path: `timestamps`
/// parallels `items`. The contract mirrors BatchItemSummary's: state must
/// be byte-identical (after Serialize) to calling UpdateAt per item, in
/// order.
template <typename S>
concept BatchTimedItemSummary =
    TimedSummary<S> &&
    requires(S s, std::span<const uint64_t> timestamps,
             std::span<const uint64_t> items) {
      { s.UpdateBatchTimed(timestamps, items) };
    };

/// A summary that serializes to bytes and back. Deserialize takes a
/// borrowed span, so callers holding mmap'd or ring-buffer bytes never
/// copy into a vector first.
template <typename S>
concept SerializableSummary = requires(const S& s, ByteSpan bytes) {
  { s.Serialize() } -> std::same_as<std::vector<uint8_t>>;
  { S::Deserialize(bytes) } -> std::same_as<Result<S>>;
};

/// A summary that can append its wire envelope into a caller-owned buffer
/// (an arena, a checkpoint body) with no intermediate allocation. The
/// contract is strict: the appended bytes must equal Serialize()'s output
/// exactly, so the two forms are interchangeable on the wire.
template <typename S>
concept SinkSerializableSummary = requires(const S& s, ByteSink& sink) {
  { s.SerializeTo(sink) };
};

/// A summary that can absorb a *wrapped* serialized peer without
/// materializing it — the zero-copy half of the distributed-merge model.
/// The contract (pinned by tests/view_test.cc) is strict: after
/// `a.MergeFromView(v)`, `a.Serialize()` must be byte-identical to the
/// deserialize-then-merge path `a.Merge(*v.Materialize())` from the same
/// starting state, and malformed or incompatible views must yield Status
/// errors, never UB.
template <typename S>
concept ViewMergeableSummary = requires(S s, const View<S>& view) {
  { s.MergeFromView(view) } -> std::same_as<Status>;
};

}  // namespace gems

#endif  // GEMS_CORE_SUMMARY_H_
