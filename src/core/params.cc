#include "core/params.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace gems {

int HllPrecisionFor(double relative_error) {
  GEMS_CHECK(relative_error > 0.0 && relative_error < 1.0);
  // 1.04/sqrt(2^p) <= e  =>  p >= 2 log2(1.04/e).
  const double p = 2.0 * std::log2(1.04 / relative_error);
  return std::clamp(static_cast<int>(std::ceil(p)), 4, 18);
}

double HllErrorAt(int precision) {
  GEMS_CHECK(precision >= 4 && precision <= 18);
  return 1.04 / std::sqrt(static_cast<double>(uint64_t{1} << precision));
}

uint32_t KmvKFor(double relative_error) {
  GEMS_CHECK(relative_error > 0.0 && relative_error < 1.0);
  const double k = 1.0 / (relative_error * relative_error) + 2.0;
  return std::max<uint32_t>(8, static_cast<uint32_t>(std::ceil(k)));
}

uint32_t CountMinWidthFor(double epsilon) {
  GEMS_CHECK(epsilon > 0.0 && epsilon < 1.0);
  return static_cast<uint32_t>(std::ceil(std::exp(1.0) / epsilon));
}

uint32_t CountMinDepthFor(double delta) {
  GEMS_CHECK(delta > 0.0 && delta < 1.0);
  return std::max<uint32_t>(
      1, static_cast<uint32_t>(std::ceil(std::log(1.0 / delta))));
}

uint64_t BloomBitsFor(uint64_t n, double fpr) {
  GEMS_CHECK(n >= 1);
  GEMS_CHECK(fpr > 0.0 && fpr < 1.0);
  const double ln2 = std::log(2.0);
  return static_cast<uint64_t>(
      std::ceil(-static_cast<double>(n) * std::log(fpr) / (ln2 * ln2)));
}

uint32_t KllKFor(double rank_error) {
  GEMS_CHECK(rank_error > 0.0 && rank_error < 0.5);
  return std::max<uint32_t>(
      8, static_cast<uint32_t>(std::ceil(1.7 / rank_error)));
}

size_t SpaceSavingCapacityFor(double phi) {
  GEMS_CHECK(phi > 0.0 && phi < 1.0);
  return static_cast<size_t>(std::ceil(1.0 / phi));
}

size_t HllBytesAt(int precision) {
  GEMS_CHECK(precision >= 4 && precision <= 18);
  return size_t{1} << precision;
}

size_t CountMinBytesAt(uint32_t width, uint32_t depth) {
  return static_cast<size_t>(width) * depth * sizeof(uint64_t);
}

size_t BloomBytesAt(uint64_t bits) { return (bits + 7) / 8; }

}  // namespace gems
