#include "core/registry.h"

namespace gems {

Status AnySketch::Update(uint64_t item) {
  if (!has_value()) {
    return Status::FailedPrecondition("update on an empty AnySketch");
  }
  EnsureUnique();
  return impl_->Update(item);
}

Status AnySketch::UpdateBatch(std::span<const uint64_t> items) {
  if (!has_value()) {
    return Status::FailedPrecondition("update on an empty AnySketch");
  }
  EnsureUnique();
  return impl_->UpdateBatch(items);
}

Status AnySketch::UpdateBatchTimed(std::span<const uint64_t> timestamps,
                                   std::span<const uint64_t> items) {
  if (!has_value()) {
    return Status::FailedPrecondition("update on an empty AnySketch");
  }
  if (timestamps.size() != items.size()) {
    return Status::InvalidArgument(
        "timestamp column must parallel the item column");
  }
  EnsureUnique();
  return impl_->UpdateBatchTimed(timestamps, items);
}

Status AnySketch::Advance(uint64_t now) {
  if (!has_value()) {
    return Status::FailedPrecondition("advance on an empty AnySketch");
  }
  EnsureUnique();
  return impl_->Advance(now);
}

Status AnySketch::Merge(const AnySketch& other) {
  if (!has_value() || !other.has_value()) {
    return Status::InvalidArgument("merge with an empty AnySketch");
  }
  if (type_ != other.type_) {
    return Status::InvalidArgument(
        std::string("cannot merge sketch type ") + other.type_name() +
        " into " + type_name());
  }
  EnsureUnique();
  return impl_->MergeFrom(*other.impl_);
}

Status AnySketch::MergeFromView(const SketchView& view) {
  if (!has_value()) {
    return Status::InvalidArgument("merge into an empty AnySketch");
  }
  if (!view.has_value()) {
    return Status::InvalidArgument("merge from an empty sketch view");
  }
  if (type_ != view.type()) {
    return Status::InvalidArgument(
        std::string("cannot merge sketch type ") + view.type_name() +
        " into " + type_name());
  }
  EnsureUnique();
  return impl_->MergeFromView(view);
}

std::vector<uint8_t> AnySketch::Serialize() const {
  if (!has_value()) return {};
  return impl_->Serialize();
}

void AnySketch::SerializeTo(ByteSink& sink) const {
  if (!has_value()) return;
  impl_->SerializeTo(sink);
}

std::string AnySketch::EstimateSummary() const {
  if (!has_value()) return "(empty)";
  return impl_->EstimateSummary();
}

Result<gems::Estimate> AnySketch::EstimateWithBounds(double confidence) const {
  if (!has_value()) {
    return Status::FailedPrecondition("estimate on an empty AnySketch");
  }
  return impl_->EstimateWithBounds(confidence);
}

Result<gems::Estimate> AnySketch::EstimateItemWithBounds(
    uint64_t item, double confidence) const {
  if (!has_value()) {
    return Status::FailedPrecondition("estimate on an empty AnySketch");
  }
  return impl_->EstimateItemWithBounds(item, confidence);
}

SketchRegistry& SketchRegistry::Global() {
  static SketchRegistry* registry = new SketchRegistry();
  return *registry;
}

Status SketchRegistry::Register(SketchTypeId id, Entry entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = entries_.emplace(id, std::move(entry));
  (void)it;
  if (!inserted) {
    return Status::InvalidArgument(
        std::string("sketch type already registered: ") + SketchTypeName(id));
  }
  return Status::Ok();
}

const SketchRegistry::Entry* SketchRegistry::Find(SketchTypeId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second;
}

const SketchRegistry::Entry* SketchRegistry::FindByName(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [id, entry] : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

Result<AnySketch> SketchRegistry::Deserialize(
    std::span<const uint8_t> bytes) const {
  Result<SketchTypeId> type = PeekSketchType(bytes);
  if (!type.ok()) return type.status();
  const Entry* entry = Find(type.value());
  if (entry == nullptr) {
    return Status::Corruption(
        std::string("no deserializer registered for sketch type ") +
        SketchTypeName(type.value()));
  }
  return entry->deserialize(bytes);
}

Result<AnySketchView> SketchRegistry::Wrap(ByteSpan bytes) const {
  return WrapImpl(SketchView::Wrap(bytes));
}

Result<AnySketchView> SketchRegistry::WrapTrusted(ByteSpan bytes) const {
  return WrapImpl(SketchView::WrapTrusted(bytes));
}

Result<AnySketchView> SketchRegistry::WrapImpl(
    Result<SketchView> view) const {
  if (!view.ok()) return view.status();
  const Entry* entry = Find(view.value().type());
  if (entry == nullptr) {
    return Status::Corruption(
        std::string("no deserializer registered for sketch type ") +
        SketchTypeName(view.value().type()));
  }
  AnySketchView any;
  any.view_ = view.value();
  any.entry_ = entry;
  return any;
}

std::vector<SketchTypeId> SketchRegistry::RegisteredTypes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SketchTypeId> out;
  out.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) out.push_back(id);
  return out;
}

}  // namespace gems
