#ifndef GEMS_CORE_PARAMS_H_
#define GEMS_CORE_PARAMS_H_

#include <cstdint>
#include <cstddef>

/// \file
/// Parameter advisors: translate user-level accuracy targets into sketch
/// parameters. The paper's "pathways to impact" section argues adoption
/// hinges on making sketches easy to configure — practitioners think in
/// "1% error", not in registers, widths, or compactor sizes. Each helper
/// documents the law it inverts.

namespace gems {

/// HLL precision p so that 1.04/sqrt(2^p) <= target relative error.
int HllPrecisionFor(double relative_error);

/// Relative standard error of an HLL at precision p (1.04/sqrt(2^p)).
double HllErrorAt(int precision);

/// KMV k so that 1/sqrt(k-2) <= target relative error.
uint32_t KmvKFor(double relative_error);

/// Count-Min width for overestimate <= epsilon * N (w = ceil(e/eps)).
uint32_t CountMinWidthFor(double epsilon);

/// Count-Min depth for failure probability <= delta (d = ceil(ln 1/delta)).
uint32_t CountMinDepthFor(double delta);

/// Bloom filter bits for `n` items at `fpr` (m = -n ln p / ln^2 2).
uint64_t BloomBitsFor(uint64_t n, double fpr);

/// KLL k for target rank error (error ~ 1.7/k single-run heuristic,
/// calibrated against this library's implementation at n = 1e6).
uint32_t KllKFor(double rank_error);

/// SpaceSaving capacity to catch every item above phi*N (k = ceil(1/phi)).
size_t SpaceSavingCapacityFor(double phi);

/// Memory (bytes) each choice costs, for budget-driven decisions.
size_t HllBytesAt(int precision);
size_t CountMinBytesAt(uint32_t width, uint32_t depth);
size_t BloomBytesAt(uint64_t bits);

}  // namespace gems

#endif  // GEMS_CORE_PARAMS_H_
