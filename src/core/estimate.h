#ifndef GEMS_CORE_ESTIMATE_H_
#define GEMS_CORE_ESTIMATE_H_

#include <string>

/// \file
/// The value type returned by sketch queries. The paper singles out the
/// difficulty of "communicating a randomized approximation guarantee to
/// non-technical consumers" as an adoption barrier and recommends
/// confidence intervals as the remedy — so every estimator in this library
/// can return its value together with an interval.

namespace gems {

/// A point estimate with a confidence interval.
struct Estimate {
  /// The point estimate.
  double value = 0.0;
  /// Lower bound of the confidence interval.
  double lower = 0.0;
  /// Upper bound of the confidence interval.
  double upper = 0.0;
  /// Confidence level of [lower, upper], e.g. 0.95.
  double confidence = 0.0;

  /// True if `truth` lies inside [lower, upper].
  bool Covers(double truth) const { return truth >= lower && truth <= upper; }

  /// Renders "value [lower, upper] @ confidence" for reports.
  std::string ToString() const;
};

/// Builds an Estimate from a value and a symmetric standard error, using the
/// normal approximation at the given confidence level.
Estimate EstimateFromStdError(double value, double std_error,
                              double confidence);

}  // namespace gems

#endif  // GEMS_CORE_ESTIMATE_H_
