#ifndef GEMS_CORE_REGISTRY_H_
#define GEMS_CORE_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/io.h"
#include "core/summary.h"
#include "core/view.h"
#include "core/wire.h"

/// \file
/// Type-erased sketch handling: the piece that lets the engine, the
/// distributed aggregation paths, and the CLI store, ship, and merge
/// heterogeneous sketches without knowing concrete types — the property
/// that made mergeable summaries infrastructure.
///
/// AnySketch is a value-semantic type-erased handle over any registered
/// sketch. SketchRegistry maps the wire format's SketchTypeId to thunks
/// that deserialize envelope bytes into an AnySketch, so a consumer
/// holding opaque bytes (a file, a network message, a checkpoint entry)
/// can reconstruct and merge the sketch by reading the type tag alone.

namespace gems {

/// A summary whose Update takes no argument we can synthesize (e.g. graph
/// sketches updated edge-by-edge) still round-trips and merges through
/// AnySketch; only Update(u64) reports Unimplemented for it.
template <typename S>
concept InsertableSummary = requires(S s, uint64_t item) {
  { s.Insert(item) };
};

/// Pure event counters (Morris) have no notion of an item at all; a
/// type-erased Update(item) just counts the event.
template <typename S>
concept IncrementableSummary = requires(S s) {
  { s.Increment() };
};

/// Construction parameters for the timed sketch family, carried through
/// the registry's by-name factories and the gemsd CREATE path. Zero-valued
/// fields mean "library default"; which fields a type consumes is up to its
/// make_timed thunk (window types read pane_width/num_panes, decayed types
/// read half_life).
struct TimedSketchParams {
  uint64_t pane_width = 0;
  uint32_t num_panes = 0;
  double half_life = 0.0;
};

/// Type-erased, copyable handle to a registered sketch instance.
class AnySketch {
 public:
  /// An empty handle; every operation fails until assigned from
  /// SketchRegistry::Deserialize or AnySketch::Make.
  AnySketch() = default;

  /// Wraps a concrete sketch. `estimate` renders a one-line human-readable
  /// summary of the sketch's current estimate (used by the CLI).
  template <typename S>
    requires SerializableSummary<S>
  static AnySketch Make(SketchTypeId type,
                        std::function<std::string(const S&)> estimate,
                        S sketch) {
    AnySketch any;
    any.type_ = type;
    any.impl_ = std::make_shared<Model<S>>(std::move(sketch),
                                           std::move(estimate));
    return any;
  }

  bool has_value() const { return impl_ != nullptr; }
  SketchTypeId type() const { return type_; }
  const char* type_name() const {
    return has_value() ? SketchTypeName(type_) : "empty";
  }

  /// Feeds one 64-bit item. Item sketches take it directly, weighted
  /// sketches with weight 1, value (quantile) sketches as a double,
  /// membership filters via Insert, and plain counters via Increment.
  /// Sketches with none of those update shapes (e.g. AGM edge sketches)
  /// return kUnimplemented.
  Status Update(uint64_t item);

  /// Feeds a batch of 64-bit items. Dispatches to the sketch's native
  /// batch entry point (UpdateBatch / InsertBatch) when it has one —
  /// value sketches get the items converted to doubles — and falls back
  /// to the per-item Update loop otherwise. Same status semantics as
  /// Update().
  Status UpdateBatch(std::span<const uint64_t> items);

  /// Feeds a batch of timestamped items (parallel spans, sizes must
  /// match). Timed sketches segment by pane / decay run; untimed sketches
  /// ignore the timestamps and take the items through UpdateBatch — so a
  /// mixed keyspace can be fed from one timestamped ingest path.
  Status UpdateBatchTimed(std::span<const uint64_t> timestamps,
                          std::span<const uint64_t> items);

  /// Advances a timed sketch's clock without adding data (rotating panes,
  /// decaying counts). kUnimplemented for sketches without a time
  /// dimension.
  Status Advance(uint64_t now);

  /// Merges another handle of the same sketch type into this one.
  /// Mismatched or empty handles are kInvalidArgument; sketch types
  /// without a Merge (e.g. Greenwald-Khanna) are kUnimplemented.
  Status Merge(const AnySketch& other);

  /// Merges a wrapped serialized peer without materializing it when the
  /// concrete type supports MergeFromView, falling back to
  /// deserialize-then-merge otherwise. Type-tag mismatches are
  /// kInvalidArgument, same as Merge.
  Status MergeFromView(const SketchView& view);

  /// Serializes to the standard wire envelope (empty vector if empty).
  std::vector<uint8_t> Serialize() const;

  /// Appends the wire envelope into a caller-owned buffer. Byte-identical
  /// to Serialize(); appends nothing for an empty handle. Uses the concrete
  /// type's allocation-free SerializeTo when it has one.
  void SerializeTo(ByteSink& sink) const;

  /// One-line human-readable summary of the sketch's current estimate.
  std::string EstimateSummary() const;

  /// Typed whole-sketch estimate with a confidence interval — the machine
  /// answer the gemsd QUERY path serves. Families with the unified
  /// EstimateWithBounds(confidence) surface return the full interval;
  /// families with only a point Estimate() return a degenerate interval
  /// (lower == upper == value, confidence 0); families with no global
  /// estimate (frequency sketches, filters) are kUnimplemented.
  Result<gems::Estimate> EstimateWithBounds(double confidence = 0.95) const;

  /// Typed per-item estimate for the frequency families
  /// (`EstimateWithBounds(item, confidence)` or `Estimate(item)`), with
  /// the same degenerate-interval fallback. kUnimplemented for families
  /// without a per-item query.
  Result<gems::Estimate> EstimateItemWithBounds(uint64_t item,
                                                double confidence = 0.95) const;

  /// Borrowed pointer to the concrete sketch, or nullptr if this handle is
  /// empty or holds a different type. The handle keeps ownership.
  template <typename S>
  const S* As() const {
    if (!has_value()) return nullptr;
    return static_cast<const S*>(impl_->Raw(TypeKey<S>()));
  }

 private:
  struct Concept {
    virtual ~Concept() = default;
    virtual Status Update(uint64_t item) = 0;
    virtual Status UpdateBatch(std::span<const uint64_t> items) = 0;
    virtual Status UpdateBatchTimed(std::span<const uint64_t> timestamps,
                                    std::span<const uint64_t> items) = 0;
    virtual Status Advance(uint64_t now) = 0;
    virtual Status MergeFrom(const Concept& other) = 0;
    virtual Status MergeFromView(const SketchView& view) = 0;
    virtual std::vector<uint8_t> Serialize() const = 0;
    virtual void SerializeTo(ByteSink& sink) const = 0;
    virtual std::string EstimateSummary() const = 0;
    virtual Result<gems::Estimate> EstimateWithBounds(
        double confidence) const = 0;
    virtual Result<gems::Estimate> EstimateItemWithBounds(
        uint64_t item, double confidence) const = 0;
    virtual std::shared_ptr<Concept> Clone() const = 0;
    virtual const void* Raw(const void* type_key) const = 0;
  };

  /// One static byte per instantiated S; its address is a cheap
  /// RTTI-independent type key for As<S>().
  template <typename S>
  static const void* TypeKey() {
    static const char key = 0;
    return &key;
  }

  template <typename S>
  struct Model final : Concept {
    Model(S sketch, std::function<std::string(const S&)> estimate)
        : sketch(std::move(sketch)), estimate(std::move(estimate)) {}

    Status Update(uint64_t item) override {
      if constexpr (ItemSummary<S>) {
        sketch.Update(item);
      } else if constexpr (WeightedItemSummary<S>) {
        sketch.Update(item, 1);
      } else if constexpr (ValueSummary<S>) {
        sketch.Update(static_cast<double>(item));
      } else if constexpr (InsertableSummary<S>) {
        sketch.Insert(item);
      } else if constexpr (IncrementableSummary<S>) {
        sketch.Increment();
      } else {
        return Status::Unimplemented(
            "sketch type does not accept single-item updates");
      }
      return Status::Ok();
    }

    Status UpdateBatch(std::span<const uint64_t> items) override {
      if constexpr (BatchItemSummary<S>) {
        sketch.UpdateBatch(items);
      } else if constexpr (BatchInsertableSummary<S>) {
        sketch.InsertBatch(items);
      } else if constexpr (BatchValueSummary<S>) {
        std::vector<double> values;
        values.reserve(items.size());
        for (uint64_t item : items) {
          values.push_back(static_cast<double>(item));
        }
        sketch.UpdateBatch(values);
      } else {
        // No native batch path: fall back to the per-item loop (this also
        // surfaces kUnimplemented for sketches with no update shape).
        for (uint64_t item : items) {
          if (Status s = Update(item); !s.ok()) return s;
        }
      }
      return Status::Ok();
    }

    Status UpdateBatchTimed(std::span<const uint64_t> timestamps,
                            std::span<const uint64_t> items) override {
      if constexpr (BatchTimedItemSummary<S>) {
        sketch.UpdateBatchTimed(timestamps, items);
        return Status::Ok();
      } else if constexpr (TimedItemSummary<S>) {
        for (size_t i = 0; i < items.size(); ++i) {
          sketch.UpdateAt(timestamps[i], items[i]);
        }
        return Status::Ok();
      } else {
        // Untimed sketch: the timestamps carry no meaning for it; take the
        // items through the ordinary batch path.
        return UpdateBatch(items);
      }
    }

    Status Advance(uint64_t now) override {
      if constexpr (TimedSummary<S>) {
        sketch.Advance(now);
        return Status::Ok();
      } else {
        return Status::Unimplemented("sketch type has no time dimension");
      }
    }

    Status MergeFrom(const Concept& other) override {
      if constexpr (MergeableSummary<S>) {
        // The caller (AnySketch::Merge) has already checked the type tags,
        // so the downcast is safe.
        return sketch.Merge(static_cast<const Model<S>&>(other).sketch);
      } else {
        return Status::Unimplemented("sketch type has no merge operation");
      }
    }

    Status MergeFromView(const SketchView& view) override {
      if constexpr (ViewMergeableSummary<S>) {
        // Zero-copy path: downcast the validated view and merge straight
        // out of the wrapped buffer.
        Result<View<S>> typed = View<S>::FromSketchView(view);
        if (!typed.ok()) return typed.status();
        return sketch.MergeFromView(typed.value());
      } else if constexpr (MergeableSummary<S>) {
        // Fallback for types without a view merge: materialize once, then
        // the ordinary merge. Still saves the caller the envelope copy.
        Result<S> other = S::Deserialize(view.envelope());
        if (!other.ok()) return other.status();
        return sketch.Merge(other.value());
      } else {
        return Status::Unimplemented("sketch type has no merge operation");
      }
    }

    std::vector<uint8_t> Serialize() const override {
      return sketch.Serialize();
    }

    void SerializeTo(ByteSink& sink) const override {
      if constexpr (SinkSerializableSummary<S>) {
        sketch.SerializeTo(sink);
      } else {
        const std::vector<uint8_t> bytes = sketch.Serialize();
        sink.PutRaw(bytes.data(), bytes.size());
      }
    }

    std::string EstimateSummary() const override { return estimate(sketch); }

    Result<gems::Estimate> EstimateWithBounds(
        double confidence) const override {
      if constexpr (BoundedPointEstimableSummary<S>) {
        return sketch.EstimateWithBounds(confidence);
      } else if constexpr (EstimableSummary<S>) {
        const double value = static_cast<double>(sketch.Estimate());
        return gems::Estimate{value, value, value, 0.0};
      } else {
        return Status::Unimplemented(
            "sketch type has no whole-sketch estimate");
      }
    }

    Result<gems::Estimate> EstimateItemWithBounds(
        uint64_t item, double confidence) const override {
      if constexpr (ItemBoundedEstimableSummary<S>) {
        return sketch.EstimateWithBounds(item, confidence);
      } else if constexpr (ItemEstimableSummary<S>) {
        const double value = static_cast<double>(sketch.Estimate(item));
        return gems::Estimate{value, value, value, 0.0};
      } else {
        return Status::Unimplemented("sketch type has no per-item estimate");
      }
    }

    std::shared_ptr<Concept> Clone() const override {
      return std::make_shared<Model<S>>(sketch, estimate);
    }

    const void* Raw(const void* type_key) const override {
      return type_key == TypeKey<S>() ? &sketch : nullptr;
    }

    S sketch;
    std::function<std::string(const S&)> estimate;
  };

  /// Copy-on-write: mutating operations clone when the state is shared.
  void EnsureUnique() {
    if (impl_ != nullptr && impl_.use_count() > 1) impl_ = impl_->Clone();
  }

  SketchTypeId type_{};
  std::shared_ptr<Concept> impl_;
};

class AnySketchView;

/// Maps wire-format type ids to deserialization thunks. Thread-safe.
class SketchRegistry {
 public:
  struct Entry {
    /// Stable lowercase name, matching SketchTypeName.
    std::string name;
    /// Parses a full envelope (header included) of this type. Takes a
    /// borrowed span so registry consumers never copy bytes to dispatch.
    std::function<Result<AnySketch>(ByteSpan)> deserialize;
    /// Constructs an empty sketch with library-default parameters, for
    /// consumers that build sketches by name (CLI, tests). May be null.
    std::function<AnySketch()> make_default;
    /// Constructs an empty sketch from window/decay parameters (zero-valued
    /// fields fall back to library defaults; invalid combinations are
    /// kInvalidArgument). Null for sketches without a time dimension.
    std::function<Result<AnySketch>(const TimedSketchParams&)> make_timed;
  };

  /// The process-wide registry. Built-in sketches are added by
  /// RegisterBuiltinSketches(), not automatically.
  static SketchRegistry& Global();

  /// Registers a type; kInvalidArgument if the id is already taken.
  Status Register(SketchTypeId id, Entry entry);

  /// Looks up an entry; nullptr if the id was never registered.
  const Entry* Find(SketchTypeId id) const;

  /// Validates the envelope, reads its type tag, and dispatches to the
  /// registered deserializer. An id that passes envelope validation but
  /// was never registered is kCorruption (bytes we cannot interpret).
  Result<AnySketch> Deserialize(std::span<const uint8_t> bytes) const;

  /// Validates the envelope and wraps it as a type-erased view WITHOUT
  /// materializing the sketch — the dispatch-by-tag analogue of
  /// SketchView::Wrap. Same borrowing rules: the returned view is valid
  /// only while `bytes` outlives it. An unregistered (but valid) type id
  /// is kCorruption, matching Deserialize.
  Result<AnySketchView> Wrap(ByteSpan bytes) const;

  /// Checksum-skipping wrap for bytes this process (or a trusted peer on
  /// the same failure domain) produced — the dispatch-by-tag analogue of
  /// SketchView::WrapTrusted. All structural checks still run. The gemsd
  /// MERGE fast path uses this for envelopes from trusted peers; bytes
  /// from disk or an untrusted network hop should go through Wrap.
  Result<AnySketchView> WrapTrusted(ByteSpan bytes) const;

  /// Finds a registered type by its stable name; nullptr if absent.
  const Entry* FindByName(const std::string& name) const;

  /// All registered ids, ascending.
  std::vector<SketchTypeId> RegisteredTypes() const;

 private:
  Result<AnySketchView> WrapImpl(Result<SketchView> view) const;

  mutable std::mutex mutex_;
  std::map<SketchTypeId, Entry> entries_;
};

/// Type-erased analogue of View<S>: a validated, non-owning wrap of one
/// serialized envelope plus the registry entry its type tag resolved to.
/// Metadata (type, version, payload size) reads straight off the wrapped
/// buffer; Materialize() is the one operation that allocates. Borrows the
/// wrapped bytes — same lifetime rules as SketchView.
class AnySketchView {
 public:
  AnySketchView() = default;

  bool has_value() const { return entry_ != nullptr; }
  SketchTypeId type() const { return view_.type(); }
  const char* type_name() const { return view_.type_name(); }
  uint8_t version() const { return view_.version(); }
  size_t payload_size() const { return view_.payload_size(); }
  ByteSpan envelope() const { return view_.envelope(); }

  /// The untyped view, e.g. for AnySketch::MergeFromView.
  const SketchView& sketch_view() const { return view_; }

  /// Builds a heap sketch from the wrapped bytes via the registered
  /// deserializer — the deliberate escape hatch out of the zero-copy path.
  Result<AnySketch> Materialize() const {
    if (!has_value()) {
      return Status::FailedPrecondition("materialize on an empty view");
    }
    return entry_->deserialize(view_.envelope());
  }

  /// One-line human-readable estimate, rendered by materializing a
  /// temporary (views are read-only wraps; estimates need the sketch).
  Result<std::string> EstimateSummary() const {
    Result<AnySketch> sketch = Materialize();
    if (!sketch.ok()) return sketch.status();
    return sketch.value().EstimateSummary();
  }

 private:
  friend class SketchRegistry;
  SketchView view_;
  const SketchRegistry::Entry* entry_ = nullptr;
};

/// Registers a concrete sketch type: its envelope deserializer, a
/// default-parameter factory, and an estimate renderer.
template <typename S>
Status RegisterSketchType(
    SketchRegistry& registry, SketchTypeId id,
    std::function<std::string(const S&)> estimate,
    std::function<S()> make_default,
    std::function<Result<S>(const TimedSketchParams&)> make_timed = nullptr) {
  SketchRegistry::Entry entry;
  entry.name = SketchTypeName(id);
  entry.deserialize =
      [id, estimate](std::span<const uint8_t> bytes) -> Result<AnySketch> {
    Result<S> parsed = S::Deserialize(bytes);
    if (!parsed.ok()) return parsed.status();
    return AnySketch::Make<S>(id, estimate, std::move(parsed).value());
  };
  if (make_default) {
    entry.make_default = [id, estimate, make_default]() {
      return AnySketch::Make<S>(id, estimate, make_default());
    };
  }
  if (make_timed) {
    entry.make_timed =
        [id, estimate, make_timed](
            const TimedSketchParams& params) -> Result<AnySketch> {
      Result<S> made = make_timed(params);
      if (!made.ok()) return made.status();
      return AnySketch::Make<S>(id, estimate, std::move(made).value());
    };
  }
  return registry.Register(id, std::move(entry));
}

/// Registers every built-in serializable sketch with the global registry.
/// Idempotent and thread-safe; call before using SketchRegistry::Global()
/// to deserialize unknown bytes. (Defined in builtin_registry.cc, which
/// lives in the gems_registry target so the core library itself does not
/// depend on the sketch families.)
void RegisterBuiltinSketches();

}  // namespace gems

#endif  // GEMS_CORE_REGISTRY_H_
