#ifndef GEMS_CORE_VIEW_H_
#define GEMS_CORE_VIEW_H_

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/status.h"
#include "core/io.h"
#include "core/wire.h"

/// \file
/// Zero-copy read-only wraps of serialized sketches.
///
/// The production lesson behind Apache DataSketches' adoption — and the
/// read-side primitive "Fast Concurrent Data Sketches" motivates — is that
/// serialized sketches should be *wrapped*, not loaded: a query or merge
/// engine holding bytes (a file page, a network buffer, an arena slot)
/// validates them once and then reads straight out of the buffer, paying no
/// allocation and no copy per envelope.
///
/// SketchView is that wrap for one wire envelope: validation (magic, type,
/// version, length, checksum) happens exactly once in Wrap(); everything
/// after is pointer arithmetic into the caller's buffer. View<S> adds the
/// static type: the handle a concrete sketch's MergeFromView consumes, with
/// Materialize() as the escape hatch back to a heap sketch.
///
/// Lifetime rule: views BORROW. A view is valid only while the wrapped
/// bytes outlive it and stay unmodified; wrap-then-mutate-buffer is the
/// classic bug. Materialize (or merge into an owning accumulator) before
/// the buffer goes away.

namespace gems {

/// A validated, non-owning wrap of one serialized sketch envelope.
/// Cheap to copy (two pointers and the parsed header fields).
class SketchView {
 public:
  SketchView() = default;

  /// Validates the envelope (same checks as ParseEnvelope, checksum
  /// included) and wraps it. The bytes are borrowed, not copied.
  static Result<SketchView> Wrap(ByteSpan envelope) {
    return WrapImpl(envelope, EnvelopeVerify::kFull);
  }

  /// Wrap for bytes this process produced itself (combiner fan-in, shard
  /// merge, arena slices from FinishInto): all structural checks — magic,
  /// type, version, flags, and the length bounds that make payload access
  /// safe — still run, but the XXH64 payload checksum is skipped. On flat
  /// sketches the checksum pass costs more than the merge itself, so
  /// trusted fan-in paths use this. Never use it on bytes from disk or
  /// the network; a flipped payload bit would merge silently.
  static Result<SketchView> WrapTrusted(ByteSpan envelope) {
    return WrapImpl(envelope, EnvelopeVerify::kStructural);
  }

  /// True once Wrap succeeded; a default-constructed view answers nothing.
  bool has_value() const { return meta_.payload != nullptr; }

  SketchTypeId type() const { return meta_.type; }
  const char* type_name() const { return SketchTypeName(meta_.type); }
  uint8_t version() const { return meta_.version; }
  uint8_t flags() const { return meta_.flags; }

  /// The full envelope (header + payload) this view wraps.
  ByteSpan envelope() const { return envelope_; }

  /// The sketch-specific payload inside the envelope.
  ByteSpan payload() const {
    return ByteSpan(meta_.payload, meta_.payload_size);
  }
  size_t payload_size() const { return meta_.payload_size; }

  /// A cursor positioned at the start of the payload.
  ByteReader PayloadReader() const {
    return ByteReader(meta_.payload, meta_.payload_size);
  }

 private:
  static Result<SketchView> WrapImpl(ByteSpan envelope,
                                     EnvelopeVerify verify) {
    Result<EnvelopeView> parsed = ParseEnvelope(envelope, verify);
    if (!parsed.ok()) return parsed.status();
    SketchView view;
    view.envelope_ = envelope;
    view.meta_ = parsed.value();
    return view;
  }

  ByteSpan envelope_{};
  EnvelopeView meta_{};
};

/// A summary whose wire type id is known statically (declares
/// `static constexpr SketchTypeId kTypeId`), so serialized bytes can be
/// wrapped with compile-time type checking.
template <typename S>
concept WireTypedSummary = requires {
  { S::kTypeId } -> std::convertible_to<SketchTypeId>;
};

/// A statically typed wrap of a serialized S. Obtained by validating raw
/// bytes (Wrap) or by downcasting an already-validated SketchView
/// (FromSketchView — revalidates only the type tag). Same borrowing
/// lifetime rules as SketchView.
template <typename S>
class View {
 public:
  View() = default;

  static Result<View> Wrap(ByteSpan envelope) {
    Result<SketchView> view = SketchView::Wrap(envelope);
    if (!view.ok()) return view.status();
    return FromSketchView(view.value());
  }

  /// Checksum-skipping wrap for same-process bytes; see
  /// SketchView::WrapTrusted for the contract.
  static Result<View> WrapTrusted(ByteSpan envelope) {
    Result<SketchView> view = SketchView::WrapTrusted(envelope);
    if (!view.ok()) return view.status();
    return FromSketchView(view.value());
  }

  /// Typed downcast of a validated view; kCorruption on a type mismatch
  /// (the cross-type confusion case).
  static Result<View> FromSketchView(const SketchView& view) {
    if (view.type() != S::kTypeId) {
      return Status::Corruption(
          std::string("sketch view: type confusion: expected ") +
          SketchTypeName(S::kTypeId) + ", found " + view.type_name());
    }
    View typed;
    typed.view_ = view;
    return typed;
  }

  bool has_value() const { return view_.has_value(); }
  const SketchView& sketch_view() const { return view_; }
  ByteSpan envelope() const { return view_.envelope(); }
  ByteSpan payload() const { return view_.payload(); }
  size_t payload_size() const { return view_.payload_size(); }
  ByteReader PayloadReader() const { return view_.PayloadReader(); }

  /// Builds a heap sketch from the wrapped bytes — the one place a view
  /// deliberately materializes. Use when the buffer's lifetime ends or
  /// when mutation is needed.
  Result<S> Materialize() const { return S::Deserialize(view_.envelope()); }

 private:
  SketchView view_;
};

}  // namespace gems

#endif  // GEMS_CORE_VIEW_H_
