#include <cstdio>
#include <mutex>
#include <string>

#include "cardinality/flajolet_martin.h"
#include "cardinality/hllpp.h"
#include "cardinality/hyperloglog.h"
#include "cardinality/kmv.h"
#include "cardinality/linear_counting.h"
#include "cardinality/loglog.h"
#include "cardinality/morris.h"
#include "common/check.h"
#include "core/registry.h"
#include "frequency/count_min.h"
#include "frequency/count_sketch.h"
#include "frequency/misra_gries.h"
#include "frequency/space_saving.h"
#include "graph/agm.h"
#include "membership/blocked_bloom.h"
#include "membership/bloom.h"
#include "membership/counting_bloom.h"
#include "moments/ams.h"
#include "quantiles/gk.h"
#include "quantiles/kll.h"
#include "quantiles/qdigest.h"
#include "quantiles/tdigest.h"
#include "sampling/l0_sampler.h"
#include "sampling/reservoir.h"
#include "similarity/minhash.h"

/// \file
/// Registers every built-in serializable sketch with the global
/// SketchRegistry. Kept out of registry.cc so the core library does not
/// link against the sketch families; only consumers that need
/// type-agnostic deserialization (CLI, engine checkpoints, tests) pull
/// this translation unit in via the gems_registry target.

namespace gems {
namespace {

std::string Fmt(const char* format, double value) {
  char buffer[96];
  std::snprintf(buffer, sizeof(buffer), format, value);
  return buffer;
}

void RegisterAll(SketchRegistry& r) {
  // Every Register call below introduces a fresh id, so failures would be
  // programmer error (duplicate id), not runtime conditions.
  auto must = [](Status s) { GEMS_CHECK(s.ok()); };

  must(RegisterSketchType<MorrisCounter>(
      r, SketchTypeId::kMorrisCounter,
      [](const MorrisCounter& s) { return Fmt("count ~ %.0f", s.Estimate()); },
      [] { return MorrisCounter(); }));
  must(RegisterSketchType<LinearCounting>(
      r, SketchTypeId::kLinearCounting,
      [](const LinearCounting& s) { return Fmt("distinct ~ %.0f", s.Estimate()); },
      [] { return LinearCounting(1 << 16); }));
  must(RegisterSketchType<FlajoletMartin>(
      r, SketchTypeId::kFlajoletMartin,
      [](const FlajoletMartin& s) { return Fmt("distinct ~ %.0f", s.Estimate()); },
      [] { return FlajoletMartin(64); }));
  must(RegisterSketchType<LogLog>(
      r, SketchTypeId::kLogLog,
      [](const LogLog& s) { return Fmt("distinct ~ %.0f", s.Estimate()); },
      [] { return LogLog(12); }));
  must(RegisterSketchType<HyperLogLog>(
      r, SketchTypeId::kHyperLogLog,
      [](const HyperLogLog& s) { return Fmt("distinct ~ %.0f", s.Estimate()); },
      [] { return HyperLogLog(12); }));
  must(RegisterSketchType<HllPlusPlus>(
      r, SketchTypeId::kHllPlusPlus,
      [](const HllPlusPlus& s) { return Fmt("distinct ~ %.0f", s.Estimate()); },
      [] { return HllPlusPlus(14); }));
  must(RegisterSketchType<KmvSketch>(
      r, SketchTypeId::kKmv,
      [](const KmvSketch& s) { return Fmt("distinct ~ %.0f", s.Estimate()); },
      [] { return KmvSketch(1024); }));

  must(RegisterSketchType<BloomFilter>(
      r, SketchTypeId::kBloomFilter,
      [](const BloomFilter& s) {
        return Fmt("membership filter, fpr ~ %.4g", s.EstimatedFpr());
      },
      [] { return BloomFilter::ForCapacity(1 << 20, 0.01); }));
  must(RegisterSketchType<CountingBloomFilter>(
      r, SketchTypeId::kCountingBloomFilter,
      [](const CountingBloomFilter& s) {
        return Fmt("counting filter, %.0f counters",
                   static_cast<double>(s.num_counters()));
      },
      [] { return CountingBloomFilter(1 << 20, 4); }));
  must(RegisterSketchType<BlockedBloomFilter>(
      r, SketchTypeId::kBlockedBloomFilter,
      [](const BlockedBloomFilter& s) {
        return Fmt("blocked filter, %.0f bits",
                   static_cast<double>(s.num_bits()));
      },
      [] { return BlockedBloomFilter(1 << 23, 4); }));

  must(RegisterSketchType<CountMinSketch>(
      r, SketchTypeId::kCountMin,
      [](const CountMinSketch& s) {
        return Fmt("frequency table, total weight %.0f",
                   static_cast<double>(s.TotalWeight()));
      },
      [] { return CountMinSketch::ForGuarantee(0.001, 0.01); }));
  must(RegisterSketchType<CountSketch>(
      r, SketchTypeId::kCountSketch,
      [](const CountSketch& s) {
        return Fmt("frequency table, %.0f counters",
                   static_cast<double>(s.width()) * s.depth());
      },
      [] { return CountSketch(2048, 5); }));
  must(RegisterSketchType<MisraGries>(
      r, SketchTypeId::kMisraGries,
      [](const MisraGries& s) {
        return Fmt("heavy hitters, total weight %.0f",
                   static_cast<double>(s.TotalWeight()));
      },
      [] { return MisraGries(256); }));
  must(RegisterSketchType<SpaceSaving>(
      r, SketchTypeId::kSpaceSaving,
      [](const SpaceSaving& s) {
        std::string out = Fmt("top-k, total weight %.0f",
                              static_cast<double>(s.TotalWeight()));
        const auto top = s.TopK(1);
        if (!top.empty()) {
          out += Fmt("; heaviest count %.0f",
                     static_cast<double>(top.front().count));
        }
        return out;
      },
      [] { return SpaceSaving(1024); }));

  must(RegisterSketchType<GreenwaldKhanna>(
      r, SketchTypeId::kGreenwaldKhanna,
      [](const GreenwaldKhanna& s) {
        if (s.Count() == 0) return std::string("quantiles, empty");
        return Fmt("quantiles, median ~ %.6g", s.Quantile(0.5)) +
               Fmt(" over %.0f values", static_cast<double>(s.Count()));
      },
      [] { return GreenwaldKhanna(0.01); }));
  must(RegisterSketchType<KllSketch>(
      r, SketchTypeId::kKll,
      [](const KllSketch& s) {
        if (s.Count() == 0) return std::string("quantiles, empty");
        return Fmt("quantiles, median ~ %.6g", s.Quantile(0.5)) +
               Fmt(" over %.0f values", static_cast<double>(s.Count()));
      },
      [] { return KllSketch(); }));
  must(RegisterSketchType<QDigest>(
      r, SketchTypeId::kQDigest,
      [](const QDigest& s) {
        if (s.Count() == 0) return std::string("quantiles, empty");
        return Fmt("quantiles, median ~ %.6g",
                   static_cast<double>(s.Quantile(0.5))) +
               Fmt(" over %.0f values", static_cast<double>(s.Count()));
      },
      [] { return QDigest(32, 64); }));
  must(RegisterSketchType<TDigest>(
      r, SketchTypeId::kTDigest,
      [](const TDigest& s) {
        if (s.Count() == 0) return std::string("quantiles, empty");
        return Fmt("quantiles, median ~ %.6g", s.Quantile(0.5)) +
               Fmt(" over %.0f values", static_cast<double>(s.Count()));
      },
      [] { return TDigest(); }));

  must(RegisterSketchType<ReservoirSampler>(
      r, SketchTypeId::kReservoir,
      [](const ReservoirSampler& s) {
        return Fmt("uniform sample of %.0f items",
                   static_cast<double>(s.Sample().size()));
      },
      [] { return ReservoirSampler(256, 42); }));
  must(RegisterSketchType<L0Sampler>(
      r, SketchTypeId::kL0Sampler,
      [](const L0Sampler&) { return std::string("l0 support sampler"); },
      [] { return L0Sampler(42); }));

  must(RegisterSketchType<AmsSketch>(
      r, SketchTypeId::kAmsSketch,
      [](const AmsSketch& s) { return Fmt("F2 ~ %.6g", s.EstimateF2()); },
      [] { return AmsSketch(64, 8); }));

  must(RegisterSketchType<MinHashSketch>(
      r, SketchTypeId::kMinHash,
      [](const MinHashSketch& s) {
        return Fmt("minhash signature, k = %.0f",
                   static_cast<double>(s.k()));
      },
      [] { return MinHashSketch(128); }));

  must(RegisterSketchType<AgmSketch>(
      r, SketchTypeId::kAgmSketch,
      [](const AgmSketch& s) {
        return Fmt("graph sketch over %.0f vertices",
                   static_cast<double>(s.num_vertices()));
      },
      std::function<AgmSketch()>()));  // No sensible default vertex count.
}

}  // namespace

void RegisterBuiltinSketches() {
  static std::once_flag once;
  std::call_once(once, [] { RegisterAll(SketchRegistry::Global()); });
}

}  // namespace gems
