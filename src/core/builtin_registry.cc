#include <cmath>
#include <cstdio>
#include <mutex>
#include <string>

#include "cardinality/flajolet_martin.h"
#include "cardinality/hllpp.h"
#include "cardinality/hyperloglog.h"
#include "cardinality/kmv.h"
#include "cardinality/linear_counting.h"
#include "cardinality/loglog.h"
#include "cardinality/morris.h"
#include "common/check.h"
#include "core/registry.h"
#include "frequency/count_min.h"
#include "frequency/count_sketch.h"
#include "frequency/misra_gries.h"
#include "frequency/space_saving.h"
#include "graph/agm.h"
#include "membership/blocked_bloom.h"
#include "membership/bloom.h"
#include "membership/counting_bloom.h"
#include "moments/ams.h"
#include "quantiles/gk.h"
#include "quantiles/kll.h"
#include "quantiles/qdigest.h"
#include "quantiles/tdigest.h"
#include "sampling/l0_sampler.h"
#include "sampling/reservoir.h"
#include "similarity/minhash.h"
#include "time/decayed_count_min.h"
#include "time/exponential_histogram.h"
#include "time/sliding_count_min.h"
#include "time/sliding_hll.h"

/// \file
/// Registers every built-in serializable sketch with the global
/// SketchRegistry. Kept out of registry.cc so the core library does not
/// link against the sketch families; only consumers that need
/// type-agnostic deserialization (CLI, engine checkpoints, tests) pull
/// this translation unit in via the gems_registry target.

namespace gems {
namespace {

std::string Fmt(const char* format, double value) {
  char buffer[96];
  std::snprintf(buffer, sizeof(buffer), format, value);
  return buffer;
}

constexpr uint32_t kMaxTimedPanes = 1u << 20;

/// Shared validation for the window-geometry half of TimedSketchParams:
/// zero fields fall back to the given defaults, a decay parameter on a
/// windowed type is rejected, and the resolved geometry is range-checked.
Status ResolveWindowParams(const TimedSketchParams& params,
                           uint64_t default_pane_width,
                           uint32_t default_num_panes, uint64_t* pane_width,
                           uint32_t* num_panes) {
  if (params.half_life != 0.0) {
    return Status::InvalidArgument(
        "half_life does not apply to a pane-windowed sketch");
  }
  *pane_width = params.pane_width != 0 ? params.pane_width
                                       : default_pane_width;
  *num_panes = params.num_panes != 0 ? params.num_panes : default_num_panes;
  if (*num_panes > kMaxTimedPanes) {
    return Status::InvalidArgument("num_panes too large");
  }
  return Status::Ok();
}

void RegisterAll(SketchRegistry& r) {
  // Every Register call below introduces a fresh id, so failures would be
  // programmer error (duplicate id), not runtime conditions.
  auto must = [](Status s) { GEMS_CHECK(s.ok()); };

  must(RegisterSketchType<MorrisCounter>(
      r, SketchTypeId::kMorrisCounter,
      [](const MorrisCounter& s) { return Fmt("count ~ %.0f", s.Estimate()); },
      [] { return MorrisCounter(); }));
  must(RegisterSketchType<LinearCounting>(
      r, SketchTypeId::kLinearCounting,
      [](const LinearCounting& s) { return Fmt("distinct ~ %.0f", s.Estimate()); },
      [] { return LinearCounting(1 << 16); }));
  must(RegisterSketchType<FlajoletMartin>(
      r, SketchTypeId::kFlajoletMartin,
      [](const FlajoletMartin& s) { return Fmt("distinct ~ %.0f", s.Estimate()); },
      [] { return FlajoletMartin(64); }));
  must(RegisterSketchType<LogLog>(
      r, SketchTypeId::kLogLog,
      [](const LogLog& s) { return Fmt("distinct ~ %.0f", s.Estimate()); },
      [] { return LogLog(12); }));
  must(RegisterSketchType<HyperLogLog>(
      r, SketchTypeId::kHyperLogLog,
      [](const HyperLogLog& s) { return Fmt("distinct ~ %.0f", s.Estimate()); },
      [] { return HyperLogLog(12); }));
  must(RegisterSketchType<HllPlusPlus>(
      r, SketchTypeId::kHllPlusPlus,
      [](const HllPlusPlus& s) { return Fmt("distinct ~ %.0f", s.Estimate()); },
      [] { return HllPlusPlus(14); }));
  must(RegisterSketchType<KmvSketch>(
      r, SketchTypeId::kKmv,
      [](const KmvSketch& s) { return Fmt("distinct ~ %.0f", s.Estimate()); },
      [] { return KmvSketch(1024); }));

  must(RegisterSketchType<BloomFilter>(
      r, SketchTypeId::kBloomFilter,
      [](const BloomFilter& s) {
        return Fmt("membership filter, fpr ~ %.4g", s.EstimatedFpr());
      },
      [] { return BloomFilter::ForCapacity(1 << 20, 0.01); }));
  must(RegisterSketchType<CountingBloomFilter>(
      r, SketchTypeId::kCountingBloomFilter,
      [](const CountingBloomFilter& s) {
        return Fmt("counting filter, %.0f counters",
                   static_cast<double>(s.num_counters()));
      },
      [] { return CountingBloomFilter(1 << 20, 4); }));
  must(RegisterSketchType<BlockedBloomFilter>(
      r, SketchTypeId::kBlockedBloomFilter,
      [](const BlockedBloomFilter& s) {
        return Fmt("blocked filter, %.0f bits",
                   static_cast<double>(s.num_bits()));
      },
      [] { return BlockedBloomFilter(1 << 23, 4); }));

  must(RegisterSketchType<CountMinSketch>(
      r, SketchTypeId::kCountMin,
      [](const CountMinSketch& s) {
        return Fmt("frequency table, total weight %.0f",
                   static_cast<double>(s.TotalWeight()));
      },
      [] { return CountMinSketch::ForGuarantee(0.001, 0.01); }));
  must(RegisterSketchType<CountSketch>(
      r, SketchTypeId::kCountSketch,
      [](const CountSketch& s) {
        return Fmt("frequency table, %.0f counters",
                   static_cast<double>(s.width()) * s.depth());
      },
      [] { return CountSketch(2048, 5); }));
  must(RegisterSketchType<MisraGries>(
      r, SketchTypeId::kMisraGries,
      [](const MisraGries& s) {
        return Fmt("heavy hitters, total weight %.0f",
                   static_cast<double>(s.TotalWeight()));
      },
      [] { return MisraGries(256); }));
  must(RegisterSketchType<SpaceSaving>(
      r, SketchTypeId::kSpaceSaving,
      [](const SpaceSaving& s) {
        std::string out = Fmt("top-k, total weight %.0f",
                              static_cast<double>(s.TotalWeight()));
        const auto top = s.TopK(1);
        if (!top.empty()) {
          out += Fmt("; heaviest count %.0f",
                     static_cast<double>(top.front().count));
        }
        return out;
      },
      [] { return SpaceSaving(1024); }));

  must(RegisterSketchType<GreenwaldKhanna>(
      r, SketchTypeId::kGreenwaldKhanna,
      [](const GreenwaldKhanna& s) {
        if (s.Count() == 0) return std::string("quantiles, empty");
        return Fmt("quantiles, median ~ %.6g", s.Quantile(0.5)) +
               Fmt(" over %.0f values", static_cast<double>(s.Count()));
      },
      [] { return GreenwaldKhanna(0.01); }));
  must(RegisterSketchType<KllSketch>(
      r, SketchTypeId::kKll,
      [](const KllSketch& s) {
        if (s.Count() == 0) return std::string("quantiles, empty");
        return Fmt("quantiles, median ~ %.6g", s.Quantile(0.5)) +
               Fmt(" over %.0f values", static_cast<double>(s.Count()));
      },
      [] { return KllSketch(); }));
  must(RegisterSketchType<QDigest>(
      r, SketchTypeId::kQDigest,
      [](const QDigest& s) {
        if (s.Count() == 0) return std::string("quantiles, empty");
        return Fmt("quantiles, median ~ %.6g",
                   static_cast<double>(s.Quantile(0.5))) +
               Fmt(" over %.0f values", static_cast<double>(s.Count()));
      },
      [] { return QDigest(32, 64); }));
  must(RegisterSketchType<TDigest>(
      r, SketchTypeId::kTDigest,
      [](const TDigest& s) {
        if (s.Count() == 0) return std::string("quantiles, empty");
        return Fmt("quantiles, median ~ %.6g", s.Quantile(0.5)) +
               Fmt(" over %.0f values", static_cast<double>(s.Count()));
      },
      [] { return TDigest(); }));

  must(RegisterSketchType<ReservoirSampler>(
      r, SketchTypeId::kReservoir,
      [](const ReservoirSampler& s) {
        return Fmt("uniform sample of %.0f items",
                   static_cast<double>(s.Sample().size()));
      },
      [] { return ReservoirSampler(256, 42); }));
  must(RegisterSketchType<L0Sampler>(
      r, SketchTypeId::kL0Sampler,
      [](const L0Sampler&) { return std::string("l0 support sampler"); },
      [] { return L0Sampler(42); }));

  must(RegisterSketchType<AmsSketch>(
      r, SketchTypeId::kAmsSketch,
      [](const AmsSketch& s) { return Fmt("F2 ~ %.6g", s.EstimateF2()); },
      [] { return AmsSketch(64, 8); }));

  must(RegisterSketchType<MinHashSketch>(
      r, SketchTypeId::kMinHash,
      [](const MinHashSketch& s) {
        return Fmt("minhash signature, k = %.0f",
                   static_cast<double>(s.k()));
      },
      [] { return MinHashSketch(128); }));

  must(RegisterSketchType<AgmSketch>(
      r, SketchTypeId::kAgmSketch,
      [](const AgmSketch& s) {
        return Fmt("graph sketch over %.0f vertices",
                   static_cast<double>(s.num_vertices()));
      },
      std::function<AgmSketch()>()));  // No sensible default vertex count.

  // The time family: window/decay parameters flow in through make_timed
  // (the gemsd CREATE path); make_default picks telemetry-flavored
  // defaults (seconds-resolution clocks, minute panes).
  must(RegisterSketchType<SlidingHyperLogLog>(
      r, SketchTypeId::kSlidingHyperLogLog,
      [](const SlidingHyperLogLog& s) {
        return Fmt("windowed distinct ~ %.0f", s.Estimate()) +
               Fmt(" over trailing %.0f time units",
                   static_cast<double>(s.WindowSpan()));
      },
      [] { return SlidingHyperLogLog(12, 60, 10); },
      [](const TimedSketchParams& params) -> Result<SlidingHyperLogLog> {
        uint64_t pane_width = 0;
        uint32_t num_panes = 0;
        if (Status s = ResolveWindowParams(params, 60, 10, &pane_width,
                                           &num_panes);
            !s.ok()) {
          return s;
        }
        return SlidingHyperLogLog(12, pane_width, num_panes);
      }));
  must(RegisterSketchType<SlidingCountMin>(
      r, SketchTypeId::kSlidingCountMin,
      [](const SlidingCountMin& s) {
        return Fmt("windowed frequency table, window weight %.0f",
                   static_cast<double>(s.TotalWeight()));
      },
      [] { return SlidingCountMin(2048, 4, 60, 10); },
      [](const TimedSketchParams& params) -> Result<SlidingCountMin> {
        uint64_t pane_width = 0;
        uint32_t num_panes = 0;
        if (Status s = ResolveWindowParams(params, 60, 10, &pane_width,
                                           &num_panes);
            !s.ok()) {
          return s;
        }
        return SlidingCountMin(2048, 4, pane_width, num_panes);
      }));
  must(RegisterSketchType<DecayedCountMin>(
      r, SketchTypeId::kDecayedCountMin,
      [](const DecayedCountMin& s) {
        return Fmt("decayed frequency table, decayed weight %.1f",
                   s.TotalWeight());
      },
      [] { return DecayedCountMin(2048, 4, 300.0); },
      [](const TimedSketchParams& params) -> Result<DecayedCountMin> {
        if (params.pane_width != 0 || params.num_panes != 0) {
          return Status::InvalidArgument(
              "window geometry does not apply to a decayed sketch");
        }
        if (!std::isfinite(params.half_life) || params.half_life < 0.0) {
          return Status::InvalidArgument("half_life must be finite and > 0");
        }
        const double half_life =
            params.half_life != 0.0 ? params.half_life : 300.0;
        return DecayedCountMin(2048, 4, half_life);
      }));
  must(RegisterSketchType<ExponentialHistogram>(
      r, SketchTypeId::kExponentialHistogram,
      [](const ExponentialHistogram& s) {
        return Fmt("windowed event count ~ %.0f", s.Estimate()) +
               Fmt(" over trailing %.0f time units",
                   static_cast<double>(s.window()));
      },
      [] { return ExponentialHistogram(3600, 0.05); },
      [](const TimedSketchParams& params) -> Result<ExponentialHistogram> {
        // The single window knob rides pane_width; there are no panes.
        if (params.num_panes != 0) {
          return Status::InvalidArgument(
              "num_panes does not apply to an exponential histogram");
        }
        if (params.half_life != 0.0) {
          return Status::InvalidArgument(
              "half_life does not apply to an exponential histogram");
        }
        const uint64_t window =
            params.pane_width != 0 ? params.pane_width : 3600;
        return ExponentialHistogram(window, 0.05);
      }));
}

}  // namespace

void RegisterBuiltinSketches() {
  static std::once_flag once;
  std::call_once(once, [] { RegisterAll(SketchRegistry::Global()); });
}

}  // namespace gems
