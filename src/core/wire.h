#ifndef GEMS_CORE_WIRE_H_
#define GEMS_CORE_WIRE_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "core/io.h"

/// \file
/// The unified versioned wire format shared by every serializable sketch.
///
/// What made DataSketches infrastructure rather than a paper artifact is
/// that every sketch shares one portable serialized form that can be
/// stored, shipped, and merged by code that does not know the concrete
/// type. Every serialized sketch in this library is one *envelope*:
///
///   offset  size  field
///   0       4     magic "GEMS" (0x534D4547 little-endian)
///   4       2     sketch type id (SketchTypeId, little-endian u16)
///   6       1     format version (kWireVersion)
///   7       1     flags (reserved; must be zero in version 1)
///   8       4     payload length in bytes (little-endian u32)
///   12      8     XXH64 checksum (see below, little-endian u64)
///   20      ...   payload (sketch-specific encoding)
///
/// The checksum is XXH64(payload, seed) where the seed is itself
/// XXH64(header bytes [0, 12), kWireChecksumSeed) — so corruption of any
/// header field or any payload byte is detected without buffering a copy
/// of the payload. Readers reject bad magic, unknown type ids, future
/// versions, nonzero flags, length mismatches (truncation or trailing
/// bytes), and checksum mismatches, all as Status::kCorruption — never a
/// crash or silently-garbage sketch.

namespace gems {

/// Type tags for serialized sketches. Values are part of the wire format;
/// append only, never renumber or reuse.
enum class SketchTypeId : uint16_t {
  kMorrisCounter = 1,
  kLinearCounting = 2,
  kFlajoletMartin = 3,
  kLogLog = 4,
  kHyperLogLog = 5,
  kHllPlusPlus = 6,
  kKmv = 7,
  kBloomFilter = 8,
  kCountingBloomFilter = 9,
  kBlockedBloomFilter = 10,
  kCountMin = 11,
  kCountSketch = 12,
  kMisraGries = 13,
  kSpaceSaving = 14,
  kMajority = 15,
  kGreenwaldKhanna = 16,
  kKll = 17,
  kQDigest = 18,
  kTDigest = 19,
  kReservoir = 20,
  kWeightedReservoir = 21,
  kL0Sampler = 22,
  kAmsSketch = 23,
  kMinHash = 24,
  kSimHash = 25,
  kAgmSketch = 26,
  kDyadicCountMin = 27,
  kSlidingHyperLogLog = 28,
  kSlidingCountMin = 29,
  kDecayedCountMin = 30,
  kExponentialHistogram = 31,
};

/// Envelope constants. kWireVersion is the version this build writes;
/// readers accept only versions they know how to parse.
inline constexpr uint32_t kWireMagic = 0x534D4547;  // "GEMS" little-endian.
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kWireHeaderSize = 20;
inline constexpr uint64_t kWireChecksumSeed = 0x736B65746368ULL;  // "sketch"

/// True if `raw` is a type id this build knows about (registered or not).
bool IsKnownSketchTypeId(uint16_t raw);

/// Stable lowercase name for a type id ("hyperloglog", "kll", ...);
/// "unknown" for ids this build does not know.
const char* SketchTypeName(SketchTypeId id);

/// Wraps a sketch payload in the standard envelope. Convenience owning
/// form of EnvelopeBuilder below; both produce byte-identical envelopes.
std::vector<uint8_t> WrapEnvelope(SketchTypeId type,
                                  std::vector<uint8_t> payload);

/// Writes an envelope straight into a caller-owned buffer with no
/// intermediate payload copy: construct (writes the 20-byte header with
/// length and checksum still blank), append the payload through sink(),
/// then Finish() backfills both. The result is byte-identical to
/// WrapEnvelope over the same payload.
///
///   ByteSink sink(&arena);
///   EnvelopeBuilder env(sink, SketchTypeId::kHyperLogLog);
///   sink.PutU8(precision); ...           // payload
///   env.Finish();
///
/// Exactly one envelope may be under construction in a sink at a time.
class EnvelopeBuilder {
 public:
  EnvelopeBuilder(ByteSink& sink, SketchTypeId type);
  EnvelopeBuilder(const EnvelopeBuilder&) = delete;
  EnvelopeBuilder& operator=(const EnvelopeBuilder&) = delete;
  ~EnvelopeBuilder() { Finish(); }

  ByteSink& sink() { return sink_; }

  /// Backfills payload length and checksum. Idempotent; called by the
  /// destructor if not called explicitly.
  void Finish();

  /// Offset of the envelope's first byte in the sink's buffer, so callers
  /// can slice the finished envelope back out of an arena.
  size_t start_offset() const { return start_; }

 private:
  ByteSink& sink_;
  size_t start_;
  bool finished_ = false;
};

/// Parsed-and-validated view into an envelope. `payload` points into the
/// buffer handed to ParseEnvelope and is valid only while it lives.
struct EnvelopeView {
  SketchTypeId type;
  uint8_t version = 0;
  uint8_t flags = 0;
  const uint8_t* payload = nullptr;
  uint32_t payload_size = 0;
};

/// How much of an envelope ParseEnvelope checks.
///
/// kFull is the default everywhere: every header field plus the XXH64
/// payload checksum. kStructural performs every check EXCEPT the checksum
/// comparison — magic, type id, version, flags, and the length bounds that
/// make payload access memory-safe are all still enforced. It exists for
/// same-process fan-in (combiner trees, shard merges) where the bytes were
/// produced moments ago by this process and never crossed a failure
/// domain: there the checksum pass is pure overhead, and on flat sketches
/// it dominates the whole wrap-and-merge cost. Bytes that arrived from
/// disk or the network should always get kFull.
enum class EnvelopeVerify : uint8_t {
  kFull,
  kStructural,
};

/// Validates magic, type id, version, flags, length, and (under kFull)
/// checksum. The envelope must occupy exactly [data, data + size); shorter
/// input is truncation and longer input is trailing garbage, both
/// kCorruption. Accepts any borrowed byte source (vector, mmap,
/// ring-buffer slice) via ByteSpan without copying.
Result<EnvelopeView> ParseEnvelope(const uint8_t* data, size_t size,
                                   EnvelopeVerify verify =
                                       EnvelopeVerify::kFull);
Result<EnvelopeView> ParseEnvelope(ByteSpan bytes,
                                   EnvelopeVerify verify =
                                       EnvelopeVerify::kFull);

/// Validates the envelope, additionally requires its type tag to equal
/// `expected` (kCorruption otherwise — the cross-type confusion case), and
/// returns a reader positioned at the start of the payload. The reader
/// borrows `bytes`, which must outlive it.
Result<ByteReader> OpenEnvelope(SketchTypeId expected, ByteSpan bytes);

/// Reads just the type tag of a serialized sketch after full envelope
/// validation — how type-agnostic consumers (registry, CLI `merge`)
/// dispatch without being told the type.
Result<SketchTypeId> PeekSketchType(ByteSpan bytes);

}  // namespace gems

#endif  // GEMS_CORE_WIRE_H_
