#ifndef GEMS_ENGINE_EXPONENTIAL_HISTOGRAM_H_
#define GEMS_ENGINE_EXPONENTIAL_HISTOGRAM_H_

/// \file
/// Compatibility shim: ExponentialHistogram was promoted into the time
/// family (src/time/exponential_histogram.h), gaining wire serialization,
/// a registry entry, and clamping (non-aborting) out-of-order handling.
/// This header remains so engine-era includes keep compiling; new code
/// should include time/exponential_histogram.h.

#include "time/exponential_histogram.h"  // IWYU pragma: export

#endif  // GEMS_ENGINE_EXPONENTIAL_HISTOGRAM_H_
