#ifndef GEMS_ENGINE_EXPONENTIAL_HISTOGRAM_H_
#define GEMS_ENGINE_EXPONENTIAL_HISTOGRAM_H_

#include <cstdint>
#include <deque>

#include "common/check.h"

/// \file
/// Exponential histogram (Datar, Gionis, Indyk & Motwani 2002): counts the
/// number of events in the last W time units of a stream within a
/// (1 + eps) factor, using O((1/eps) log^2 W) bits — the canonical
/// sliding-window sketch of the streaming era the paper surveys. Buckets
/// of exponentially growing sizes are merged so that at most k = ceil(1/eps)
/// buckets of each size exist; only the oldest bucket is uncertain.

namespace gems {

/// Sliding-window event counter.
class ExponentialHistogram {
 public:
  /// Counts events in the trailing `window` time units with relative
  /// error <= epsilon.
  ExponentialHistogram(uint64_t window, double epsilon);

  ExponentialHistogram(const ExponentialHistogram&) = default;
  ExponentialHistogram& operator=(const ExponentialHistogram&) = default;
  ExponentialHistogram(ExponentialHistogram&&) = default;
  ExponentialHistogram& operator=(ExponentialHistogram&&) = default;

  /// Records one event at `timestamp` (non-decreasing).
  void Add(uint64_t timestamp);

  /// Estimated number of events in (now - window, now]; `now` must be >=
  /// the last Add timestamp.
  uint64_t EstimateCount(uint64_t now) const;

  /// Number of buckets currently held (space accounting).
  size_t NumBuckets() const { return buckets_.size(); }

  uint64_t window() const { return window_; }
  double epsilon() const { return epsilon_; }

 private:
  struct Bucket {
    uint64_t timestamp;  // Most recent event folded into this bucket.
    uint64_t size;       // Number of events (a power of two).
  };

  /// Drops buckets whose newest event has left the window.
  void ExpireBefore(uint64_t now);
  /// Restores the <= k buckets-per-size invariant by merging oldest pairs.
  void Canonicalize();

  uint64_t window_;
  double epsilon_;
  size_t max_per_size_;  // k = ceil(1/eps) (+1 transiently).
  uint64_t last_timestamp_ = 0;
  // Newest buckets at the front, oldest at the back.
  std::deque<Bucket> buckets_;
};

}  // namespace gems

#endif  // GEMS_ENGINE_EXPONENTIAL_HISTOGRAM_H_
