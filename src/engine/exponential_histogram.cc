#include "engine/exponential_histogram.h"

#include <cmath>

namespace gems {

ExponentialHistogram::ExponentialHistogram(uint64_t window, double epsilon)
    : window_(window), epsilon_(epsilon) {
  GEMS_CHECK(window >= 1);
  GEMS_CHECK(epsilon > 0.0 && epsilon <= 1.0);
  max_per_size_ = static_cast<size_t>(std::ceil(1.0 / epsilon));
}

void ExponentialHistogram::Add(uint64_t timestamp) {
  GEMS_CHECK(timestamp >= last_timestamp_);
  last_timestamp_ = timestamp;
  ExpireBefore(timestamp);
  buckets_.push_front(Bucket{timestamp, 1});
  Canonicalize();
}

void ExponentialHistogram::ExpireBefore(uint64_t now) {
  // A bucket is expired once its newest event is outside (now - W, now].
  while (!buckets_.empty() &&
         buckets_.back().timestamp + window_ <= now) {
    buckets_.pop_back();
  }
}

void ExponentialHistogram::Canonicalize() {
  // Walk from newest to oldest; whenever more than k buckets of one size
  // exist, merge the two OLDEST of that size into one of double size.
  // One insertion adds one size-1 bucket, so a single cascading pass
  // restores the invariant.
  size_t index = 0;
  while (index < buckets_.size()) {
    const uint64_t size = buckets_[index].size;
    // Count the run of buckets with this size starting at `index`
    // (buckets are kept in non-decreasing size order from front to back).
    size_t run_end = index;
    while (run_end < buckets_.size() && buckets_[run_end].size == size) {
      ++run_end;
    }
    const size_t run = run_end - index;
    if (run <= max_per_size_) {
      index = run_end;
      continue;
    }
    // Merge the two oldest of this size (positions run_end-1, run_end-2).
    // The merged bucket keeps the NEWER timestamp of the pair, so expiry
    // remains conservative for the estimator below.
    Bucket merged;
    merged.size = size * 2;
    merged.timestamp = buckets_[run_end - 2].timestamp;
    buckets_.erase(buckets_.begin() + run_end - 2,
                   buckets_.begin() + run_end);
    buckets_.insert(buckets_.begin() + (run_end - 2), merged);
    // The doubled bucket may overflow the next size class; continue from
    // the start of this run.
  }
}

uint64_t ExponentialHistogram::EstimateCount(uint64_t now) const {
  GEMS_CHECK(now >= last_timestamp_);
  uint64_t total = 0;
  uint64_t oldest_size = 0;
  for (const Bucket& bucket : buckets_) {
    if (bucket.timestamp + window_ <= now) continue;  // Expired.
    total += bucket.size;
    oldest_size = bucket.size;  // Last surviving = oldest.
  }
  // The oldest bucket straddles the window boundary: only about half its
  // events are expected inside. Subtracting half its size is the standard
  // estimator, with error <= oldest_size/2 <= eps * true count.
  return total - oldest_size / 2;
}

}  // namespace gems
