#ifndef GEMS_ENGINE_STREAM_QUERY_H_
#define GEMS_ENGINE_STREAM_QUERY_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "cardinality/hyperloglog.h"
#include "common/bytes.h"
#include "common/flat_map.h"
#include "common/status.h"
#include "distributed/concurrent/concurrent_summary.h"
#include "distributed/thread_pool.h"
#include "frequency/space_saving.h"
#include "quantiles/kll.h"
#include "time/pane_ring.h"
#include "time/sliding_hll.h"

/// \file
/// A miniature stream-query engine in the mold of the network-era systems
/// the paper surveys (AT&T's Gigascope, Sprint's CMON): continuous
/// GROUP BY aggregate queries over event streams, where each group's
/// aggregate is a sketch rather than exact state — the "maintain huge
/// numbers of sketches in parallel" workload the paper emphasizes.
/// Supports filters, tumbling windows, sliding windows (COUNT DISTINCT,
/// TOP-K, and QUANTILES over per-group pane rings), and three sketch
/// aggregates (COUNT DISTINCT via HLL, TOP-K via SpaceSaving, QUANTILES
/// via KLL). Many standing queries over one stream share a single ingest
/// pass through MultiQueryEngine (engine/multi_query.h).

namespace gems {

/// One input event: a timestamped (group, item, value) record. For the IP
/// monitoring scenario: group = destination, item = source, value = bytes.
struct StreamEvent {
  uint64_t timestamp = 0;
  uint64_t group = 0;
  uint64_t item = 0;
  int64_t value = 1;
};

/// Aggregate computed per group.
enum class AggregateKind {
  kCountDistinct,  // # distinct items per group (HLL).
  kTopK,           // Heaviest items per group by value (SpaceSaving).
  kQuantiles,      // Quantiles of value per group (KLL).
  kSum,            // Exact sum of value per group (baseline aggregate).
};

/// Result for one group in one closed window.
struct GroupAggregate {
  uint64_t group = 0;
  /// kCountDistinct / kSum: the estimate or exact sum.
  double scalar = 0.0;
  /// kTopK: (item, estimated count), heaviest first.
  std::vector<std::pair<uint64_t, int64_t>> top_items;
  /// kQuantiles: values at the query's configured quantile points.
  std::vector<double> quantiles;
};

/// One closed tumbling window.
struct WindowResult {
  uint64_t window_start = 0;
  uint64_t window_end = 0;  // Exclusive.
  std::vector<GroupAggregate> groups;  // Sorted by group id.
};

/// A continuous GROUP BY sketch-aggregate query.
class StreamQuery {
 public:
  struct Options {
    AggregateKind aggregate = AggregateKind::kCountDistinct;
    /// Tumbling window size in timestamp units; 0 = one unbounded window
    /// (results only via Flush()).
    uint64_t window_size = 0;
    /// Sliding mode: when nonzero, a result covering the trailing
    /// window_size units is emitted every `slide` units instead of the
    /// window tumbling. Requires window_size > 0 with window_size a
    /// multiple of slide, and a sketch aggregate (kCountDistinct, kTopK,
    /// or kQuantiles — kSum has no mergeable summary to put in a pane) —
    /// each group's state becomes a pane ring with pane_width = slide,
    /// and groups persist across slide boundaries.
    uint64_t slide = 0;
    /// HLL precision for kCountDistinct.
    int hll_precision = 12;
    /// SpaceSaving capacity and reported k for kTopK.
    size_t top_k_capacity = 64;
    size_t top_k = 10;
    /// KLL parameter and query points for kQuantiles.
    uint32_t kll_k = 200;
    std::vector<double> quantile_points = {0.5, 0.95, 0.99};
  };

  StreamQuery(const Options& options, uint64_t seed);

  StreamQuery(const StreamQuery&) = delete;
  StreamQuery& operator=(const StreamQuery&) = delete;
  StreamQuery(StreamQuery&&) = default;
  StreamQuery& operator=(StreamQuery&&) = default;

  /// Optional pre-aggregation filter; events failing any filter are
  /// dropped. Returns *this for chaining.
  StreamQuery& AddFilter(std::function<bool(const StreamEvent&)> predicate);

  /// Mirrors every accepted (post-filter) event's item into `live`, a
  /// wait-free concurrent HLL that other threads can query while this
  /// query ingests — the stream-wide live distinct count, across groups
  /// and windows. Only valid for kCountDistinct queries; `live` should be
  /// built with the query's precision and seed and must outlive the
  /// query. Window closes flush the query thread's residual so a reader
  /// is never more than one window plus one local buffer stale. Returns
  /// *this for chaining.
  StreamQuery& PublishDistinctTo(ConcurrentSummary<HyperLogLog>* live);

  /// Processes one event. Timestamps must be non-decreasing; an event in a
  /// later window closes the current one.
  Status Process(const StreamEvent& event);

  /// Processes a batch of events with the hash-once ingest pipeline: for
  /// COUNT DISTINCT queries each event's item is hashed exactly once per
  /// chunk (all groups' HLLs share the query seed, so the hash word feeds
  /// whichever group the event lands in), instead of once per sketch
  /// probe. Other aggregates process per-event. Window, ordering, and
  /// filter semantics are identical to calling Process() per event, and
  /// the resulting state is byte-identical. Stops at the first error.
  Status ProcessBatch(std::span<const StreamEvent> events);

  /// Multi-core variant of ProcessBatch: events are partitioned by
  /// group-key hash, so each pool worker owns a disjoint slice of the
  /// GROUP-BY table and updates its groups' sketches with no locks. Window
  /// advancement and filters stay sequential (they are ordered and cheap);
  /// the sketch updates — the hot part of the Gigascope-style
  /// many-sketches workload — run in parallel per window segment. Because
  /// a group's events are all owned by one worker and applied in stream
  /// order, the resulting state is byte-identical (SerializeState) to
  /// calling Process() per event. Stops at the first error; events routed
  /// before the error are applied.
  Status ProcessBatchParallel(std::span<const StreamEvent> events,
                              ThreadPool& pool);

  /// Shared-ingest entry point used by MultiQueryEngine: processes a batch
  /// whose item column has already been hashed once under this query's
  /// seed, with filter decisions precomputed per event.
  ///
  ///  - `hashes`, when non-empty, parallels `events` with
  ///    hashes[i] == Hash64(events[i].item, seed); non-sliding COUNT
  ///    DISTINCT feeds the words straight into each group's HLL instead of
  ///    re-hashing. Ignored (and may be empty) for other aggregates.
  ///  - `accept`, when non-empty, parallels `events`; an event with
  ///    accept[i] == 0 is dropped exactly as if a filter rejected it
  ///    (after window advancement, like PassesFilters). Filters attached
  ///    with AddFilter() still apply on top.
  ///
  /// Window, ordering, and error semantics are identical to
  /// ProcessBatch(), and the resulting state is byte-identical
  /// (SerializeState) to processing the same accepted events there.
  Status ProcessBatchPrehashed(std::span<const StreamEvent> events,
                               std::span<const uint64_t> hashes,
                               std::span<const uint8_t> accept);

  /// Drains windows closed so far.
  std::vector<WindowResult> Poll();

  /// Closes the current window regardless of time and returns all results.
  std::vector<WindowResult> Flush();

  /// Number of sketches currently held (open window groups).
  size_t NumOpenGroups() const;

  /// Serializes the query's dynamic state — window bookkeeping, every open
  /// group's sketches (as standard wire envelopes via the sketch registry),
  /// and windows closed but not yet polled — so a long-running query can be
  /// checkpointed and resumed after a restart. Filters are code, not state,
  /// and are not serialized.
  std::vector<uint8_t> SerializeState() const;

  /// Restores state produced by SerializeState into this query. The query
  /// must have been constructed with the same Options and seed (mismatches
  /// are kInvalidArgument); malformed bytes are kCorruption and leave the
  /// query untouched. Existing dynamic state is replaced on success.
  Status RestoreState(std::span<const uint8_t> bytes);

  const Options& options() const { return options_; }

 private:
  struct GroupState {
    std::optional<HyperLogLog> distinct;
    std::optional<SlidingHyperLogLog> sliding;  // Sliding kCountDistinct.
    std::optional<PaneRing<SpaceSaving>> sliding_top;       // Sliding kTopK.
    std::optional<PaneRing<KllSketch>> sliding_quantiles;   // Sliding kQuantiles.
    std::optional<SpaceSaving> top;
    std::optional<KllSketch> quantiles;
    int64_t sum = 0;
  };

  GroupState& StateFor(uint64_t group);
  /// Validates ordering, initializes/advances the tumbling window, and
  /// updates last_timestamp_ for one event.
  Status AdvanceWindow(const StreamEvent& event);
  bool PassesFilters(const StreamEvent& event) const;
  /// Applies one accepted event to its group's aggregate state. `hash`,
  /// when non-null, is the event item's precomputed Hash64 under seed_
  /// (non-sliding COUNT DISTINCT consumes it; other aggregates ignore it).
  void ApplyEvent(const StreamEvent& event, const uint64_t* hash);
  void CloseWindow(uint64_t next_window_start);
  /// Sliding mode: emits the window ending at `boundary` (exclusive) over
  /// every group's pane ring, without clearing the group table.
  void EmitSlidingWindow(uint64_t boundary);
  GroupAggregate Snapshot(uint64_t group, const GroupState& state) const;
  /// The open groups as (group id, state) pairs sorted by group id — the
  /// flat table iterates in hash order, so ordered emission (window
  /// snapshots, checkpoints) sorts here.
  std::vector<std::pair<uint64_t, GroupState*>> SortedGroups() const;

  Options options_;
  uint64_t seed_;
  ConcurrentSummary<HyperLogLog>* live_distinct_ = nullptr;
  std::vector<std::function<bool(const StreamEvent&)>> filters_;
  uint64_t current_window_start_ = 0;
  bool window_initialized_ = false;
  uint64_t last_timestamp_ = 0;
  FlatMap64<GroupState> groups_;
  std::deque<WindowResult> closed_;
};

namespace engine_detail {

/// Serialization of materialized window results, shared between the
/// StreamQuery checkpoint and the MultiQueryEngine's per-view result
/// caches (multi_query.cc).
void SerializeWindows(ByteWriter& w, const std::deque<WindowResult>& windows);
Status DeserializeWindows(ByteReader& r, std::deque<WindowResult>* out);

/// The sketch knobs that actually shape a query's state and results,
/// with every knob the aggregate does not read zeroed out: a SUM query's
/// kll_k setting, a COUNT DISTINCT query's top_k_capacity, and so on are
/// canonicalized away. Checkpoint fingerprints (version 3+) and the
/// MultiQueryEngine's state-dedup key are built from this, so two queries
/// that differ only in unused knobs are byte-identical — and shareable.
struct OptionKnobs {
  uint8_t hll_precision = 0;
  uint64_t top_k_capacity = 0;
  uint64_t top_k = 0;
  uint32_t kll_k = 0;
};

OptionKnobs RelevantKnobs(const StreamQuery::Options& options);

}  // namespace engine_detail

}  // namespace gems

#endif  // GEMS_ENGINE_STREAM_QUERY_H_
