#ifndef GEMS_ENGINE_SLIDING_WINDOW_H_
#define GEMS_ENGINE_SLIDING_WINDOW_H_

#include <cstdint>
#include <deque>
#include <optional>

#include "common/check.h"
#include "core/summary.h"

/// \file
/// Pane-based sliding windows over any mergeable summary: the window is
/// divided into fixed panes, each summarized independently; a query merges
/// the live panes. This is mergeability put to work *inside* one stream —
/// expired panes are dropped wholesale, giving sliding-window semantics
/// that register sketches (which cannot "forget" individual items) could
/// not otherwise offer. Window error adds one pane of time quantization.

namespace gems {

/// Sliding window of `num_panes` panes of `pane_width` time units over a
/// mergeable summary S.
template <typename S>
  requires MergeableSummary<S>
class SlidingWindowSummary {
 public:
  /// Window covers num_panes * pane_width time units; all panes start as
  /// copies of `prototype` (merge-compatible by construction).
  SlidingWindowSummary(const S& prototype, uint64_t pane_width,
                       size_t num_panes)
      : prototype_(prototype),
        pane_width_(pane_width),
        num_panes_(num_panes) {
    GEMS_CHECK(pane_width >= 1);
    GEMS_CHECK(num_panes >= 1);
  }

  /// Feeds one timestamped update; forwards `args` to S::Update.
  /// Timestamps must be non-decreasing.
  template <typename... Args>
  void Update(uint64_t timestamp, Args&&... args) {
    Advance(timestamp);
    panes_.back().summary.Update(std::forward<Args>(args)...);
  }

  /// Merged summary of every pane overlapping the window ending at the
  /// most recent timestamp. Returns the prototype (empty) if no data.
  S WindowSummary() const {
    S merged = prototype_;
    for (const Pane& pane : panes_) {
      Status s = merged.Merge(pane.summary);
      GEMS_CHECK(s.ok());
    }
    return merged;
  }

  /// Advances time, expiring panes older than the window.
  void Advance(uint64_t timestamp) {
    const uint64_t pane_id = timestamp / pane_width_;
    if (panes_.empty() || pane_id > panes_.back().id) {
      panes_.push_back(Pane{pane_id, prototype_});
    }
    GEMS_CHECK(pane_id >= panes_.back().id);  // Monotone time.
    // Live panes are ids in (pane_id - num_panes, pane_id]: the current
    // (partial) pane plus the num_panes - 1 full panes before it.
    while (!panes_.empty() && panes_.front().id + num_panes_ <= pane_id) {
      panes_.pop_front();
    }
  }

  size_t NumLivePanes() const { return panes_.size(); }
  uint64_t WindowSpan() const { return pane_width_ * num_panes_; }

 private:
  struct Pane {
    uint64_t id;
    S summary;
  };

  S prototype_;
  uint64_t pane_width_;
  size_t num_panes_;
  std::deque<Pane> panes_;
};

}  // namespace gems

#endif  // GEMS_ENGINE_SLIDING_WINDOW_H_
