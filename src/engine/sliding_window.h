#ifndef GEMS_ENGINE_SLIDING_WINDOW_H_
#define GEMS_ENGINE_SLIDING_WINDOW_H_

/// \file
/// Compatibility shim: SlidingWindowSummary was promoted into the time
/// family as PaneRing (src/time/pane_ring.h), which also fixes the
/// out-of-order abort (late timestamps clamp into the current pane) and
/// memoizes the window merge. This header remains so engine-era includes
/// keep compiling; new code should include time/pane_ring.h.

#include "time/pane_ring.h"  // IWYU pragma: export

#endif  // GEMS_ENGINE_SLIDING_WINDOW_H_
