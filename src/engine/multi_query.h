#ifndef GEMS_ENGINE_MULTI_QUERY_H_
#define GEMS_ENGINE_MULTI_QUERY_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "distributed/thread_pool.h"
#include "engine/stream_query.h"
#include "hash/hashed_batch.h"

/// \file
/// Shared-ingest execution for many standing queries over one stream — the
/// paper's "maintain huge numbers of sketches in parallel" workload at the
/// query layer. N independent StreamQuerys cost N passes over the stream:
/// every event is filtered N times and its item hashed once per COUNT
/// DISTINCT query. MultiQueryEngine registers all N queries up front and
/// ingests in ONE pass:
///
///  - **Filter dedup.** Predicates are registered once and referenced by id;
///    each distinct predicate is evaluated once per event into a byte
///    column, then AND-combined per query. 200 queries sharing 10
///    predicates cost 10 evaluations per event, not 200.
///  - **Hash once.** All queries share the engine seed, so the event
///    chunk's item column is hashed exactly once (HashedBatch) and the same
///    words feed every COUNT DISTINCT query's HLLs.
///  - **State dedup.** Queries whose (Options, filter set) coincide — same
///    aggregate, parameters, window geometry, and predicates under the
///    shared seed — would build byte-identical sketches, so they share one
///    physical StreamQuery. Each registered query keeps its own result view
///    (cursor over the shared query's emitted windows), so sharing is
///    invisible at the API.
///
/// Per-query results and checkpoints stay byte-identical (SerializeState)
/// to running N independent StreamQuerys with the same options, seed, and
/// filters — sharing is purely an execution strategy, never a semantics
/// change. The parallel path fans the per-chunk dispatch across a
/// ThreadPool, one task per physical query over shared read-only columns,
/// with no locks on the hot path.

namespace gems {

/// Registers standing queries, then ingests the stream once for all of
/// them. Not thread-safe for concurrent calls; the parallel path borrows a
/// pool internally.
class MultiQueryEngine {
 public:
  /// Handle for one registered query (dense, starting at 0).
  using QueryId = size_t;
  /// Handle for one registered filter predicate (dense, starting at 0).
  using FilterId = size_t;

  /// All queries ingest under this seed (the hash-once contract needs one
  /// seed across every sketch fed from the shared hash column).
  explicit MultiQueryEngine(uint64_t seed);

  MultiQueryEngine(const MultiQueryEngine&) = delete;
  MultiQueryEngine& operator=(const MultiQueryEngine&) = delete;

  /// Registers a filter predicate for use by any number of queries. Each
  /// distinct FilterId is evaluated once per event regardless of how many
  /// queries reference it.
  FilterId RegisterFilter(std::function<bool(const StreamEvent&)> predicate);

  /// Registers a standing query: `options` plus the conjunction of the
  /// given registered filters (order and duplicates are irrelevant — the
  /// set is canonicalized, and a query whose canonical (options, filter
  /// set) matches an existing one shares its physical state). Queries must
  /// be registered before the first ProcessBatch* call.
  QueryId AddQuery(const StreamQuery::Options& options,
                   std::span<const FilterId> filters = {});

  /// Ingests a batch for every registered query in one shared pass.
  /// Timestamps must be non-decreasing, as for StreamQuery. On error the
  /// current chunk is still dispatched to every physical query (so no
  /// query silently misses events another one saw), then the first error
  /// is returned.
  Status ProcessBatch(std::span<const StreamEvent> events);

  /// Multi-core ingest: shared columns (filters, hashes) are computed once
  /// on the calling thread, then each physical query's fan-out runs as one
  /// pool task over the read-only columns — disjoint state, no locks.
  /// Results are byte-identical to ProcessBatch (each physical query sees
  /// the same events in the same order either way).
  Status ProcessBatchParallel(std::span<const StreamEvent> events,
                              ThreadPool& pool);

  /// Drains windows closed so far for one query. Views over shared state
  /// each see every window exactly once.
  std::vector<WindowResult> Poll(QueryId id);

  /// Closes the current window of every physical query (StreamQuery::Flush
  /// semantics); results become visible to each member query's next Poll.
  void Flush();

  /// Serializes one query's dynamic state — byte-identical to
  /// SerializeState() of an equivalent independent StreamQuery at the same
  /// poll state (shared queries are checkpoint-transparent).
  std::vector<uint8_t> SerializeQueryState(QueryId id) const;

  /// Serializes the whole engine as one unit: every physical query's
  /// checkpoint (nested standard envelopes via the sketch registry) plus
  /// each view's result cache and cursor.
  std::vector<uint8_t> SerializeState() const;

  /// Restores a SerializeState image into an engine with the same seed and
  /// the same registration sequence (filters are code and must be
  /// re-registered; mismatched shape is kInvalidArgument, damage is
  /// kCorruption).
  Status RestoreState(std::span<const uint8_t> bytes);

  size_t num_queries() const { return views_.size(); }
  /// Physical (deduplicated) queries actually ingesting — the state-dedup
  /// win is num_queries() / num_physical_queries().
  size_t num_physical_queries() const { return groups_.size(); }
  size_t num_filters() const { return filters_.size(); }
  uint64_t seed() const { return seed_; }

 private:
  /// One physical query shared by every registered query with the same
  /// canonical (options, filter set).
  struct ExecGroup {
    ExecGroup(const StreamQuery::Options& options, uint64_t seed,
              std::vector<FilterId> filter_ids)
        : query(options, seed), filters(std::move(filter_ids)) {}

    StreamQuery query;
    std::vector<FilterId> filters;  // Sorted, unique.
    std::vector<QueryId> members;
    /// Windows drained from `query` but not yet consumed by every member
    /// view; cache_base is the absolute index of cache.front().
    std::deque<WindowResult> cache;
    uint64_t cache_base = 0;
    /// Per-chunk accept column (empty when the group has no filters).
    std::vector<uint8_t> accept;
  };

  /// One registered query's view onto its group's result stream.
  struct View {
    size_t group = 0;
    uint64_t cursor = 0;  // Absolute index of the next unseen window.
  };

  /// Evaluates used filters and the shared hash column for one chunk, and
  /// AND-combines each group's accept column.
  void PrepareChunk(std::span<const StreamEvent> chunk);
  /// Moves freshly closed windows from the group's query into its cache.
  void DrainGroup(ExecGroup& group);
  /// Drops cache entries every member view has consumed.
  void TrimCache(ExecGroup& group);

  uint64_t seed_;
  bool ingest_started_ = false;
  std::vector<std::function<bool(const StreamEvent&)>> filters_;
  std::vector<uint8_t> filter_used_;  // filter_used_[f]: any group wants f.
  std::vector<std::vector<uint8_t>> filter_cols_;  // Per-chunk, per filter.
  std::deque<ExecGroup> groups_;  // deque: stable refs across AddQuery.
  std::vector<View> views_;
  std::unordered_map<std::string, size_t> group_index_;  // canonical key.
  HashedBatch batch_;
};

}  // namespace gems

#endif  // GEMS_ENGINE_MULTI_QUERY_H_
