#include "engine/stream_query.h"

#include <algorithm>

#include "common/check.h"
#include "hash/hash.h"

namespace gems {

StreamQuery::StreamQuery(const Options& options, uint64_t seed)
    : options_(options), seed_(seed) {
  GEMS_CHECK(options.hll_precision >= 4 && options.hll_precision <= 18);
  GEMS_CHECK(options.top_k_capacity >= options.top_k);
}

StreamQuery& StreamQuery::AddFilter(
    std::function<bool(const StreamEvent&)> predicate) {
  filters_.push_back(std::move(predicate));
  return *this;
}

StreamQuery::GroupState& StreamQuery::StateFor(uint64_t group) {
  GroupState& state = groups_[group];
  switch (options_.aggregate) {
    case AggregateKind::kCountDistinct:
      if (!state.distinct.has_value()) {
        state.distinct.emplace(options_.hll_precision, seed_);
      }
      break;
    case AggregateKind::kTopK:
      if (!state.top.has_value()) {
        state.top.emplace(options_.top_k_capacity);
      }
      break;
    case AggregateKind::kQuantiles:
      if (!state.quantiles.has_value()) {
        state.quantiles.emplace(options_.kll_k, Hash64(group, seed_));
      }
      break;
    case AggregateKind::kSum:
      break;
  }
  return state;
}

Status StreamQuery::Process(const StreamEvent& event) {
  if (window_initialized_ && event.timestamp < last_timestamp_) {
    return Status::FailedPrecondition("timestamps must be non-decreasing");
  }
  if (!window_initialized_) {
    window_initialized_ = true;
    current_window_start_ =
        options_.window_size == 0
            ? event.timestamp
            : event.timestamp / options_.window_size * options_.window_size;
  }
  last_timestamp_ = event.timestamp;

  if (options_.window_size > 0) {
    const uint64_t window_start =
        event.timestamp / options_.window_size * options_.window_size;
    if (window_start > current_window_start_) CloseWindow(window_start);
  }

  for (const auto& predicate : filters_) {
    if (!predicate(event)) return Status::Ok();
  }

  GroupState& state = StateFor(event.group);
  switch (options_.aggregate) {
    case AggregateKind::kCountDistinct:
      state.distinct->Update(event.item);
      break;
    case AggregateKind::kTopK:
      state.top->Update(event.item, std::max<int64_t>(1, event.value));
      break;
    case AggregateKind::kQuantiles:
      state.quantiles->Update(static_cast<double>(event.value));
      break;
    case AggregateKind::kSum:
      state.sum += event.value;
      break;
  }
  return Status::Ok();
}

GroupAggregate StreamQuery::Snapshot(uint64_t group,
                                     const GroupState& state) const {
  GroupAggregate aggregate;
  aggregate.group = group;
  switch (options_.aggregate) {
    case AggregateKind::kCountDistinct:
      aggregate.scalar = state.distinct->Count();
      break;
    case AggregateKind::kTopK:
      for (const SpaceSaving::Entry& entry : state.top->TopK(options_.top_k)) {
        aggregate.top_items.emplace_back(entry.item, entry.count);
      }
      break;
    case AggregateKind::kQuantiles:
      for (double q : options_.quantile_points) {
        aggregate.quantiles.push_back(
            state.quantiles->Count() == 0 ? 0.0 : state.quantiles->Quantile(q));
      }
      break;
    case AggregateKind::kSum:
      aggregate.scalar = static_cast<double>(state.sum);
      break;
  }
  return aggregate;
}

void StreamQuery::CloseWindow(uint64_t next_window_start) {
  WindowResult result;
  result.window_start = current_window_start_;
  result.window_end = options_.window_size == 0
                          ? last_timestamp_ + 1
                          : current_window_start_ + options_.window_size;
  for (const auto& [group, state] : groups_) {
    result.groups.push_back(Snapshot(group, state));
  }
  closed_.push_back(std::move(result));
  groups_.clear();
  current_window_start_ = next_window_start;
}

std::vector<WindowResult> StreamQuery::Poll() {
  std::vector<WindowResult> out(closed_.begin(), closed_.end());
  closed_.clear();
  return out;
}

std::vector<WindowResult> StreamQuery::Flush() {
  if (window_initialized_ && !groups_.empty()) {
    CloseWindow(current_window_start_ + std::max<uint64_t>(
                                            options_.window_size, 1));
  }
  return Poll();
}

size_t StreamQuery::NumOpenGroups() const { return groups_.size(); }

}  // namespace gems
