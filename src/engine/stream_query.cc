#include "engine/stream_query.h"

#include <algorithm>
#include <utility>

#include "common/bytes.h"
#include "common/check.h"
#include "core/registry.h"
#include "distributed/aggregation.h"
#include "hash/hash.h"
#include "hash/hashed_batch.h"
#include "hash/xxhash.h"

namespace gems {

namespace {

/// Magic + version for the checkpoint container. The sketches inside are
/// standard wire envelopes; this header frames the engine-level state
/// around them. The whole container carries a trailing XXH64 checksum so
/// damage to engine-level fields (sums, window bounds) is caught just as
/// reliably as damage inside a sketch envelope.
constexpr uint32_t kCheckpointMagic = 0x514D4547;  // "GEMQ" little-endian.
/// Version 2 added the sliding-window fields (the `slide` option in the
/// fingerprint and the kHasSliding presence bit); version 3 added sliding
/// TOP-K and QUANTILES pane rings. Version-1 and -2 images are still
/// restorable into queries without the newer state.
constexpr uint8_t kCheckpointVersion = 3;
constexpr uint64_t kCheckpointChecksumSeed = 0x474D5351;  // "QSMG".

/// Presence bits for the per-group optional sketches.
constexpr uint8_t kHasDistinct = 1;
constexpr uint8_t kHasTop = 2;
constexpr uint8_t kHasQuantiles = 4;
constexpr uint8_t kHasSliding = 8;
constexpr uint8_t kHasSlidingTop = 16;
constexpr uint8_t kHasSlidingQuantiles = 32;

/// Restores one sketch envelope through the registry, downcasting to the
/// concrete type the engine expects for this aggregate. The envelope is
/// parsed in place (a borrowed view of the checkpoint body), so restore
/// never copies sketch bytes into an intermediate buffer.
template <typename S>
Status RestoreSketch(ByteReader* reader, std::optional<S>* out) {
  std::span<const uint8_t> envelope;
  if (Status s = reader->GetBytesView(&envelope); !s.ok()) return s;
  Result<AnySketch> any = SketchRegistry::Global().Deserialize(envelope);
  if (!any.ok()) return any.status();
  const S* sketch = any.value().template As<S>();
  if (sketch == nullptr) {
    return Status::Corruption(
        std::string("checkpoint: unexpected sketch type ") +
        any.value().type_name());
  }
  out->emplace(*sketch);
  return Status::Ok();
}

/// Serializes a pane ring as engine-level state: the ring clock, then each
/// live pane as (pane id, standard wire envelope) — so a registry-aware
/// reader can still inspect every sketch inside a checkpoint. The sliding
/// COUNT DISTINCT state predates this helper and stays a single
/// SlidingHyperLogLog envelope for v2 compatibility.
template <typename S>
void SerializeRing(ByteWriter& w, const PaneRing<S>& ring) {
  w.PutU64(ring.last_timestamp());
  w.PutVarint(ring.NumLivePanes());
  ring.ForEachPane([&w](uint64_t id, const S& summary) {
    w.PutU64(id);
    const std::vector<uint8_t> bytes = summary.Serialize();
    w.PutBytes(bytes.data(), bytes.size());
  });
}

/// Restores a pane ring serialized by SerializeRing into a ring built from
/// `prototype` with the query's pane geometry.
template <typename S>
Status RestoreRing(ByteReader* reader, const S& prototype, uint64_t pane_width,
                   size_t num_panes, std::optional<PaneRing<S>>* out) {
  uint64_t last_timestamp, count;
  if (Status s = reader->GetU64(&last_timestamp); !s.ok()) return s;
  if (Status s = reader->GetVarint(&count); !s.ok()) return s;
  PaneRing<S> ring(prototype, pane_width, num_panes);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t id;
    std::span<const uint8_t> envelope;
    if (Status s = reader->GetU64(&id); !s.ok()) return s;
    if (Status s = reader->GetBytesView(&envelope); !s.ok()) return s;
    Result<S> pane = S::Deserialize(envelope);
    if (!pane.ok()) return pane.status();
    if (Status s = ring.AppendPane(id, std::move(pane).value()); !s.ok()) {
      return s;
    }
  }
  // Restore the ring clock; AppendPane left it at zero.
  if (ring.started()) ring.Advance(last_timestamp);
  out->emplace(std::move(ring));
  return Status::Ok();
}

}  // namespace

namespace engine_detail {

OptionKnobs RelevantKnobs(const StreamQuery::Options& options) {
  OptionKnobs knobs;
  switch (options.aggregate) {
    case AggregateKind::kCountDistinct:
      knobs.hll_precision = static_cast<uint8_t>(options.hll_precision);
      break;
    case AggregateKind::kTopK:
      knobs.top_k_capacity = options.top_k_capacity;
      knobs.top_k = options.top_k;
      break;
    case AggregateKind::kQuantiles:
      knobs.kll_k = options.kll_k;
      break;
    case AggregateKind::kSum:
      break;
  }
  return knobs;
}

void SerializeWindows(ByteWriter& w, const std::deque<WindowResult>& windows) {
  w.PutVarint(windows.size());
  for (const WindowResult& window : windows) {
    w.PutU64(window.window_start);
    w.PutU64(window.window_end);
    w.PutVarint(window.groups.size());
    for (const GroupAggregate& aggregate : window.groups) {
      w.PutU64(aggregate.group);
      w.PutDouble(aggregate.scalar);
      w.PutVarint(aggregate.top_items.size());
      for (const auto& [item, count] : aggregate.top_items) {
        w.PutU64(item);
        w.PutI64(count);
      }
      w.PutVarint(aggregate.quantiles.size());
      for (double q : aggregate.quantiles) w.PutDouble(q);
    }
  }
}

Status DeserializeWindows(ByteReader& r, std::deque<WindowResult>* out) {
  uint64_t num_windows;
  if (Status s = r.GetVarint(&num_windows); !s.ok()) return s;
  std::deque<WindowResult> windows;
  for (uint64_t i = 0; i < num_windows; ++i) {
    WindowResult window;
    uint64_t num_window_groups;
    if (Status s = r.GetU64(&window.window_start); !s.ok()) return s;
    if (Status s = r.GetU64(&window.window_end); !s.ok()) return s;
    if (Status s = r.GetVarint(&num_window_groups); !s.ok()) return s;
    for (uint64_t g = 0; g < num_window_groups; ++g) {
      GroupAggregate aggregate_row;
      uint64_t num_top, num_quantiles;
      if (Status s = r.GetU64(&aggregate_row.group); !s.ok()) return s;
      if (Status s = r.GetDouble(&aggregate_row.scalar); !s.ok()) return s;
      if (Status s = r.GetVarint(&num_top); !s.ok()) return s;
      for (uint64_t t = 0; t < num_top; ++t) {
        uint64_t item;
        int64_t count;
        if (Status s = r.GetU64(&item); !s.ok()) return s;
        if (Status s = r.GetI64(&count); !s.ok()) return s;
        aggregate_row.top_items.emplace_back(item, count);
      }
      if (Status s = r.GetVarint(&num_quantiles); !s.ok()) return s;
      for (uint64_t q = 0; q < num_quantiles; ++q) {
        double value;
        if (Status s = r.GetDouble(&value); !s.ok()) return s;
        aggregate_row.quantiles.push_back(value);
      }
      window.groups.push_back(std::move(aggregate_row));
    }
    windows.push_back(std::move(window));
  }
  *out = std::move(windows);
  return Status::Ok();
}

}  // namespace engine_detail

StreamQuery::StreamQuery(const Options& options, uint64_t seed)
    : options_(options), seed_(seed) {
  GEMS_CHECK(options.hll_precision >= 4 && options.hll_precision <= 18);
  GEMS_CHECK(options.top_k_capacity >= options.top_k);
}

StreamQuery& StreamQuery::AddFilter(
    std::function<bool(const StreamEvent&)> predicate) {
  filters_.push_back(std::move(predicate));
  return *this;
}

StreamQuery& StreamQuery::PublishDistinctTo(
    ConcurrentSummary<HyperLogLog>* live) {
  GEMS_CHECK(options_.aggregate == AggregateKind::kCountDistinct);
  GEMS_CHECK(live != nullptr);
  live_distinct_ = live;
  return *this;
}

StreamQuery::GroupState& StreamQuery::StateFor(uint64_t group) {
  GroupState& state = groups_[group];
  const size_t num_panes =
      options_.slide > 0 ? options_.window_size / options_.slide : 0;
  switch (options_.aggregate) {
    case AggregateKind::kCountDistinct:
      if (options_.slide > 0) {
        if (!state.sliding.has_value()) {
          state.sliding.emplace(options_.hll_precision, options_.slide,
                                num_panes, seed_);
        }
      } else if (!state.distinct.has_value()) {
        state.distinct.emplace(options_.hll_precision, seed_);
      }
      break;
    case AggregateKind::kTopK:
      if (options_.slide > 0) {
        if (!state.sliding_top.has_value()) {
          state.sliding_top.emplace(SpaceSaving(options_.top_k_capacity),
                                    options_.slide, num_panes);
        }
      } else if (!state.top.has_value()) {
        state.top.emplace(options_.top_k_capacity);
      }
      break;
    case AggregateKind::kQuantiles:
      if (options_.slide > 0) {
        if (!state.sliding_quantiles.has_value()) {
          state.sliding_quantiles.emplace(
              KllSketch(options_.kll_k, Hash64(group, seed_)), options_.slide,
              num_panes);
        }
      } else if (!state.quantiles.has_value()) {
        state.quantiles.emplace(options_.kll_k, Hash64(group, seed_));
      }
      break;
    case AggregateKind::kSum:
      break;
  }
  return state;
}

Status StreamQuery::AdvanceWindow(const StreamEvent& event) {
  if (window_initialized_ && event.timestamp < last_timestamp_) {
    return Status::FailedPrecondition("timestamps must be non-decreasing");
  }
  if (options_.slide > 0) {
    // Sliding mode: current_window_start_ tracks the newest slide
    // boundary; a crossing emits the trailing window, and groups persist.
    if (options_.window_size == 0 ||
        options_.window_size % options_.slide != 0) {
      return Status::InvalidArgument(
          "sliding queries need window_size to be a nonzero multiple of "
          "slide");
    }
    if (options_.aggregate == AggregateKind::kSum) {
      return Status::Unimplemented(
          "sliding windows need a sketch aggregate (COUNT DISTINCT, TOP-K, "
          "or QUANTILES)");
    }
    const uint64_t boundary =
        event.timestamp / options_.slide * options_.slide;
    if (!window_initialized_) {
      window_initialized_ = true;
      current_window_start_ = boundary;
    } else if (boundary > current_window_start_) {
      EmitSlidingWindow(boundary);
    }
    last_timestamp_ = event.timestamp;
    return Status::Ok();
  }
  if (!window_initialized_) {
    window_initialized_ = true;
    current_window_start_ =
        options_.window_size == 0
            ? event.timestamp
            : event.timestamp / options_.window_size * options_.window_size;
  }
  last_timestamp_ = event.timestamp;

  if (options_.window_size > 0) {
    const uint64_t window_start =
        event.timestamp / options_.window_size * options_.window_size;
    if (window_start > current_window_start_) CloseWindow(window_start);
  }
  return Status::Ok();
}

bool StreamQuery::PassesFilters(const StreamEvent& event) const {
  for (const auto& predicate : filters_) {
    if (!predicate(event)) return false;
  }
  return true;
}

void StreamQuery::ApplyEvent(const StreamEvent& event, const uint64_t* hash) {
  GroupState& state = StateFor(event.group);
  switch (options_.aggregate) {
    case AggregateKind::kCountDistinct:
      if (options_.slide > 0) {
        state.sliding->UpdateAt(event.timestamp, event.item);
      } else if (hash != nullptr) {
        state.distinct->UpdateHash(*hash);
      } else {
        state.distinct->Update(event.item);
      }
      // The live global buffers raw items (it re-hashes on its own batched
      // drain), so it takes the item, not the precomputed word.
      if (live_distinct_ != nullptr) live_distinct_->Update(event.item);
      break;
    case AggregateKind::kTopK:
      if (options_.slide > 0) {
        state.sliding_top->Update(event.timestamp, event.item,
                                  std::max<int64_t>(1, event.value));
      } else {
        state.top->Update(event.item, std::max<int64_t>(1, event.value));
      }
      break;
    case AggregateKind::kQuantiles:
      if (options_.slide > 0) {
        state.sliding_quantiles->Update(event.timestamp,
                                        static_cast<double>(event.value));
      } else {
        state.quantiles->Update(static_cast<double>(event.value));
      }
      break;
    case AggregateKind::kSum:
      state.sum += event.value;
      break;
  }
}

Status StreamQuery::Process(const StreamEvent& event) {
  if (Status s = AdvanceWindow(event); !s.ok()) return s;
  if (!PassesFilters(event)) return Status::Ok();
  ApplyEvent(event, nullptr);
  return Status::Ok();
}

Status StreamQuery::ProcessBatch(std::span<const StreamEvent> events) {
  // Sliding mode routes per event (each update carries its timestamp into
  // the group's pane ring, so there is no pane-oblivious hash-once path).
  if (options_.aggregate != AggregateKind::kCountDistinct ||
      options_.slide > 0) {
    for (const StreamEvent& event : events) {
      if (Status s = Process(event); !s.ok()) return s;
    }
    return Status::Ok();
  }
  // Hash-once pipeline: every group's HLL is built with the query seed, so
  // one Hash64 per event serves whichever group the event lands in. The
  // chunk's hash words are computed in a tight hoisted loop up front; the
  // per-event pass then only routes (window, filters, group lookup) and
  // applies the precomputed hash.
  uint64_t items[256];
  uint64_t hashes[256];
  while (!events.empty()) {
    const size_t n = std::min(events.size(), std::size(items));
    for (size_t i = 0; i < n; ++i) items[i] = events[i].item;
    HashBatch(std::span<const uint64_t>(items, n), seed_, hashes);
    for (size_t i = 0; i < n; ++i) {
      const StreamEvent& event = events[i];
      if (Status s = AdvanceWindow(event); !s.ok()) return s;
      if (!PassesFilters(event)) continue;
      ApplyEvent(event, &hashes[i]);
    }
    events = events.subspan(n);
  }
  return Status::Ok();
}

Status StreamQuery::ProcessBatchPrehashed(std::span<const StreamEvent> events,
                                          std::span<const uint64_t> hashes,
                                          std::span<const uint8_t> accept) {
  GEMS_CHECK(hashes.empty() || hashes.size() == events.size());
  GEMS_CHECK(accept.empty() || accept.size() == events.size());
  const bool use_hashes = !hashes.empty() &&
                          options_.aggregate == AggregateKind::kCountDistinct &&
                          options_.slide == 0;
  for (size_t i = 0; i < events.size(); ++i) {
    const StreamEvent& event = events[i];
    if (Status s = AdvanceWindow(event); !s.ok()) return s;
    if (!accept.empty() && accept[i] == 0) continue;
    if (!PassesFilters(event)) continue;
    ApplyEvent(event, use_hashes ? &hashes[i] : nullptr);
  }
  return Status::Ok();
}

Status StreamQuery::ProcessBatchParallel(std::span<const StreamEvent> events,
                                         ThreadPool& pool) {
  const size_t num_workers = pool.num_threads();
  if (num_workers <= 1 || options_.slide > 0) return ProcessBatch(events);

  // One routed update: the owning worker applies item/value to the group's
  // state. Groups are partitioned across workers by hash, so two workers
  // never touch the same GroupState, and one group's updates stay in
  // stream order — state ends up byte-identical to the sequential path.
  // Workers re-find the group at apply time (one flat-table probe) because
  // routing keeps inserting groups, and an insert may rehash the table.
  struct Routed {
    uint64_t group;
    uint64_t item;
    int64_t value;
  };
  std::vector<std::vector<Routed>> buckets(num_workers);
  const InvariantMod worker_mod(num_workers);

  auto apply_bucket = [this](std::vector<Routed>& bucket) {
    switch (options_.aggregate) {
      case AggregateKind::kCountDistinct: {
        // Hash-once per worker: each worker hashes its own slice in the
        // hoisted loop, then feeds precomputed words to its groups' HLLs
        // (all built with the query seed).
        uint64_t items[256];
        uint64_t hashes[256];
        for (size_t off = 0; off < bucket.size(); off += std::size(items)) {
          const size_t n = std::min(bucket.size() - off, std::size(items));
          for (size_t i = 0; i < n; ++i) items[i] = bucket[off + i].item;
          HashBatch(std::span<const uint64_t>(items, n), seed_, hashes);
          for (size_t i = 0; i < n; ++i) {
            groups_.Find(bucket[off + i].group)->distinct->UpdateHash(
                hashes[i]);
          }
        }
        break;
      }
      case AggregateKind::kTopK:
        for (const Routed& r : bucket) {
          groups_.Find(r.group)->top->Update(r.item,
                                             std::max<int64_t>(1, r.value));
        }
        break;
      case AggregateKind::kQuantiles:
        for (const Routed& r : bucket) {
          groups_.Find(r.group)->quantiles->Update(
              static_cast<double>(r.value));
        }
        break;
      case AggregateKind::kSum:
        for (const Routed& r : bucket) groups_.Find(r.group)->sum += r.value;
        break;
    }
  };

  auto flush = [&] {
    std::vector<std::function<void()>> tasks;
    for (std::vector<Routed>& bucket : buckets) {
      if (bucket.empty()) continue;
      tasks.push_back([&apply_bucket, &bucket] { apply_bucket(bucket); });
    }
    pool.RunAll(std::move(tasks));
    for (std::vector<Routed>& bucket : buckets) bucket.clear();
  };

  for (const StreamEvent& event : events) {
    // Pending routed updates must land before their window closes under
    // them: CloseWindow snapshots and clears the group table out from
    // under the group ids the buckets hold.
    if (options_.window_size > 0 && window_initialized_ &&
        event.timestamp >= current_window_start_ + options_.window_size) {
      flush();
    }
    if (Status s = AdvanceWindow(event); !s.ok()) {
      flush();  // Events routed before the error still apply, as in Process.
      return s;
    }
    if (!PassesFilters(event)) continue;
    StateFor(event.group);  // Materialize the group's sketch for apply.
    buckets[ShardOf(event.group, worker_mod)].push_back(
        {event.group, event.item, event.value});
    // Mirrored on the routing (calling) thread, not the pool workers, so
    // the live global sees one writer slot per query regardless of pool
    // size; its own buffering keeps this off the routing hot path.
    if (live_distinct_ != nullptr) live_distinct_->Update(event.item);
  }
  flush();
  return Status::Ok();
}

GroupAggregate StreamQuery::Snapshot(uint64_t group,
                                     const GroupState& state) const {
  GroupAggregate aggregate;
  aggregate.group = group;
  switch (options_.aggregate) {
    case AggregateKind::kCountDistinct:
      aggregate.scalar = state.distinct->Estimate();
      break;
    case AggregateKind::kTopK:
      for (const SpaceSaving::Entry& entry : state.top->TopK(options_.top_k)) {
        aggregate.top_items.emplace_back(entry.item, entry.count);
      }
      break;
    case AggregateKind::kQuantiles:
      if (state.quantiles->Count() == 0) {
        aggregate.quantiles.assign(options_.quantile_points.size(), 0.0);
      } else {
        aggregate.quantiles =
            state.quantiles->Quantiles(options_.quantile_points);
      }
      break;
    case AggregateKind::kSum:
      aggregate.scalar = static_cast<double>(state.sum);
      break;
  }
  return aggregate;
}

std::vector<std::pair<uint64_t, StreamQuery::GroupState*>>
StreamQuery::SortedGroups() const {
  std::vector<std::pair<uint64_t, GroupState*>> out;
  out.reserve(groups_.size());
  // The flat table iterates in hash order; every ordered consumer (window
  // snapshots, checkpoints) funnels through this sort, which is what keeps
  // results and SerializeState independent of group insertion order.
  const_cast<FlatMap64<GroupState>&>(groups_).ForEach(
      [&out](uint64_t group, GroupState& state) {
        out.emplace_back(group, &state);
      });
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void StreamQuery::CloseWindow(uint64_t next_window_start) {
  WindowResult result;
  result.window_start = current_window_start_;
  result.window_end = options_.window_size == 0
                          ? last_timestamp_ + 1
                          : current_window_start_ + options_.window_size;
  for (const auto& [group, state] : SortedGroups()) {
    result.groups.push_back(Snapshot(group, *state));
  }
  closed_.push_back(std::move(result));
  groups_.Clear();
  current_window_start_ = next_window_start;
  // Window boundaries are the natural staleness bound for the live view:
  // fold this thread's buffered residual so a reader is at most one open
  // window behind the query.
  if (live_distinct_ != nullptr) live_distinct_->FlushLocal();
}

void StreamQuery::EmitSlidingWindow(uint64_t boundary) {
  WindowResult result;
  result.window_start = boundary >= options_.window_size
                            ? boundary - options_.window_size
                            : 0;
  result.window_end = boundary;
  for (const auto& [group, state] : SortedGroups()) {
    // Advancing to the last instant before the boundary expires panes
    // older than the window without opening the boundary's own pane; the
    // memoized WindowSummary() then re-merges only if this group mutated
    // since the last emission.
    GroupAggregate aggregate;
    aggregate.group = group;
    switch (options_.aggregate) {
      case AggregateKind::kCountDistinct:
        state->sliding->Advance(boundary - 1);
        aggregate.scalar = state->sliding->WindowSummary().Estimate();
        break;
      case AggregateKind::kTopK: {
        state->sliding_top->Advance(boundary - 1);
        const SpaceSaving& window = state->sliding_top->WindowSummary();
        for (const SpaceSaving::Entry& entry : window.TopK(options_.top_k)) {
          aggregate.top_items.emplace_back(entry.item, entry.count);
        }
        break;
      }
      case AggregateKind::kQuantiles: {
        state->sliding_quantiles->Advance(boundary - 1);
        const KllSketch& window = state->sliding_quantiles->WindowSummary();
        if (window.Count() == 0) {
          aggregate.quantiles.assign(options_.quantile_points.size(), 0.0);
        } else {
          aggregate.quantiles = window.Quantiles(options_.quantile_points);
        }
        break;
      }
      case AggregateKind::kSum:
        break;  // Unreachable: AdvanceWindow rejects sliding kSum.
    }
    result.groups.push_back(std::move(aggregate));
  }
  closed_.push_back(std::move(result));
  current_window_start_ = boundary;
  // Same staleness bound as tumbling closes for the live view.
  if (live_distinct_ != nullptr) live_distinct_->FlushLocal();
}

std::vector<WindowResult> StreamQuery::Poll() {
  std::vector<WindowResult> out(closed_.begin(), closed_.end());
  closed_.clear();
  return out;
}

std::vector<WindowResult> StreamQuery::Flush() {
  if (window_initialized_ && !groups_.empty()) {
    if (options_.slide > 0) {
      // Emit the window ending at the next slide boundary (it covers
      // every event seen); the group table persists, since a sliding
      // query's window conceptually keeps moving.
      EmitSlidingWindow((last_timestamp_ / options_.slide + 1) *
                        options_.slide);
    } else {
      CloseWindow(current_window_start_ + std::max<uint64_t>(
                                              options_.window_size, 1));
    }
  }
  return Poll();
}

size_t StreamQuery::NumOpenGroups() const { return groups_.size(); }

std::vector<uint8_t> StreamQuery::SerializeState() const {
  ByteWriter w;
  w.PutU32(kCheckpointMagic);
  w.PutU8(kCheckpointVersion);
  // Option fingerprint, so a checkpoint cannot be restored into a query
  // with an incompatible shape. Knobs the aggregate does not read are
  // written as zero (engine_detail::RelevantKnobs), so queries that
  // differ only in unused knobs produce byte-identical checkpoints.
  const engine_detail::OptionKnobs knobs = engine_detail::RelevantKnobs(options_);
  w.PutU8(static_cast<uint8_t>(options_.aggregate));
  w.PutU64(options_.window_size);
  w.PutU64(options_.slide);
  w.PutU8(knobs.hll_precision);
  w.PutVarint(knobs.top_k_capacity);
  w.PutVarint(knobs.top_k);
  w.PutU32(knobs.kll_k);
  w.PutU64(seed_);
  // Window bookkeeping.
  w.PutU8(window_initialized_ ? 1 : 0);
  w.PutU64(current_window_start_);
  w.PutU64(last_timestamp_);
  // Open groups, sorted by group id (the flat table's own order is
  // insertion-dependent); each sketch is a standard wire envelope, so any
  // registry-aware reader can inspect a checkpoint's sketches.
  w.PutVarint(groups_.size());
  for (const auto& [group, state] : SortedGroups()) {
    w.PutU64(group);
    w.PutI64(state->sum);
    uint8_t present = 0;
    if (state->distinct.has_value()) present |= kHasDistinct;
    if (state->top.has_value()) present |= kHasTop;
    if (state->quantiles.has_value()) present |= kHasQuantiles;
    if (state->sliding.has_value()) present |= kHasSliding;
    if (state->sliding_top.has_value()) present |= kHasSlidingTop;
    if (state->sliding_quantiles.has_value()) present |= kHasSlidingQuantiles;
    w.PutU8(present);
    if (state->distinct.has_value()) {
      const std::vector<uint8_t> bytes = state->distinct->Serialize();
      w.PutBytes(bytes.data(), bytes.size());
    }
    if (state->sliding.has_value()) {
      const std::vector<uint8_t> bytes = state->sliding->Serialize();
      w.PutBytes(bytes.data(), bytes.size());
    }
    if (state->sliding_top.has_value()) {
      SerializeRing(w, *state->sliding_top);
    }
    if (state->sliding_quantiles.has_value()) {
      SerializeRing(w, *state->sliding_quantiles);
    }
    if (state->top.has_value()) {
      const std::vector<uint8_t> bytes = state->top->Serialize();
      w.PutBytes(bytes.data(), bytes.size());
    }
    if (state->quantiles.has_value()) {
      const std::vector<uint8_t> bytes = state->quantiles->Serialize();
      w.PutBytes(bytes.data(), bytes.size());
    }
  }
  // Closed-but-unpolled windows (already materialized results).
  engine_detail::SerializeWindows(w, closed_);
  std::vector<uint8_t> body = std::move(w).TakeBytes();
  const uint64_t checksum =
      XxHash64(body.data(), body.size(), kCheckpointChecksumSeed);
  for (int shift = 0; shift < 64; shift += 8) {
    body.push_back(static_cast<uint8_t>(checksum >> shift));
  }
  return body;
}

Status StreamQuery::RestoreState(std::span<const uint8_t> bytes) {
  RegisterBuiltinSketches();
  if (bytes.size() < 8) {
    return Status::Corruption("stream query checkpoint: too short");
  }
  const size_t body_size = bytes.size() - 8;
  uint64_t stored = 0;
  for (int i = 0; i < 8; ++i) {
    stored |= static_cast<uint64_t>(bytes[body_size + i]) << (8 * i);
  }
  if (XxHash64(bytes.data(), body_size, kCheckpointChecksumSeed) != stored) {
    return Status::Corruption("stream query checkpoint: checksum mismatch");
  }
  ByteReader r(bytes.data(), body_size);
  uint32_t magic;
  uint8_t version;
  if (Status s = r.GetU32(&magic); !s.ok()) return s;
  if (magic != kCheckpointMagic) {
    return Status::Corruption("stream query checkpoint: bad magic");
  }
  if (Status s = r.GetU8(&version); !s.ok()) return s;
  if (version < 1 || version > kCheckpointVersion) {
    return Status::Corruption(
        "stream query checkpoint: unsupported version");
  }
  uint8_t aggregate, hll_precision;
  uint64_t window_size, slide = 0, top_capacity, top_k, seed;
  uint32_t kll_k;
  if (Status s = r.GetU8(&aggregate); !s.ok()) return s;
  if (Status s = r.GetU64(&window_size); !s.ok()) return s;
  if (version >= 2) {
    if (Status s = r.GetU64(&slide); !s.ok()) return s;
  }
  if (Status s = r.GetU8(&hll_precision); !s.ok()) return s;
  if (Status s = r.GetVarint(&top_capacity); !s.ok()) return s;
  if (Status s = r.GetVarint(&top_k); !s.ok()) return s;
  if (Status s = r.GetU32(&kll_k); !s.ok()) return s;
  if (Status s = r.GetU64(&seed); !s.ok()) return s;
  // Version 3 images carry aggregate-relevant knobs only (unused fields
  // zeroed); version 1/2 images were written with the raw option values.
  const engine_detail::OptionKnobs expected =
      version >= 3
          ? engine_detail::RelevantKnobs(options_)
          : engine_detail::OptionKnobs{
                static_cast<uint8_t>(options_.hll_precision),
                options_.top_k_capacity, options_.top_k, options_.kll_k};
  if (aggregate != static_cast<uint8_t>(options_.aggregate) ||
      window_size != options_.window_size || slide != options_.slide ||
      hll_precision != expected.hll_precision ||
      top_capacity != expected.top_k_capacity || top_k != expected.top_k ||
      kll_k != expected.kll_k || seed != seed_) {
    return Status::InvalidArgument(
        "stream query checkpoint was taken with different options or seed");
  }

  uint8_t initialized;
  uint64_t window_start, last_timestamp, num_groups;
  if (Status s = r.GetU8(&initialized); !s.ok()) return s;
  if (initialized > 1) {
    return Status::Corruption("stream query checkpoint: bad bool");
  }
  if (Status s = r.GetU64(&window_start); !s.ok()) return s;
  if (Status s = r.GetU64(&last_timestamp); !s.ok()) return s;
  if (Status s = r.GetVarint(&num_groups); !s.ok()) return s;

  const size_t ring_panes =
      options_.slide > 0 ? options_.window_size / options_.slide : 0;
  FlatMap64<GroupState> groups;
  for (uint64_t i = 0; i < num_groups; ++i) {
    uint64_t group;
    uint8_t present;
    GroupState state;
    if (Status s = r.GetU64(&group); !s.ok()) return s;
    if (Status s = r.GetI64(&state.sum); !s.ok()) return s;
    if (Status s = r.GetU8(&present); !s.ok()) return s;
    uint8_t known = kHasDistinct | kHasTop | kHasQuantiles;
    if (version >= 2) known |= kHasSliding;
    if (version >= 3) known |= kHasSlidingTop | kHasSlidingQuantiles;
    if ((present & ~known) != 0) {
      return Status::Corruption(
          "stream query checkpoint: unknown sketch presence bits");
    }
    // Pane rings can only be rebuilt when the query's own options define
    // their geometry; a ring bit without a matching sliding aggregate is a
    // forged or damaged image (the fingerprint above already matched).
    if ((present & kHasSlidingTop) != 0 &&
        (options_.slide == 0 || options_.aggregate != AggregateKind::kTopK)) {
      return Status::Corruption(
          "stream query checkpoint: sliding TOP-K state in a non-sliding "
          "query");
    }
    if ((present & kHasSlidingQuantiles) != 0 &&
        (options_.slide == 0 ||
         options_.aggregate != AggregateKind::kQuantiles)) {
      return Status::Corruption(
          "stream query checkpoint: sliding QUANTILES state in a "
          "non-sliding query");
    }
    if (present & kHasDistinct) {
      if (Status s = RestoreSketch(&r, &state.distinct); !s.ok()) return s;
    }
    if (present & kHasSliding) {
      if (Status s = RestoreSketch(&r, &state.sliding); !s.ok()) return s;
    }
    if (present & kHasSlidingTop) {
      if (Status s = RestoreRing(&r, SpaceSaving(options_.top_k_capacity),
                                 options_.slide, ring_panes,
                                 &state.sliding_top);
          !s.ok()) {
        return s;
      }
    }
    if (present & kHasSlidingQuantiles) {
      if (Status s = RestoreRing(
              &r, KllSketch(options_.kll_k, Hash64(group, seed_)),
              options_.slide, ring_panes, &state.sliding_quantiles);
          !s.ok()) {
        return s;
      }
    }
    if (present & kHasTop) {
      if (Status s = RestoreSketch(&r, &state.top); !s.ok()) return s;
    }
    if (present & kHasQuantiles) {
      if (Status s = RestoreSketch(&r, &state.quantiles); !s.ok()) return s;
    }
    groups[group] = std::move(state);
  }

  std::deque<WindowResult> closed;
  if (Status s = engine_detail::DeserializeWindows(r, &closed); !s.ok()) {
    return s;
  }
  if (!r.AtEnd()) {
    return Status::Corruption("stream query checkpoint: trailing bytes");
  }

  window_initialized_ = initialized == 1;
  current_window_start_ = window_start;
  last_timestamp_ = last_timestamp;
  groups_ = std::move(groups);
  closed_ = std::move(closed);
  return Status::Ok();
}

}  // namespace gems
