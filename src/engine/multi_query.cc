#include "engine/multi_query.h"

#include <algorithm>
#include <utility>

#include "common/bytes.h"
#include "common/check.h"
#include "hash/xxhash.h"

namespace gems {

namespace {

/// Engine-unit checkpoint framing; the per-query payloads inside are
/// ordinary StreamQuery checkpoints ("GEMQ" images), themselves built from
/// standard registry envelopes.
constexpr uint32_t kEngineMagic = 0x4D4D4547;  // "GEMM" little-endian.
constexpr uint8_t kEngineVersion = 1;
constexpr uint64_t kEngineChecksumSeed = 0x4D4D5347;  // "GSMM".

/// Canonical identity of a physical query: every option that shapes state
/// or results for this aggregate — knobs the aggregate does not read are
/// canonicalized away (engine_detail::RelevantKnobs), so e.g. two SUM
/// queries that differ only in kll_k share one physical query. The key
/// adds quantile_points for QUANTILES (the StreamQuery checkpoint
/// fingerprint omits them because they only affect emitted results — two
/// queries reading different quantile points from the same KLL must NOT
/// share result views), plus the canonical filter set. Byte-equality of
/// this key is the state-dedup rule.
std::string CanonicalKey(const StreamQuery::Options& options,
                         const std::vector<size_t>& filters) {
  const engine_detail::OptionKnobs knobs =
      engine_detail::RelevantKnobs(options);
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(options.aggregate));
  w.PutU64(options.window_size);
  w.PutU64(options.slide);
  w.PutU8(knobs.hll_precision);
  w.PutVarint(knobs.top_k_capacity);
  w.PutVarint(knobs.top_k);
  w.PutU32(knobs.kll_k);
  if (options.aggregate == AggregateKind::kQuantiles) {
    w.PutVarint(options.quantile_points.size());
    for (double q : options.quantile_points) w.PutDouble(q);
  }
  w.PutVarint(filters.size());
  for (size_t f : filters) w.PutVarint(f);
  const std::vector<uint8_t> bytes = std::move(w).TakeBytes();
  return std::string(bytes.begin(), bytes.end());
}

}  // namespace

MultiQueryEngine::MultiQueryEngine(uint64_t seed) : seed_(seed) {}

MultiQueryEngine::FilterId MultiQueryEngine::RegisterFilter(
    std::function<bool(const StreamEvent&)> predicate) {
  GEMS_CHECK(predicate != nullptr);
  filters_.push_back(std::move(predicate));
  filter_used_.push_back(0);
  filter_cols_.emplace_back();
  return filters_.size() - 1;
}

MultiQueryEngine::QueryId MultiQueryEngine::AddQuery(
    const StreamQuery::Options& options, std::span<const FilterId> filters) {
  GEMS_CHECK(!ingest_started_);
  std::vector<FilterId> canonical(filters.begin(), filters.end());
  std::sort(canonical.begin(), canonical.end());
  canonical.erase(std::unique(canonical.begin(), canonical.end()),
                  canonical.end());
  for (FilterId f : canonical) GEMS_CHECK(f < filters_.size());

  const std::string key = CanonicalKey(options, canonical);
  auto [it, inserted] = group_index_.try_emplace(key, groups_.size());
  if (inserted) {
    for (FilterId f : canonical) filter_used_[f] = 1;
    groups_.emplace_back(options, seed_, std::move(canonical));
  }
  ExecGroup& group = groups_[it->second];
  const QueryId id = views_.size();
  group.members.push_back(id);
  views_.push_back(View{it->second, 0});
  return id;
}

void MultiQueryEngine::PrepareChunk(std::span<const StreamEvent> chunk) {
  // One gather + one hash loop for the whole chunk; every COUNT DISTINCT
  // query consumes the same words (all were built with seed_).
  batch_.ResetProjected(
      chunk, [](const StreamEvent& event) { return event.item; }, seed_);
  // One evaluation per (event, distinct predicate) — queries referencing
  // the same FilterId share the column.
  for (size_t f = 0; f < filters_.size(); ++f) {
    if (!filter_used_[f]) continue;
    std::vector<uint8_t>& col = filter_cols_[f];
    col.resize(chunk.size());
    const auto& predicate = filters_[f];
    for (size_t i = 0; i < chunk.size(); ++i) {
      col[i] = predicate(chunk[i]) ? 1 : 0;
    }
  }
  // Each group's accept column is the AND of its filter columns; byte
  // AND-loops, no per-event std::function dispatch.
  for (ExecGroup& group : groups_) {
    if (group.filters.empty()) {
      group.accept.clear();
      continue;
    }
    const std::vector<uint8_t>& first = filter_cols_[group.filters[0]];
    group.accept.assign(first.begin(), first.end());
    for (size_t k = 1; k < group.filters.size(); ++k) {
      const std::vector<uint8_t>& col = filter_cols_[group.filters[k]];
      for (size_t i = 0; i < group.accept.size(); ++i) {
        group.accept[i] &= col[i];
      }
    }
  }
}

Status MultiQueryEngine::ProcessBatch(std::span<const StreamEvent> events) {
  ingest_started_ = true;
  constexpr size_t kChunk = 32768;
  while (!events.empty()) {
    const std::span<const StreamEvent> chunk =
        events.first(std::min(events.size(), kChunk));
    PrepareChunk(chunk);
    // Dispatch the whole chunk to every physical query even on error, so
    // no query silently misses events another one ingested; then report
    // the first failure.
    Status first = Status::Ok();
    for (ExecGroup& group : groups_) {
      Status s = group.query.ProcessBatchPrehashed(chunk, batch_.hashes(),
                                                   group.accept);
      if (!s.ok() && first.ok()) first = std::move(s);
    }
    if (!first.ok()) return first;
    events = events.subspan(chunk.size());
  }
  return Status::Ok();
}

Status MultiQueryEngine::ProcessBatchParallel(
    std::span<const StreamEvent> events, ThreadPool& pool) {
  if (pool.num_threads() <= 1 || groups_.size() <= 1) {
    return ProcessBatch(events);
  }
  ingest_started_ = true;
  constexpr size_t kChunk = 32768;
  std::vector<Status> statuses(groups_.size(), Status::Ok());
  while (!events.empty()) {
    const std::span<const StreamEvent> chunk =
        events.first(std::min(events.size(), kChunk));
    // Shared columns are computed once on this thread; workers only read
    // them. Each task owns one physical query's entire state, so the
    // fan-out takes no locks and each query's state is byte-identical to
    // the sequential dispatch order.
    PrepareChunk(chunk);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(groups_.size());
    for (size_t i = 0; i < groups_.size(); ++i) {
      ExecGroup& group = groups_[i];
      Status& status = statuses[i];
      const std::span<const uint64_t> hashes = batch_.hashes();
      tasks.push_back([&group, &status, chunk, hashes] {
        if (!status.ok()) return;  // Earlier chunk already failed here.
        status = group.query.ProcessBatchPrehashed(chunk, hashes,
                                                   group.accept);
      });
    }
    pool.RunAll(std::move(tasks));
    for (const Status& status : statuses) {
      if (!status.ok()) return status;
    }
    events = events.subspan(chunk.size());
  }
  return Status::Ok();
}

void MultiQueryEngine::DrainGroup(ExecGroup& group) {
  for (WindowResult& window : group.query.Poll()) {
    group.cache.push_back(std::move(window));
  }
}

void MultiQueryEngine::TrimCache(ExecGroup& group) {
  uint64_t min_cursor = ~uint64_t{0};
  for (QueryId member : group.members) {
    min_cursor = std::min(min_cursor, views_[member].cursor);
  }
  while (group.cache_base < min_cursor && !group.cache.empty()) {
    group.cache.pop_front();
    ++group.cache_base;
  }
}

std::vector<WindowResult> MultiQueryEngine::Poll(QueryId id) {
  GEMS_CHECK(id < views_.size());
  View& view = views_[id];
  ExecGroup& group = groups_[view.group];
  DrainGroup(group);
  std::vector<WindowResult> out;
  const uint64_t end = group.cache_base + group.cache.size();
  out.reserve(end - view.cursor);
  for (uint64_t i = view.cursor; i < end; ++i) {
    out.push_back(group.cache[i - group.cache_base]);
  }
  view.cursor = end;
  TrimCache(group);
  return out;
}

void MultiQueryEngine::Flush() {
  for (ExecGroup& group : groups_) {
    for (WindowResult& window : group.query.Flush()) {
      group.cache.push_back(std::move(window));
    }
  }
}

std::vector<uint8_t> MultiQueryEngine::SerializeQueryState(QueryId id) const {
  GEMS_CHECK(id < views_.size());
  return groups_[views_[id].group].query.SerializeState();
}

std::vector<uint8_t> MultiQueryEngine::SerializeState() const {
  ByteWriter w;
  w.PutU32(kEngineMagic);
  w.PutU8(kEngineVersion);
  w.PutU64(seed_);
  // Registration shape, so a checkpoint cannot be restored into an engine
  // wired differently (predicates themselves are code, not state).
  w.PutVarint(filters_.size());
  w.PutVarint(groups_.size());
  for (const ExecGroup& group : groups_) {
    w.PutVarint(group.filters.size());
    for (FilterId f : group.filters) w.PutVarint(f);
    w.PutVarint(group.members.size());
    for (QueryId member : group.members) w.PutVarint(member);
    const std::vector<uint8_t> nested = group.query.SerializeState();
    w.PutBytes(nested.data(), nested.size());
    w.PutU64(group.cache_base);
    engine_detail::SerializeWindows(w, group.cache);
  }
  w.PutVarint(views_.size());
  for (const View& view : views_) {
    w.PutVarint(view.group);
    w.PutU64(view.cursor);
  }
  std::vector<uint8_t> body = std::move(w).TakeBytes();
  const uint64_t checksum =
      XxHash64(body.data(), body.size(), kEngineChecksumSeed);
  for (int shift = 0; shift < 64; shift += 8) {
    body.push_back(static_cast<uint8_t>(checksum >> shift));
  }
  return body;
}

Status MultiQueryEngine::RestoreState(std::span<const uint8_t> bytes) {
  if (bytes.size() < 8) {
    return Status::Corruption("multi-query checkpoint: too short");
  }
  const size_t body_size = bytes.size() - 8;
  uint64_t stored = 0;
  for (int i = 0; i < 8; ++i) {
    stored |= static_cast<uint64_t>(bytes[body_size + i]) << (8 * i);
  }
  if (XxHash64(bytes.data(), body_size, kEngineChecksumSeed) != stored) {
    return Status::Corruption("multi-query checkpoint: checksum mismatch");
  }
  ByteReader r(bytes.data(), body_size);
  uint32_t magic;
  uint8_t version;
  uint64_t seed, num_filters, num_groups;
  if (Status s = r.GetU32(&magic); !s.ok()) return s;
  if (magic != kEngineMagic) {
    return Status::Corruption("multi-query checkpoint: bad magic");
  }
  if (Status s = r.GetU8(&version); !s.ok()) return s;
  if (version != kEngineVersion) {
    return Status::Corruption("multi-query checkpoint: unsupported version");
  }
  if (Status s = r.GetU64(&seed); !s.ok()) return s;
  if (Status s = r.GetVarint(&num_filters); !s.ok()) return s;
  if (Status s = r.GetVarint(&num_groups); !s.ok()) return s;
  if (seed != seed_ || num_filters != filters_.size() ||
      num_groups != groups_.size()) {
    return Status::InvalidArgument(
        "multi-query checkpoint was taken with a different registration");
  }

  // Parse and validate everything into scratch state first; the engine is
  // only mutated once the whole image checks out.
  struct RestoredGroup {
    std::vector<uint8_t> nested;
    uint64_t cache_base = 0;
    std::deque<WindowResult> cache;
  };
  std::vector<RestoredGroup> restored_groups(groups_.size());
  for (size_t g = 0; g < groups_.size(); ++g) {
    const ExecGroup& group = groups_[g];
    uint64_t group_filters, group_members;
    if (Status s = r.GetVarint(&group_filters); !s.ok()) return s;
    if (group_filters != group.filters.size()) {
      return Status::InvalidArgument(
          "multi-query checkpoint: filter set mismatch");
    }
    for (size_t k = 0; k < group.filters.size(); ++k) {
      uint64_t f;
      if (Status s = r.GetVarint(&f); !s.ok()) return s;
      if (f != group.filters[k]) {
        return Status::InvalidArgument(
            "multi-query checkpoint: filter set mismatch");
      }
    }
    if (Status s = r.GetVarint(&group_members); !s.ok()) return s;
    if (group_members != group.members.size()) {
      return Status::InvalidArgument(
          "multi-query checkpoint: query membership mismatch");
    }
    for (size_t k = 0; k < group.members.size(); ++k) {
      uint64_t member;
      if (Status s = r.GetVarint(&member); !s.ok()) return s;
      if (member != group.members[k]) {
        return Status::InvalidArgument(
            "multi-query checkpoint: query membership mismatch");
      }
    }
    std::span<const uint8_t> nested;
    if (Status s = r.GetBytesView(&nested); !s.ok()) return s;
    restored_groups[g].nested.assign(nested.begin(), nested.end());
    if (Status s = r.GetU64(&restored_groups[g].cache_base); !s.ok()) return s;
    if (Status s =
            engine_detail::DeserializeWindows(r, &restored_groups[g].cache);
        !s.ok()) {
      return s;
    }
  }
  uint64_t num_views;
  if (Status s = r.GetVarint(&num_views); !s.ok()) return s;
  if (num_views != views_.size()) {
    return Status::InvalidArgument(
        "multi-query checkpoint: query count mismatch");
  }
  std::vector<View> restored_views(views_.size());
  for (size_t q = 0; q < views_.size(); ++q) {
    uint64_t group;
    if (Status s = r.GetVarint(&group); !s.ok()) return s;
    if (group != views_[q].group) {
      return Status::InvalidArgument(
          "multi-query checkpoint: query-to-group mapping mismatch");
    }
    restored_views[q].group = views_[q].group;
    if (Status s = r.GetU64(&restored_views[q].cursor); !s.ok()) return s;
  }
  if (!r.AtEnd()) {
    return Status::Corruption("multi-query checkpoint: trailing bytes");
  }

  // Restore the nested query states into fresh queries (so a bad nested
  // image leaves this engine untouched), then commit everything.
  std::vector<StreamQuery> restored_queries;
  restored_queries.reserve(groups_.size());
  for (size_t g = 0; g < groups_.size(); ++g) {
    StreamQuery query(groups_[g].query.options(), seed_);
    if (Status s = query.RestoreState(restored_groups[g].nested); !s.ok()) {
      return s;
    }
    restored_queries.push_back(std::move(query));
  }
  for (size_t g = 0; g < groups_.size(); ++g) {
    groups_[g].query = std::move(restored_queries[g]);
    groups_[g].cache_base = restored_groups[g].cache_base;
    groups_[g].cache = std::move(restored_groups[g].cache);
  }
  views_ = std::move(restored_views);
  ingest_started_ = true;
  return Status::Ok();
}

}  // namespace gems
