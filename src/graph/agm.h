#ifndef GEMS_GRAPH_AGM_H_
#define GEMS_GRAPH_AGM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "sampling/l0_sampler.h"

/// \file
/// AGM graph sketches (Ahn, Guha & McGregor, SODA 2012): the paper's
/// example of sketching "more complex data types". Each vertex keeps L0
/// samplers of its edge-incidence vector, signed so that summing the
/// vectors of a vertex set S cancels internal edges and leaves exactly the
/// cut (S, V-S). Because L0 samplers merge by addition, Boruvka's
/// algorithm runs entirely on sketches: per round, merge each component's
/// samplers and draw an outgoing edge. Handles fully dynamic graphs (edge
/// insertions AND deletions) in O(n polylog n) space.

namespace gems {

/// An undirected edge between vertex ids.
struct Edge {
  uint32_t u;
  uint32_t v;
};

/// Sketch of a dynamic graph on `num_vertices` vertices.
class AgmSketch {
 public:
  struct Options {
    /// Independent sampler copies; one is consumed per Boruvka round, so
    /// this caps the rounds (log2(n) + slack is plenty).
    int num_copies = 12;
    /// Per-level sparse-recovery budget of each sampler.
    size_t sparsity = 2;
    /// Hash rows per recovery structure.
    size_t num_rows = 2;
  };

  AgmSketch(uint32_t num_vertices, uint64_t seed);
  AgmSketch(uint32_t num_vertices, uint64_t seed, const Options& options);

  AgmSketch(const AgmSketch&) = default;
  AgmSketch& operator=(const AgmSketch&) = default;
  AgmSketch(AgmSketch&&) = default;
  AgmSketch& operator=(AgmSketch&&) = default;

  /// Inserts the undirected edge {u, v}. u != v required.
  void AddEdge(uint32_t u, uint32_t v);

  /// Deletes a previously inserted edge (dynamic graphs).
  void RemoveEdge(uint32_t u, uint32_t v);

  /// Runs Boruvka over the sketches; returns a spanning forest (one edge
  /// set that, with high probability, spans every connected component).
  std::vector<Edge> SpanningForest() const;

  /// Component label per vertex, derived from SpanningForest().
  std::vector<uint32_t> ConnectedComponents() const;

  /// Number of connected components (isolated vertices count).
  size_t NumComponents() const;

  /// Merges a sketch of another edge set over the same vertex set.
  Status Merge(const AgmSketch& other);

  uint32_t num_vertices() const { return num_vertices_; }

  /// Encoded coordinate of edge {u, v} in the incidence vectors.
  uint64_t EncodeEdge(uint32_t u, uint32_t v) const;
  Edge DecodeEdge(uint64_t id) const;

  /// Wire format: the whole sketch (all per-vertex samplers), so a worker
  /// can ship its local edge-set sketch to a coordinator — the
  /// communication pattern the AGM setting is about. Size is
  /// O(num_vertices * num_copies * sampler size).
  std::vector<uint8_t> Serialize() const;
  static Result<AgmSketch> Deserialize(std::span<const uint8_t> bytes);

 private:
  void UpdateEdge(uint32_t u, uint32_t v, int64_t weight);

  uint32_t num_vertices_;
  uint64_t seed_;
  Options options_;
  /// samplers_[copy * num_vertices_ + vertex].
  std::vector<L0Sampler> samplers_;
};

}  // namespace gems

#endif  // GEMS_GRAPH_AGM_H_
