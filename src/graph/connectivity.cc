#include "graph/connectivity.h"

#include <algorithm>

#include "common/check.h"
#include "graph/union_find.h"

namespace gems {

ExactGraph::ExactGraph(uint32_t num_vertices) : num_vertices_(num_vertices) {
  GEMS_CHECK(num_vertices >= 1);
}

void ExactGraph::AddEdge(uint32_t u, uint32_t v) {
  GEMS_CHECK(u < num_vertices_ && v < num_vertices_ && u != v);
  if (u > v) std::swap(u, v);
  edges_[static_cast<uint64_t>(u) * num_vertices_ + v] += 1;
}

void ExactGraph::RemoveEdge(uint32_t u, uint32_t v) {
  GEMS_CHECK(u < num_vertices_ && v < num_vertices_ && u != v);
  if (u > v) std::swap(u, v);
  edges_[static_cast<uint64_t>(u) * num_vertices_ + v] -= 1;
}

std::vector<Edge> ExactGraph::Edges() const {
  std::vector<Edge> out;
  for (const auto& [id, multiplicity] : edges_) {
    if (multiplicity != 0) {
      out.push_back(Edge{static_cast<uint32_t>(id / num_vertices_),
                         static_cast<uint32_t>(id % num_vertices_)});
    }
  }
  return out;
}

size_t ExactGraph::NumComponents() const {
  UnionFind components(num_vertices_);
  for (const Edge& edge : Edges()) components.Union(edge.u, edge.v);
  return components.NumComponents();
}

std::vector<uint32_t> ExactGraph::ComponentLabels() const {
  UnionFind components(num_vertices_);
  for (const Edge& edge : Edges()) components.Union(edge.u, edge.v);
  std::vector<uint32_t> labels(num_vertices_);
  for (uint32_t vertex = 0; vertex < num_vertices_; ++vertex) {
    labels[vertex] = static_cast<uint32_t>(components.Find(vertex));
  }
  return labels;
}

std::vector<Edge> RandomGraph(uint32_t num_vertices, double edge_probability,
                              uint64_t seed) {
  GEMS_CHECK(edge_probability >= 0.0 && edge_probability <= 1.0);
  Rng rng(seed);
  std::vector<Edge> edges;
  for (uint32_t u = 0; u < num_vertices; ++u) {
    for (uint32_t v = u + 1; v < num_vertices; ++v) {
      if (rng.NextBernoulli(edge_probability)) edges.push_back(Edge{u, v});
    }
  }
  return edges;
}

std::vector<Edge> PlantedComponents(uint32_t num_vertices,
                                    uint32_t num_components,
                                    double extra_edge_factor, uint64_t seed) {
  GEMS_CHECK(num_components >= 1 && num_components <= num_vertices);
  Rng rng(seed);
  // Assign vertices round-robin to clusters, then build a random tree plus
  // extra random intra-cluster edges within each.
  std::vector<std::vector<uint32_t>> clusters(num_components);
  for (uint32_t vertex = 0; vertex < num_vertices; ++vertex) {
    clusters[vertex % num_components].push_back(vertex);
  }
  std::vector<Edge> edges;
  for (const std::vector<uint32_t>& cluster : clusters) {
    if (cluster.size() < 2) continue;
    // Random spanning tree: connect vertex i to a random earlier vertex.
    for (size_t i = 1; i < cluster.size(); ++i) {
      const size_t j = rng.NextBounded(i);
      edges.push_back(Edge{cluster[j], cluster[i]});
    }
    // Extra edges.
    const size_t extras = static_cast<size_t>(
        extra_edge_factor * static_cast<double>(cluster.size()));
    for (size_t e = 0; e < extras; ++e) {
      const size_t i = rng.NextBounded(cluster.size());
      const size_t j = rng.NextBounded(cluster.size());
      if (i != j) edges.push_back(Edge{cluster[i], cluster[j]});
    }
  }
  return edges;
}

}  // namespace gems
