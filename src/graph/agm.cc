#include "graph/agm.h"

#include <numeric>

#include "common/check.h"
#include "core/wire.h"
#include "graph/union_find.h"
#include "hash/hash.h"

namespace gems {

AgmSketch::AgmSketch(uint32_t num_vertices, uint64_t seed)
    : AgmSketch(num_vertices, seed, Options()) {}

AgmSketch::AgmSketch(uint32_t num_vertices, uint64_t seed,
                     const Options& options)
    : num_vertices_(num_vertices), seed_(seed), options_(options) {
  GEMS_CHECK(num_vertices >= 2);
  GEMS_CHECK(options.num_copies >= 1);
  // Levels sized to the edge-id universe n^2 plus slack.
  L0Sampler::Options sampler_options;
  sampler_options.sparsity = options.sparsity;
  sampler_options.num_rows = options.num_rows;
  int levels = 2;
  while ((uint64_t{1} << levels) <
         static_cast<uint64_t>(num_vertices) * num_vertices) {
    ++levels;
  }
  sampler_options.num_levels = std::min(levels + 4, 48);

  samplers_.reserve(static_cast<size_t>(options.num_copies) * num_vertices);
  for (int copy = 0; copy < options.num_copies; ++copy) {
    for (uint32_t vertex = 0; vertex < num_vertices; ++vertex) {
      // All vertices within a copy share the sampler seed so that their
      // sketches are merge-compatible (vector addition).
      samplers_.emplace_back(DeriveSeed(seed, copy), sampler_options);
    }
  }
}

uint64_t AgmSketch::EncodeEdge(uint32_t u, uint32_t v) const {
  GEMS_DCHECK(u != v);
  if (u > v) std::swap(u, v);
  return static_cast<uint64_t>(u) * num_vertices_ + v;
}

Edge AgmSketch::DecodeEdge(uint64_t id) const {
  return Edge{static_cast<uint32_t>(id / num_vertices_),
              static_cast<uint32_t>(id % num_vertices_)};
}

void AgmSketch::UpdateEdge(uint32_t u, uint32_t v, int64_t weight) {
  GEMS_CHECK(u < num_vertices_ && v < num_vertices_ && u != v);
  const uint64_t id = EncodeEdge(u, v);
  // Sign convention: the lower-id endpoint adds +w, the higher adds -w, so
  // summing the incidence vectors of a component cancels internal edges.
  const uint32_t low = std::min(u, v);
  const uint32_t high = std::max(u, v);
  for (int copy = 0; copy < options_.num_copies; ++copy) {
    const size_t base = static_cast<size_t>(copy) * num_vertices_;
    samplers_[base + low].Update(id, weight);
    samplers_[base + high].Update(id, -weight);
  }
}

void AgmSketch::AddEdge(uint32_t u, uint32_t v) { UpdateEdge(u, v, 1); }

void AgmSketch::RemoveEdge(uint32_t u, uint32_t v) { UpdateEdge(u, v, -1); }

std::vector<Edge> AgmSketch::SpanningForest() const {
  UnionFind components(num_vertices_);
  std::vector<Edge> forest;

  for (int round = 0; round < options_.num_copies; ++round) {
    if (components.NumComponents() == 1) break;
    const size_t base = static_cast<size_t>(round) * num_vertices_;

    // Group vertices by current component and merge their samplers for
    // this round's (fresh) copy.
    std::vector<uint32_t> representatives;
    std::vector<L0Sampler> merged;
    std::vector<int> slot_of_component(num_vertices_, -1);
    for (uint32_t vertex = 0; vertex < num_vertices_; ++vertex) {
      const size_t root = components.Find(vertex);
      if (slot_of_component[root] < 0) {
        slot_of_component[root] = static_cast<int>(merged.size());
        representatives.push_back(static_cast<uint32_t>(root));
        merged.push_back(samplers_[base + vertex]);
      } else {
        // Accumulate into the component's sampler.
        Status s =
            merged[slot_of_component[root]].Merge(samplers_[base + vertex]);
        GEMS_CHECK(s.ok());
      }
    }

    // Draw one outgoing edge per component and union.
    bool progress = false;
    for (const L0Sampler& sampler : merged) {
      const auto sample = sampler.Draw();
      if (!sample.has_value()) continue;
      const Edge edge = DecodeEdge(sample->item);
      if (edge.u >= num_vertices_ || edge.v >= num_vertices_ ||
          edge.u == edge.v) {
        continue;  // Corrupted recovery; skip defensively.
      }
      if (components.Union(edge.u, edge.v)) {
        forest.push_back(edge);
        progress = true;
      }
    }
    if (!progress && round > 0) {
      // No component advanced this round; later copies are identical in
      // distribution, so further rounds are unlikely to help.
      continue;
    }
  }
  return forest;
}

std::vector<uint32_t> AgmSketch::ConnectedComponents() const {
  UnionFind components(num_vertices_);
  for (const Edge& edge : SpanningForest()) {
    components.Union(edge.u, edge.v);
  }
  std::vector<uint32_t> labels(num_vertices_);
  for (uint32_t vertex = 0; vertex < num_vertices_; ++vertex) {
    labels[vertex] = static_cast<uint32_t>(components.Find(vertex));
  }
  return labels;
}

size_t AgmSketch::NumComponents() const {
  UnionFind components(num_vertices_);
  for (const Edge& edge : SpanningForest()) {
    components.Union(edge.u, edge.v);
  }
  return components.NumComponents();
}

Status AgmSketch::Merge(const AgmSketch& other) {
  if (num_vertices_ != other.num_vertices_ || seed_ != other.seed_ ||
      options_.num_copies != other.options_.num_copies) {
    return Status::InvalidArgument(
        "AGM merge requires identical configuration");
  }
  for (size_t i = 0; i < samplers_.size(); ++i) {
    Status s = samplers_[i].Merge(other.samplers_[i]);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

std::vector<uint8_t> AgmSketch::Serialize() const {
  ByteWriter w;
  w.PutU32(num_vertices_);
  w.PutU64(seed_);
  w.PutVarint(static_cast<uint64_t>(options_.num_copies));
  w.PutVarint(options_.sparsity);
  w.PutVarint(options_.num_rows);
  for (const L0Sampler& sampler : samplers_) sampler.EncodeTo(&w);
  return WrapEnvelope(SketchTypeId::kAgmSketch,
                      std::move(w).TakeBytes());
}

Result<AgmSketch> AgmSketch::Deserialize(std::span<const uint8_t> bytes) {
  Result<ByteReader> payload = OpenEnvelope(SketchTypeId::kAgmSketch, bytes);
  if (!payload.ok()) return payload.status();
  ByteReader r = std::move(payload).value();
  uint32_t num_vertices;
  uint64_t seed, num_copies, sparsity, num_rows;
  if (Status sv = r.GetU32(&num_vertices); !sv.ok()) return sv;
  if (Status ss = r.GetU64(&seed); !ss.ok()) return ss;
  if (Status sc = r.GetVarint(&num_copies); !sc.ok()) return sc;
  if (Status sp = r.GetVarint(&sparsity); !sp.ok()) return sp;
  if (Status sr = r.GetVarint(&num_rows); !sr.ok()) return sr;
  if (num_vertices < 2 || num_copies == 0 || num_copies > 64 ||
      sparsity == 0 || sparsity > 64 || num_rows == 0 || num_rows > 16) {
    return Status::Corruption("invalid AGM configuration");
  }
  Options options;
  options.num_copies = static_cast<int>(num_copies);
  options.sparsity = sparsity;
  options.num_rows = num_rows;
  AgmSketch sketch(num_vertices, seed, options);
  for (L0Sampler& sampler : sketch.samplers_) {
    if (Status sd = sampler.DecodeFrom(&r); !sd.ok()) return sd;
  }
  return sketch;
}

}  // namespace gems
