#ifndef GEMS_GRAPH_UNION_FIND_H_
#define GEMS_GRAPH_UNION_FIND_H_

#include <cstddef>
#include <cstdint>
#include <vector>

/// \file
/// Disjoint-set forest with union by rank and path compression — the exact
/// substrate used both by the Boruvka rounds of the AGM connectivity
/// algorithm and by the exact-graph baselines in the E13 experiment.

namespace gems {

/// Union-find over vertices [0, n).
class UnionFind {
 public:
  explicit UnionFind(size_t n);

  /// Representative of x's component (with path compression).
  size_t Find(size_t x);

  /// Unions the components of a and b; returns false if already joined.
  bool Union(size_t a, size_t b);

  /// Number of disjoint components.
  size_t NumComponents() const { return num_components_; }

  size_t size() const { return parent_.size(); }

 private:
  std::vector<size_t> parent_;
  std::vector<uint8_t> rank_;
  size_t num_components_;
};

}  // namespace gems

#endif  // GEMS_GRAPH_UNION_FIND_H_
