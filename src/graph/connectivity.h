#ifndef GEMS_GRAPH_CONNECTIVITY_H_
#define GEMS_GRAPH_CONNECTIVITY_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/random.h"
#include "graph/agm.h"

/// \file
/// Exact graph baselines and generators for the AGM experiments: exact
/// connected components (union-find over the true edge list), and random /
/// planted-component graph generators.

namespace gems {

/// Exact connectivity over an explicit edge list.
class ExactGraph {
 public:
  explicit ExactGraph(uint32_t num_vertices);

  void AddEdge(uint32_t u, uint32_t v);
  void RemoveEdge(uint32_t u, uint32_t v);

  /// Current edges (after cancellation of add/remove pairs).
  std::vector<Edge> Edges() const;

  /// Number of connected components.
  size_t NumComponents() const;

  /// Component label per vertex.
  std::vector<uint32_t> ComponentLabels() const;

  uint32_t num_vertices() const { return num_vertices_; }

 private:
  uint32_t num_vertices_;
  // Edge multiplicity by encoded id (add/remove adjust the count).
  std::vector<std::pair<uint64_t, int64_t>> SortedEdges() const;
  std::unordered_map<uint64_t, int64_t> edges_;
};

/// Erdos-Renyi G(n, p) edges.
std::vector<Edge> RandomGraph(uint32_t num_vertices, double edge_probability,
                              uint64_t seed);

/// A graph with `num_components` planted connected clusters (each cluster
/// is a random spanning tree plus extra random intra-cluster edges).
std::vector<Edge> PlantedComponents(uint32_t num_vertices,
                                    uint32_t num_components,
                                    double extra_edge_factor, uint64_t seed);

}  // namespace gems

#endif  // GEMS_GRAPH_CONNECTIVITY_H_
