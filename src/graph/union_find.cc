#include "graph/union_find.h"

#include "common/check.h"

namespace gems {

UnionFind::UnionFind(size_t n) : num_components_(n) {
  GEMS_CHECK(n >= 1);
  parent_.resize(n);
  rank_.assign(n, 0);
  for (size_t i = 0; i < n; ++i) parent_[i] = i;
}

size_t UnionFind::Find(size_t x) {
  GEMS_DCHECK(x < parent_.size());
  size_t root = x;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[x] != root) {
    const size_t next = parent_[x];
    parent_[x] = root;
    x = next;
  }
  return root;
}

bool UnionFind::Union(size_t a, size_t b) {
  const size_t ra = Find(a);
  const size_t rb = Find(b);
  if (ra == rb) return false;
  if (rank_[ra] < rank_[rb]) {
    parent_[ra] = rb;
  } else if (rank_[ra] > rank_[rb]) {
    parent_[rb] = ra;
  } else {
    parent_[rb] = ra;
    ++rank_[ra];
  }
  --num_components_;
  return true;
}

}  // namespace gems
