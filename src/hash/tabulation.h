#ifndef GEMS_HASH_TABULATION_H_
#define GEMS_HASH_TABULATION_H_

#include <array>
#include <cstdint>

/// \file
/// Simple tabulation hashing (Zobrist; analyzed by Patrascu & Thorup 2011).
/// Only 3-wise independent, yet behaves like a fully random function for
/// many sketch applications (linear probing, Count-Min bucket choice) and
/// is very fast: eight table lookups and XORs per 64-bit key.

namespace gems {

/// One tabulation hash function: 8 tables of 256 random 64-bit entries,
/// one per byte of the key.
class TabulationHash {
 public:
  /// Fills the tables deterministically from `seed`.
  explicit TabulationHash(uint64_t seed);

  TabulationHash(const TabulationHash&) = default;
  TabulationHash& operator=(const TabulationHash&) = default;
  TabulationHash(TabulationHash&&) = default;
  TabulationHash& operator=(TabulationHash&&) = default;

  /// Hashes a 64-bit key.
  uint64_t Eval(uint64_t key) const {
    uint64_t h = 0;
    for (int i = 0; i < 8; ++i) {
      h ^= tables_[i][(key >> (8 * i)) & 0xFF];
    }
    return h;
  }

 private:
  std::array<std::array<uint64_t, 256>, 8> tables_;
};

}  // namespace gems

#endif  // GEMS_HASH_TABULATION_H_
