#include "hash/tabulation.h"

#include "common/random.h"

namespace gems {

TabulationHash::TabulationHash(uint64_t seed) {
  Rng rng(seed);
  for (auto& table : tables_) {
    for (uint64_t& entry : table) entry = rng.NextU64();
  }
}

}  // namespace gems
