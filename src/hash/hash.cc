#include "hash/hash.h"

// All helpers are inline; this file exists so hash.h has a home translation
// unit and stays buildable standalone.
