#ifndef GEMS_HASH_POLYNOMIAL_H_
#define GEMS_HASH_POLYNOMIAL_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

/// \file
/// k-wise independent polynomial hashing over the Mersenne prime
/// p = 2^61 - 1 (Carter-Wegman). A degree-(k-1) polynomial with random
/// coefficients evaluated at the key gives a k-wise independent family —
/// the independence grade the AMS and Count sketch analyses assume
/// (2-wise for bucket choice, 4-wise for the Rademacher signs).

namespace gems {

/// A single hash function drawn from a k-wise independent family.
class KWiseHash {
 public:
  /// Draws random coefficients for a (k-1)-degree polynomial using `seed`.
  /// `k` >= 1; the leading coefficient is forced non-zero.
  KWiseHash(int k, uint64_t seed);

  KWiseHash(const KWiseHash&) = default;
  KWiseHash& operator=(const KWiseHash&) = default;
  KWiseHash(KWiseHash&&) = default;
  KWiseHash& operator=(KWiseHash&&) = default;

  /// Evaluates the polynomial at `key`; result uniform in [0, 2^61 - 1).
  uint64_t Eval(uint64_t key) const;

  /// Reduces a key into the field [0, p). Batch kernels that evaluate
  /// several polynomials at the same key (e.g. Count sketch's bucket and
  /// sign hashes across every row) hoist this one division out and feed
  /// the reduced key to EvalReduced.
  static uint64_t ReduceKey(uint64_t key) { return key % kPrime; }

  /// Eval for a key already reduced via ReduceKey; Eval(key) ==
  /// EvalReduced(ReduceKey(key)) exactly. Defined inline so hot batch
  /// loops keep the Horner recurrence in registers instead of paying a
  /// function call per probe.
  uint64_t EvalReduced(uint64_t x) const {
    uint64_t acc = coefficients_.back();
    for (size_t i = coefficients_.size() - 1; i-- > 0;) {
      acc = AddMod(MulMod(acc, x), coefficients_[i]);
    }
    return acc;
  }

  /// Eval mapped to [0, range) via multiply-shift style reduction.
  uint64_t EvalRange(uint64_t key, uint64_t range) const {
    return Eval(key) % range;
  }

  /// Eval mapped to [0, 1).
  double EvalUnit(uint64_t key) const;

  /// Rademacher +1/-1 from the low bit of an independent evaluation.
  int EvalSign(uint64_t key) const { return (Eval(key) & 1) ? 1 : -1; }

  int k() const { return static_cast<int>(coefficients_.size()); }

  /// The Mersenne prime modulus 2^61 - 1.
  static constexpr uint64_t kPrime = (uint64_t{1} << 61) - 1;

 private:
  // (a * b) mod (2^61 - 1) using a 128-bit intermediate; 2^61 ≡ 1 (mod p).
  static uint64_t MulMod(uint64_t a, uint64_t b) {
    const unsigned __int128 product =
        static_cast<unsigned __int128>(a) * static_cast<unsigned __int128>(b);
    const uint64_t low = static_cast<uint64_t>(product & kPrime);
    const uint64_t high = static_cast<uint64_t>(product >> 61);
    uint64_t sum = low + high;
    if (sum >= kPrime) sum -= kPrime;
    return sum;
  }

  static uint64_t AddMod(uint64_t a, uint64_t b) {
    uint64_t sum = a + b;  // Both < 2^61, no overflow in 64 bits.
    if (sum >= kPrime) sum -= kPrime;
    return sum;
  }

  std::vector<uint64_t> coefficients_;  // c_0 .. c_{k-1}, low degree first.
};

}  // namespace gems

#endif  // GEMS_HASH_POLYNOMIAL_H_
