#ifndef GEMS_HASH_POLYNOMIAL_H_
#define GEMS_HASH_POLYNOMIAL_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

/// \file
/// k-wise independent polynomial hashing over the Mersenne prime
/// p = 2^61 - 1 (Carter-Wegman). A degree-(k-1) polynomial with random
/// coefficients evaluated at the key gives a k-wise independent family —
/// the independence grade the AMS and Count sketch analyses assume
/// (2-wise for bucket choice, 4-wise for the Rademacher signs).

namespace gems {

/// A single hash function drawn from a k-wise independent family.
class KWiseHash {
 public:
  /// Draws random coefficients for a (k-1)-degree polynomial using `seed`.
  /// `k` >= 1; the leading coefficient is forced non-zero.
  KWiseHash(int k, uint64_t seed);

  KWiseHash(const KWiseHash&) = default;
  KWiseHash& operator=(const KWiseHash&) = default;
  KWiseHash(KWiseHash&&) = default;
  KWiseHash& operator=(KWiseHash&&) = default;

  /// Evaluates the polynomial at `key`; result uniform in [0, 2^61 - 1).
  uint64_t Eval(uint64_t key) const;

  /// Eval mapped to [0, range) via multiply-shift style reduction.
  uint64_t EvalRange(uint64_t key, uint64_t range) const {
    return Eval(key) % range;
  }

  /// Eval mapped to [0, 1).
  double EvalUnit(uint64_t key) const;

  /// Rademacher +1/-1 from the low bit of an independent evaluation.
  int EvalSign(uint64_t key) const { return (Eval(key) & 1) ? 1 : -1; }

  int k() const { return static_cast<int>(coefficients_.size()); }

  /// The Mersenne prime modulus 2^61 - 1.
  static constexpr uint64_t kPrime = (uint64_t{1} << 61) - 1;

 private:
  std::vector<uint64_t> coefficients_;  // c_0 .. c_{k-1}, low degree first.
};

}  // namespace gems

#endif  // GEMS_HASH_POLYNOMIAL_H_
