#include "hash/polynomial.h"

#include "common/check.h"

namespace gems {

KWiseHash::KWiseHash(int k, uint64_t seed) {
  GEMS_CHECK(k >= 1);
  Rng rng(seed);
  coefficients_.reserve(k);
  for (int i = 0; i < k; ++i) {
    coefficients_.push_back(rng.NextU64() % kPrime);
  }
  // Force the leading coefficient non-zero so the polynomial has full degree.
  if (k > 1 && coefficients_.back() == 0) coefficients_.back() = 1;
}

uint64_t KWiseHash::Eval(uint64_t key) const {
  return EvalReduced(ReduceKey(key));
}

double KWiseHash::EvalUnit(uint64_t key) const {
  return static_cast<double>(Eval(key)) / static_cast<double>(kPrime);
}

}  // namespace gems
