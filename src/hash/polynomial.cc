#include "hash/polynomial.h"

#include "common/check.h"

namespace gems {
namespace {

// (a * b) mod (2^61 - 1) using 128-bit intermediate.
inline uint64_t MulMod(uint64_t a, uint64_t b) {
  const unsigned __int128 product =
      static_cast<unsigned __int128>(a) * static_cast<unsigned __int128>(b);
  // Split into low 61 bits and the rest; 2^61 ≡ 1 (mod p).
  uint64_t low = static_cast<uint64_t>(product & KWiseHash::kPrime);
  uint64_t high = static_cast<uint64_t>(product >> 61);
  uint64_t sum = low + high;
  if (sum >= KWiseHash::kPrime) sum -= KWiseHash::kPrime;
  return sum;
}

inline uint64_t AddMod(uint64_t a, uint64_t b) {
  uint64_t sum = a + b;  // Both < 2^61, no overflow in 64 bits.
  if (sum >= KWiseHash::kPrime) sum -= KWiseHash::kPrime;
  return sum;
}

}  // namespace

KWiseHash::KWiseHash(int k, uint64_t seed) {
  GEMS_CHECK(k >= 1);
  Rng rng(seed);
  coefficients_.reserve(k);
  for (int i = 0; i < k; ++i) {
    coefficients_.push_back(rng.NextU64() % kPrime);
  }
  // Force the leading coefficient non-zero so the polynomial has full degree.
  if (k > 1 && coefficients_.back() == 0) coefficients_.back() = 1;
}

uint64_t KWiseHash::Eval(uint64_t key) const {
  // Reduce the key into the field first.
  uint64_t x = key % kPrime;
  // Horner evaluation, highest degree first.
  uint64_t acc = coefficients_.back();
  for (size_t i = coefficients_.size() - 1; i-- > 0;) {
    acc = AddMod(MulMod(acc, x), coefficients_[i]);
  }
  return acc;
}

double KWiseHash::EvalUnit(uint64_t key) const {
  return static_cast<double>(Eval(key)) / static_cast<double>(kPrime);
}

}  // namespace gems
