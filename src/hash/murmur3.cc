#include "hash/murmur3.h"

#include <cstring>

namespace gems {
namespace {

using murmur3_detail::Finalize;
using murmur3_detail::MixK1;
using murmur3_detail::MixK2;
using murmur3_detail::RotL;

inline uint64_t ReadU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

Hash128 Murmur3_128(const void* data, size_t len, uint64_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  const size_t num_blocks = len / 16;

  uint64_t h1 = seed;
  uint64_t h2 = seed;

  for (size_t i = 0; i < num_blocks; ++i) {
    h1 ^= MixK1(ReadU64(p + i * 16));
    h1 = RotL(h1, 27);
    h1 += h2;
    h1 = h1 * 5 + 0x52DCE729;

    h2 ^= MixK2(ReadU64(p + i * 16 + 8));
    h2 = RotL(h2, 31);
    h2 += h1;
    h2 = h2 * 5 + 0x38495AB5;
  }

  const uint8_t* tail = p + num_blocks * 16;
  uint64_t k1 = 0;
  uint64_t k2 = 0;
  switch (len & 15) {
    case 15:
      k2 ^= static_cast<uint64_t>(tail[14]) << 48;
      [[fallthrough]];
    case 14:
      k2 ^= static_cast<uint64_t>(tail[13]) << 40;
      [[fallthrough]];
    case 13:
      k2 ^= static_cast<uint64_t>(tail[12]) << 32;
      [[fallthrough]];
    case 12:
      k2 ^= static_cast<uint64_t>(tail[11]) << 24;
      [[fallthrough]];
    case 11:
      k2 ^= static_cast<uint64_t>(tail[10]) << 16;
      [[fallthrough]];
    case 10:
      k2 ^= static_cast<uint64_t>(tail[9]) << 8;
      [[fallthrough]];
    case 9:
      k2 ^= static_cast<uint64_t>(tail[8]);
      h2 ^= MixK2(k2);
      [[fallthrough]];
    case 8:
      k1 ^= static_cast<uint64_t>(tail[7]) << 56;
      [[fallthrough]];
    case 7:
      k1 ^= static_cast<uint64_t>(tail[6]) << 48;
      [[fallthrough]];
    case 6:
      k1 ^= static_cast<uint64_t>(tail[5]) << 40;
      [[fallthrough]];
    case 5:
      k1 ^= static_cast<uint64_t>(tail[4]) << 32;
      [[fallthrough]];
    case 4:
      k1 ^= static_cast<uint64_t>(tail[3]) << 24;
      [[fallthrough]];
    case 3:
      k1 ^= static_cast<uint64_t>(tail[2]) << 16;
      [[fallthrough]];
    case 2:
      k1 ^= static_cast<uint64_t>(tail[1]) << 8;
      [[fallthrough]];
    case 1:
      k1 ^= static_cast<uint64_t>(tail[0]);
      h1 ^= MixK1(k1);
      break;
    case 0:
      break;
  }

  return Finalize(h1, h2, static_cast<uint64_t>(len));
}

}  // namespace gems
