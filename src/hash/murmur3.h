#ifndef GEMS_HASH_MURMUR3_H_
#define GEMS_HASH_MURMUR3_H_

#include <cstddef>
#include <cstdint>

/// \file
/// MurmurHash3 x64 128-bit variant (Austin Appleby, public domain;
/// reimplemented from the reference description). Used where a sketch needs
/// two independent 64-bit hash values from one pass, e.g. Bloom filters via
/// double hashing (Kirsch-Mitzenmacher) and HLL++'s 64-bit item hash.

namespace gems {

/// A 128-bit hash value as two 64-bit halves.
struct Hash128 {
  uint64_t low;
  uint64_t high;
};

/// Hashes `len` bytes at `data` with the given seed.
Hash128 Murmur3_128(const void* data, size_t len, uint64_t seed);

}  // namespace gems

#endif  // GEMS_HASH_MURMUR3_H_
