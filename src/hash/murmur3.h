#ifndef GEMS_HASH_MURMUR3_H_
#define GEMS_HASH_MURMUR3_H_

#include <cstddef>
#include <cstdint>

/// \file
/// MurmurHash3 x64 128-bit variant (Austin Appleby, public domain;
/// reimplemented from the reference description). Used where a sketch needs
/// two independent 64-bit hash values from one pass, e.g. Bloom filters via
/// double hashing (Kirsch-Mitzenmacher) and HLL++'s 64-bit item hash.

namespace gems {

/// A 128-bit hash value as two 64-bit halves.
struct Hash128 {
  uint64_t low;
  uint64_t high;
};

/// Hashes `len` bytes at `data` with the given seed.
Hash128 Murmur3_128(const void* data, size_t len, uint64_t seed);

namespace murmur3_detail {

inline uint64_t RotL(uint64_t x, int r) { return (x << r) | (x >> (64 - r)); }

inline uint64_t FMix64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xFF51AFD7ED558CCDULL;
  k ^= k >> 33;
  k *= 0xC4CEB9FE1A85EC53ULL;
  k ^= k >> 33;
  return k;
}

}  // namespace murmur3_detail

/// Murmur3_128 specialized for one 8-byte little-endian key: identical
/// output to Murmur3_128(&key, 8, seed) on little-endian targets, but
/// inlineable — no call, no block loop, no tail dispatch. Batch ingest
/// kernels use this in their hash pass; with the generic entry point the
/// call overhead rivals the mixing work for fixed 8-byte keys.
inline Hash128 Murmur3_128_U64(uint64_t key, uint64_t seed) {
  constexpr uint64_t c1 = 0x87C37B91114253D5ULL;
  constexpr uint64_t c2 = 0x4CF5AD432745937FULL;
  uint64_t h1 = seed;
  uint64_t h2 = seed;
  // len = 8 takes only the k1 tail branch of the generic implementation.
  uint64_t k1 = key;
  k1 *= c1;
  k1 = murmur3_detail::RotL(k1, 31);
  k1 *= c2;
  h1 ^= k1;
  h1 ^= uint64_t{8};
  h2 ^= uint64_t{8};
  h1 += h2;
  h2 += h1;
  h1 = murmur3_detail::FMix64(h1);
  h2 = murmur3_detail::FMix64(h2);
  h1 += h2;
  h2 += h1;
  return Hash128{h1, h2};
}

}  // namespace gems

#endif  // GEMS_HASH_MURMUR3_H_
