#ifndef GEMS_HASH_MURMUR3_H_
#define GEMS_HASH_MURMUR3_H_

#include <cstddef>
#include <cstdint>

/// \file
/// MurmurHash3 x64 128-bit variant (Austin Appleby, public domain;
/// reimplemented from the reference description). Used where a sketch needs
/// two independent 64-bit hash values from one pass, e.g. Bloom filters via
/// double hashing (Kirsch-Mitzenmacher) and HLL++'s 64-bit item hash.

namespace gems {

/// A 128-bit hash value as two 64-bit halves.
struct Hash128 {
  uint64_t low;
  uint64_t high;
};

/// Hashes `len` bytes at `data` with the given seed.
Hash128 Murmur3_128(const void* data, size_t len, uint64_t seed);

/// The canonical Murmur3 x64-128 kernel, shared verbatim by the generic
/// byte-stream entry point (murmur3.cc) and the inline 8-byte
/// specialization below — one definition of the mixing math, so the two
/// can never drift apart. Digest equality between them is pinned by
/// tests/hash_test.cc.
namespace murmur3_detail {

inline constexpr uint64_t kC1 = 0x87C37B91114253D5ULL;
inline constexpr uint64_t kC2 = 0x4CF5AD432745937FULL;

inline uint64_t RotL(uint64_t x, int r) { return (x << r) | (x >> (64 - r)); }

inline uint64_t FMix64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xFF51AFD7ED558CCDULL;
  k ^= k >> 33;
  k *= 0xC4CEB9FE1A85EC53ULL;
  k ^= k >> 33;
  return k;
}

/// The k1-lane key mix (block loop and 1..8-byte tail both use it).
inline uint64_t MixK1(uint64_t k1) {
  k1 *= kC1;
  k1 = RotL(k1, 31);
  return k1 * kC2;
}

/// The k2-lane key mix (block loop and 9..15-byte tail both use it).
inline uint64_t MixK2(uint64_t k2) {
  k2 *= kC2;
  k2 = RotL(k2, 33);
  return k2 * kC1;
}

/// Length injection and the final avalanche, common to every input length.
inline Hash128 Finalize(uint64_t h1, uint64_t h2, uint64_t len) {
  h1 ^= len;
  h2 ^= len;
  h1 += h2;
  h2 += h1;
  h1 = FMix64(h1);
  h2 = FMix64(h2);
  h1 += h2;
  h2 += h1;
  return Hash128{h1, h2};
}

}  // namespace murmur3_detail

/// Murmur3_128 specialized for one 8-byte little-endian key: identical
/// output to Murmur3_128(&key, 8, seed) on little-endian targets, but
/// inlineable — no call, no block loop, no tail dispatch. Batch ingest
/// kernels use this in their hash pass; with the generic entry point the
/// call overhead rivals the mixing work for fixed 8-byte keys.
inline Hash128 Murmur3_128_U64(uint64_t key, uint64_t seed) {
  // len = 8 takes only the k1 tail branch of the generic implementation.
  const uint64_t h1 = seed ^ murmur3_detail::MixK1(key);
  return murmur3_detail::Finalize(h1, seed, 8);
}

}  // namespace gems

#endif  // GEMS_HASH_MURMUR3_H_
