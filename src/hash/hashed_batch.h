#ifndef GEMS_HASH_HASHED_BATCH_H_
#define GEMS_HASH_HASHED_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "hash/hash.h"
#include "simd/dispatch.h"

/// \file
/// Hash-once batching for the ingest hot path. Production deployments win
/// their throughput by amortizing per-item costs across a batch (Friedman's
/// "Evaluation of Software Sketches"; Rinberg et al.'s concurrent
/// DataSketches): hash every item exactly once in a tight loop, then let
/// every consumer of the batch reuse the same hash words instead of
/// re-hashing per sketch. HashedBatch is that contract in type form — it
/// pairs a borrowed span of items with their 64-bit hashes under one seed.
///
/// The contract consumers rely on:
///  - `hashes()[i] == Hash64(items()[i], seed())` for every i, and
///  - a sketch whose seed equals `seed()` may ingest `hashes()` directly
///    (e.g. HyperLogLog::UpdateHashes) with state identical to calling
///    `Update(items()[i])` item by item.

namespace gems {

/// Fills `out[i] = Hash64(items[i], seed)` through the dispatched mixing
/// kernel (4-wide AVX2 when the CPU has it, the same scalar loop
/// otherwise); this is the hoisted "hash loop" every UpdateBatch fast path
/// starts with. Kernel variants are bit-identical, so callers may treat
/// the output as Hash64's regardless of dispatch level.
inline void HashBatch(std::span<const uint64_t> items, uint64_t seed,
                      uint64_t* out) {
  // Hash64(key, seed) = Mix64(key + Mix64(seed + C)); hoist the seed mix.
  const uint64_t mixed_seed = Mix64(seed + 0x9E3779B97F4A7C15ULL);
  simd::Kernels().mix64_batch(items.data(), items.size(), mixed_seed, out);
}

/// Exact `x % divisor` for a loop-invariant divisor: one multiply-high and
/// at most one correction (Granlund-Montgomery style) instead of a hardware
/// divide per item, or a plain mask when the divisor is a power of two.
/// Batch kernels hoist one of these per row/filter, turning the per-probe
/// modulo — often the single most expensive instruction in the ingest loop —
/// into cheap multiplies. The result is bit-exact, so batch paths built on
/// it stay byte-identical to their per-item counterparts.
class InvariantMod {
 public:
  explicit InvariantMod(uint64_t divisor)
      : divisor_(divisor),
        mask_((divisor & (divisor - 1)) == 0 ? divisor - 1 : kNoMask),
        // For non-powers of two, ~0/d == floor(2^64 / d) exactly (2^64 is
        // not a multiple of d), which makes the estimate below off by at
        // most one.
        magic_(mask_ == kNoMask ? ~uint64_t{0} / divisor : 0) {}

  uint64_t operator()(uint64_t x) const {
    if (mask_ != kNoMask) return x & mask_;
    const uint64_t q = static_cast<uint64_t>(
        (static_cast<unsigned __int128>(magic_) * x) >> 64);
    uint64_t r = x - q * divisor_;
    if (r >= divisor_) r -= divisor_;
    return r;
  }

  uint64_t divisor() const { return divisor_; }

 private:
  static constexpr uint64_t kNoMask = ~uint64_t{0};

  uint64_t divisor_;
  uint64_t mask_;
  uint64_t magic_;
};

/// A batch of items hashed once under one seed. The item span is borrowed
/// (the caller keeps it alive); the hash words are owned, so a batch can be
/// handed to several sketches in turn without rehashing.
class HashedBatch {
 public:
  HashedBatch() = default;

  /// Computes the hash words eagerly, one Hash64 per item.
  HashedBatch(std::span<const uint64_t> items, uint64_t seed) {
    Reset(items, seed);
  }

  /// Re-points the batch at new items, reusing the hash buffer's capacity
  /// (the engine calls this once per event chunk, steady-state
  /// allocation-free). Drops any attached timestamp column.
  void Reset(std::span<const uint64_t> items, uint64_t seed) {
    items_ = items;
    seed_ = seed;
    timestamps_ = {};
    hashes_.resize(items.size());
    HashBatch(items, seed, hashes_.data());
  }

  /// Gathers an item column out of structured rows (`proj(row)` yields the
  /// uint64_t item) into an owned buffer, then hashes it like Reset. The
  /// multi-query engine uses this to lift StreamEvent::item out of the
  /// event chunk once, so one gather + one hash loop serve every standing
  /// query. Both buffers reuse their capacity, so steady-state chunks are
  /// allocation-free; items() stays valid until the next Reset*.
  template <typename Row, typename Proj>
  void ResetProjected(std::span<const Row> rows, Proj&& proj, uint64_t seed) {
    owned_items_.resize(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) owned_items_[i] = proj(rows[i]);
    Reset(owned_items_, seed);
  }

  /// Attaches a borrowed timestamp column paralleling items() (one
  /// timestamp per item, same order). Timed sketches segment the batch by
  /// pane with it; untimed consumers ignore it.
  void AttachTimestamps(std::span<const uint64_t> timestamps) {
    timestamps_ = timestamps;
  }

  uint64_t seed() const { return seed_; }
  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  bool has_timestamps() const { return !timestamps_.empty(); }

  std::span<const uint64_t> items() const { return items_; }
  std::span<const uint64_t> hashes() const { return hashes_; }
  std::span<const uint64_t> timestamps() const { return timestamps_; }

 private:
  uint64_t seed_ = 0;
  std::span<const uint64_t> items_;
  std::span<const uint64_t> timestamps_;
  std::vector<uint64_t> hashes_;
  std::vector<uint64_t> owned_items_;  // Backing store for ResetProjected.
};

}  // namespace gems

#endif  // GEMS_HASH_HASHED_BATCH_H_
