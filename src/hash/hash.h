#ifndef GEMS_HASH_HASH_H_
#define GEMS_HASH_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/random.h"
#include "hash/murmur3.h"
#include "hash/xxhash.h"

/// \file
/// Front-door hashing API used by the sketches. Every sketch hashes items
/// through these helpers so that (a) string and integer keys get the same
/// treatment, and (b) independent repetitions are derived by reseeding, not
/// by ad-hoc bit surgery at call sites.

namespace gems {

/// Hashes an arbitrary byte string (XXH64).
inline uint64_t Hash64(const void* data, size_t len, uint64_t seed) {
  return XxHash64(data, len, seed);
}

inline uint64_t Hash64(std::string_view s, uint64_t seed) {
  return XxHash64(s.data(), s.size(), seed);
}

/// Hashes a 64-bit key with a seed. A strong stateless mixer is both faster
/// than running the byte hash over 8 bytes and adequate for sketch use.
inline uint64_t Hash64(uint64_t key, uint64_t seed) {
  return Mix64(key + Mix64(seed + 0x9E3779B97F4A7C15ULL));
}

/// 128 bits of hash for sketches that need two independent values per item.
inline Hash128 Hash128Bits(const void* data, size_t len, uint64_t seed) {
  return Murmur3_128(data, len, seed);
}

inline Hash128 Hash128Bits(uint64_t key, uint64_t seed) {
  return Murmur3_128(&key, sizeof(key), seed);
}

/// Maps a 64-bit hash to a double uniform in [0, 1).
inline double HashToUnit(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Derives the seed for the i-th independent repetition of a sketch row.
inline uint64_t DeriveSeed(uint64_t base_seed, uint64_t index) {
  return Mix64(base_seed ^ (0xA24BAED4963EE407ULL + index * 2 + 1));
}

}  // namespace gems

#endif  // GEMS_HASH_HASH_H_
