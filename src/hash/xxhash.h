#ifndef GEMS_HASH_XXHASH_H_
#define GEMS_HASH_XXHASH_H_

#include <cstddef>
#include <cstdint>

/// \file
/// XXH64: fast non-cryptographic 64-bit hash (Yann Collet's xxHash,
/// reimplemented from the public specification). This is the library's
/// default byte-string hash.

namespace gems {

/// Hashes `len` bytes at `data` with the given seed.
uint64_t XxHash64(const void* data, size_t len, uint64_t seed);

}  // namespace gems

#endif  // GEMS_HASH_XXHASH_H_
