#ifndef GEMS_CARDINALITY_MORRIS_H_
#define GEMS_CARDINALITY_MORRIS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/estimate.h"

/// \file
/// Morris approximate counter (Morris 1977): counts n events in
/// O(log log n) bits by incrementing a small register probabilistically.
/// The paper opens its history of sketching with this algorithm; PODS 2022's
/// best paper (Nelson & Yu) revisited its optimality.

namespace gems {

/// One Morris counter with accuracy parameter `a` ("Morris-a").
///
/// The register c stores (approximately) log_{1+1/a}(1 + n/a); each event
/// increments c with probability (1+1/a)^{-c}. The estimator
/// n̂ = a((1+1/a)^c - 1) is unbiased with variance n(n-1)/(2a), so the
/// standard error is roughly n/sqrt(2a). Larger `a` trades bits for
/// accuracy.
class MorrisCounter {
 public:
  /// `a` >= 1 controls accuracy; `seed` drives the coin flips.
  explicit MorrisCounter(double a = 16.0, uint64_t seed = 0);

  MorrisCounter(const MorrisCounter&) = default;
  MorrisCounter& operator=(const MorrisCounter&) = default;
  MorrisCounter(MorrisCounter&&) = default;
  MorrisCounter& operator=(MorrisCounter&&) = default;

  /// Records one event.
  void Increment();

  /// Records `count` events (loops; kept simple rather than batched).
  void IncrementBy(uint64_t count);

  /// Unbiased estimate of the number of events seen.
  double Estimate() const;

  /// Estimate with a normal-approximation confidence interval from the
  /// known variance n(n-1)/(2a).
  gems::Estimate EstimateWithBounds(double confidence = 0.95) const;

  /// Number of bits needed to store the register value.
  int RegisterBits() const;

  /// Raw register value (for tests and the bit-width experiment).
  uint64_t register_value() const { return register_; }
  double a() const { return a_; }

  /// Folds another counter's events into this one. Exact merging of Morris
  /// registers is not possible; this re-encodes the summed estimates, which
  /// preserves unbiasedness of the estimate but adds (bounded) variance.
  Status Merge(const MorrisCounter& other);

  std::vector<uint8_t> Serialize() const;
  static Result<MorrisCounter> Deserialize(std::span<const uint8_t> bytes);

 private:
  double a_;
  uint64_t register_ = 0;
  Rng rng_;
};

/// Averages `replicas` independent Morris counters to cut the standard
/// error by sqrt(replicas) — the classic variance-reduction wrapper.
class MorrisEnsemble {
 public:
  MorrisEnsemble(int replicas, double a, uint64_t seed);

  void Increment();
  double Estimate() const;

 private:
  std::vector<MorrisCounter> counters_;
};

}  // namespace gems

#endif  // GEMS_CARDINALITY_MORRIS_H_
