#include "cardinality/morris.h"

#include <cmath>

#include "common/bits.h"
#include "common/check.h"
#include "core/wire.h"

namespace gems {

MorrisCounter::MorrisCounter(double a, uint64_t seed) : a_(a), rng_(seed) {
  GEMS_CHECK(a >= 1.0);
}

void MorrisCounter::Increment() {
  // Probability (1+1/a)^{-c} of bumping the register.
  const double p = std::pow(1.0 + 1.0 / a_, -static_cast<double>(register_));
  if (rng_.NextBernoulli(p)) ++register_;
}

void MorrisCounter::IncrementBy(uint64_t count) {
  for (uint64_t i = 0; i < count; ++i) Increment();
}

double MorrisCounter::Estimate() const {
  return a_ * (std::pow(1.0 + 1.0 / a_, static_cast<double>(register_)) - 1.0);
}

gems::Estimate MorrisCounter::EstimateWithBounds(double confidence) const {
  const double n = Estimate();
  const double variance = std::max(0.0, n * (n - 1.0) / (2.0 * a_));
  return EstimateFromStdError(n, std::sqrt(variance), confidence);
}

int MorrisCounter::RegisterBits() const {
  return register_ == 0 ? 1 : FloorLog2(register_) + 1;
}

Status MorrisCounter::Merge(const MorrisCounter& other) {
  if (a_ != other.a_) {
    return Status::InvalidArgument("Morris merge requires equal a");
  }
  const double combined = Estimate() + other.Estimate();
  // Re-encode: c = log_{1+1/a}(1 + n/a), rounded probabilistically so the
  // estimator stays unbiased in expectation.
  const double exact_c = std::log1p(combined / a_) / std::log1p(1.0 / a_);
  const double floor_c = std::floor(exact_c);
  const double frac = exact_c - floor_c;
  register_ = static_cast<uint64_t>(floor_c) +
              (rng_.NextBernoulli(frac) ? 1 : 0);
  return Status::Ok();
}

std::vector<uint8_t> MorrisCounter::Serialize() const {
  ByteWriter w;
  w.PutDouble(a_);
  w.PutVarint(register_);
  return WrapEnvelope(SketchTypeId::kMorrisCounter,
                      std::move(w).TakeBytes());
}

Result<MorrisCounter> MorrisCounter::Deserialize(
    std::span<const uint8_t> bytes) {
  Result<ByteReader> payload = OpenEnvelope(SketchTypeId::kMorrisCounter, bytes);
  if (!payload.ok()) return payload.status();
  ByteReader r = std::move(payload).value();
  double a;
  uint64_t reg;
  if (Status sa = r.GetDouble(&a); !sa.ok()) return sa;
  if (Status sr = r.GetVarint(&reg); !sr.ok()) return sr;
  if (!(a >= 1.0)) return Status::Corruption("invalid Morris parameter a");
  MorrisCounter counter(a, /*seed=*/reg ^ 0x5EED);
  counter.register_ = reg;
  return counter;
}

MorrisEnsemble::MorrisEnsemble(int replicas, double a, uint64_t seed) {
  GEMS_CHECK(replicas >= 1);
  counters_.reserve(replicas);
  for (int i = 0; i < replicas; ++i) {
    counters_.emplace_back(a, Mix64(seed + i));
  }
}

void MorrisEnsemble::Increment() {
  for (MorrisCounter& c : counters_) c.Increment();
}

double MorrisEnsemble::Estimate() const {
  double sum = 0.0;
  for (const MorrisCounter& c : counters_) sum += c.Estimate();
  return sum / static_cast<double>(counters_.size());
}

}  // namespace gems
