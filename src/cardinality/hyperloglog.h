#ifndef GEMS_CARDINALITY_HYPERLOGLOG_H_
#define GEMS_CARDINALITY_HYPERLOGLOG_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/estimate.h"

/// \file
/// HyperLogLog (Flajolet, Fusy, Gandouet & Meunier 2007): the de-facto
/// standard distinct counter the paper calls out as one of the two most
/// widely deployed sketches. Replaces LogLog's geometric mean with a
/// harmonic mean, reaching standard error 1.04/sqrt(m) with one byte per
/// register, plus the original small-range (linear counting) correction.
/// Uses 64-bit hashes throughout, so the 32-bit large-range correction of
/// the original paper is unnecessary (as observed by Heule et al. 2013).

namespace gems {

/// Dense HyperLogLog with m = 2^precision one-byte registers.
class HyperLogLog {
 public:
  /// `precision` in [4, 18].
  explicit HyperLogLog(int precision, uint64_t seed = 0);

  HyperLogLog(const HyperLogLog&) = default;
  HyperLogLog& operator=(const HyperLogLog&) = default;
  HyperLogLog(HyperLogLog&&) = default;
  HyperLogLog& operator=(HyperLogLog&&) = default;

  /// Adds an item (idempotent per item).
  void Update(uint64_t item);

  /// Adds an item by its 64-bit hash (for callers that already hashed, and
  /// for cross-sketch consistency tests).
  void UpdateHash(uint64_t hash);

  /// Harmonic-mean estimate with small-range correction.
  double Count() const;

  /// Raw harmonic-mean estimate with no range correction (exposed for the
  /// E1 ablation of correction on/off).
  double RawCount() const;

  /// Count with the 1.04/sqrt(m) normal-approximation interval.
  Estimate CountEstimate(double confidence = 0.95) const;

  /// Register-wise max; requires equal precision and seed.
  Status Merge(const HyperLogLog& other);

  int precision() const { return precision_; }
  uint32_t num_registers() const {
    return static_cast<uint32_t>(registers_.size());
  }
  uint32_t NumZeroRegisters() const;
  size_t MemoryBytes() const { return registers_.size(); }
  const std::vector<uint8_t>& registers() const { return registers_; }

  /// The alpha_m bias-correction constant for m registers.
  static double Alpha(uint32_t m);

  std::vector<uint8_t> Serialize() const;
  static Result<HyperLogLog> Deserialize(const std::vector<uint8_t>& bytes);

 private:
  friend class HllPlusPlus;  // Converts sparse representations into dense.

  int precision_;
  uint64_t seed_;
  std::vector<uint8_t> registers_;
};

}  // namespace gems

#endif  // GEMS_CARDINALITY_HYPERLOGLOG_H_
