#ifndef GEMS_CARDINALITY_HYPERLOGLOG_H_
#define GEMS_CARDINALITY_HYPERLOGLOG_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/hugepage.h"
#include "common/status.h"
#include "core/estimate.h"
#include "core/io.h"
#include "core/view.h"

/// \file
/// HyperLogLog (Flajolet, Fusy, Gandouet & Meunier 2007): the de-facto
/// standard distinct counter the paper calls out as one of the two most
/// widely deployed sketches. Replaces LogLog's geometric mean with a
/// harmonic mean, reaching standard error 1.04/sqrt(m) with one byte per
/// register, plus the original small-range (linear counting) correction.
/// Uses 64-bit hashes throughout, so the 32-bit large-range correction of
/// the original paper is unnecessary (as observed by Heule et al. 2013).

namespace gems {

/// Dense HyperLogLog with m = 2^precision one-byte registers.
class HyperLogLog {
 public:
  /// Wire-format type tag, for View<HyperLogLog> wrapping.
  static constexpr SketchTypeId kTypeId = SketchTypeId::kHyperLogLog;

  /// `precision` in [4, 18].
  explicit HyperLogLog(int precision, uint64_t seed = 0);

  /// Advisor-driven constructor: the smallest precision whose standard
  /// error 1.04/sqrt(2^p) is <= `relative_error` (clamped to precision 18).
  /// kInvalidArgument if `relative_error` is outside (0, 1).
  static Result<HyperLogLog> ForRelativeError(double relative_error,
                                              uint64_t seed = 0);

  HyperLogLog(const HyperLogLog&) = default;
  HyperLogLog& operator=(const HyperLogLog&) = default;
  HyperLogLog(HyperLogLog&&) = default;
  HyperLogLog& operator=(HyperLogLog&&) = default;

  /// Adds an item (idempotent per item).
  void Update(uint64_t item);

  /// Adds an item by its 64-bit hash (for callers that already hashed, and
  /// for cross-sketch consistency tests).
  void UpdateHash(uint64_t hash);

  /// Batched ingest: hashes every item once in a hoisted loop, then applies
  /// branch-light register maxes. State is byte-identical to calling
  /// Update() per item.
  void UpdateBatch(std::span<const uint64_t> items);

  /// Batched ingest of pre-computed hash words (`Hash64(item, seed())` per
  /// item — e.g. a HashedBatch built with this sketch's seed). This is the
  /// hash-reuse entry point the engine's GROUP-BY path uses.
  void UpdateHashes(std::span<const uint64_t> hashes);

  /// Harmonic-mean estimate with small-range correction.
  double Estimate() const;

  /// Estimate with the 1.04/sqrt(m) normal-approximation interval.
  gems::Estimate EstimateWithBounds(double confidence = 0.95) const;

  /// Raw harmonic-mean estimate with no range correction (exposed for the
  /// E1 ablation of correction on/off).
  double RawCount() const;

  /// Register-wise max; requires equal precision and seed.
  Status Merge(const HyperLogLog& other);

  /// Register-wise max straight out of a wrapped serialized peer — no
  /// materialization, no allocation. Resulting state is byte-identical to
  /// Merge(*view.Materialize()).
  Status MergeFromView(const View<HyperLogLog>& view);

  int precision() const { return precision_; }
  uint64_t seed() const { return seed_; }
  uint32_t num_registers() const {
    return static_cast<uint32_t>(registers_.size());
  }
  uint32_t NumZeroRegisters() const;
  size_t MemoryBytes() const { return registers_.size(); }
  const HugeVector<uint8_t>& registers() const { return registers_; }

  /// The alpha_m bias-correction constant for m registers.
  static double Alpha(uint32_t m);

  std::vector<uint8_t> Serialize() const;
  /// Appends the wire envelope into a caller-owned buffer; byte-identical
  /// to Serialize().
  void SerializeTo(ByteSink& sink) const;
  static Result<HyperLogLog> Deserialize(std::span<const uint8_t> bytes);

 private:
  friend class HllPlusPlus;  // Converts sparse representations into dense.

  int precision_;
  uint64_t seed_;
  // Hugepage-backed above the allocator threshold (precision 18 tops out at
  // 256 KiB, so today this always takes the aligned-heap fallback — the
  // allocator seam is shared with the frequency family).
  HugeVector<uint8_t> registers_;
};

}  // namespace gems

#endif  // GEMS_CARDINALITY_HYPERLOGLOG_H_
