#ifndef GEMS_CARDINALITY_KMV_H_
#define GEMS_CARDINALITY_KMV_H_

#include <cstdint>
#include <set>
#include <span>
#include <vector>

#include "common/status.h"
#include "core/estimate.h"
#include "core/io.h"
#include "core/view.h"

/// \file
/// KMV / Theta sketch: keep the k minimum hash values of the distinct items
/// (Bar-Yossef et al. 2002; productionized as the DataSketches Theta
/// sketch). Unlike register-based sketches, KMV supports full set algebra —
/// union, intersection, and difference — which is what the online
/// advertising scenario in the paper needs for "slice and dice" reach
/// reporting (how many distinct users saw campaign A AND campaign B?).

namespace gems {

/// Result of a theta-sketch set operation. Immutable: supports estimation
/// and further set operations, but not updates.
class ThetaResult {
 public:
  ThetaResult(double theta, std::vector<uint64_t> hashes);

  /// Estimated number of distinct items in the represented set:
  /// |retained hashes| / theta.
  double Estimate() const;

  /// Estimate with the binomial-sampling confidence interval.
  gems::Estimate EstimateWithBounds(double confidence = 0.95) const;

  double theta() const { return theta_; }
  const std::vector<uint64_t>& hashes() const { return hashes_; }

 private:
  double theta_;                  // Sampling threshold in (0, 1].
  std::vector<uint64_t> hashes_;  // Retained hashes, all < theta * 2^64.
};

/// KMV sketch of the k minimum hashes.
class KmvSketch {
 public:
  /// Wire-format type tag, for View<KmvSketch> wrapping.
  static constexpr SketchTypeId kTypeId = SketchTypeId::kKmv;

  /// `k` >= 2: number of minimum hash values retained.
  explicit KmvSketch(uint32_t k, uint64_t seed = 0);

  /// Advisor-driven constructor: the smallest k whose standard error
  /// 1/sqrt(k-2) is <= `relative_error`. kInvalidArgument if
  /// `relative_error` is outside (0, 1).
  static Result<KmvSketch> ForRelativeError(double relative_error,
                                            uint64_t seed = 0);

  KmvSketch(const KmvSketch&) = default;
  KmvSketch& operator=(const KmvSketch&) = default;
  KmvSketch(KmvSketch&&) = default;
  KmvSketch& operator=(KmvSketch&&) = default;

  /// Adds an item (idempotent per item).
  void Update(uint64_t item);

  /// Batched ingest: hashes every item once in a hoisted loop, then admits
  /// hashes against a cached k-th-minimum threshold (most items fail the
  /// single compare and never touch the ordered set). State is
  /// byte-identical to per-item Update().
  void UpdateBatch(std::span<const uint64_t> items);

  /// Estimated distinct count: exact below k items, (k-1)/theta after.
  double Estimate() const;

  /// Estimate with the KMV standard error ~ 1/sqrt(k-2).
  gems::Estimate EstimateWithBounds(double confidence = 0.95) const;

  /// Union with another KMV sketch (same seed required, k may differ; the
  /// result keeps this sketch's k).
  Status Merge(const KmvSketch& other);

  /// Union streamed straight off a wrapped serialized peer — no
  /// materialization. Byte-identical result to Merge(*view.Materialize()).
  Status MergeFromView(const View<KmvSketch>& view);

  /// Current sampling threshold theta in (0, 1].
  double Theta() const;

  /// Snapshot as an immutable theta result (for set algebra).
  ThetaResult ToTheta() const;

  /// Set operations in the theta-sketch algebra.
  static ThetaResult Union(const KmvSketch& a, const KmvSketch& b);
  static ThetaResult Intersect(const KmvSketch& a, const KmvSketch& b);
  /// Items in `a` but not in `b`.
  static ThetaResult Difference(const KmvSketch& a, const KmvSketch& b);

  uint32_t k() const { return k_; }
  size_t NumRetained() const { return hashes_.size(); }
  size_t MemoryBytes() const { return hashes_.size() * sizeof(uint64_t); }

  std::vector<uint8_t> Serialize() const;
  /// Appends the wire envelope into a caller-owned buffer; byte-identical
  /// to Serialize().
  void SerializeTo(ByteSink& sink) const;
  static Result<KmvSketch> Deserialize(std::span<const uint8_t> bytes);

 private:
  uint32_t k_;
  uint64_t seed_;
  std::set<uint64_t> hashes_;  // At most k smallest distinct hash values.
};

}  // namespace gems

#endif  // GEMS_CARDINALITY_KMV_H_
