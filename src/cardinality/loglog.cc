#include "cardinality/loglog.h"

#include <cmath>

#include "common/bits.h"
#include "common/check.h"
#include "core/wire.h"
#include "hash/hash.h"

namespace gems {
namespace {

// Asymptotic alpha for the geometric-mean LogLog estimator:
// alpha = (Gamma(-1/m)(1-2^{1/m})/ln 2)^{-m} -> 0.39701 as m -> infinity.
// For the register counts we support (m >= 16) the asymptotic constant is
// accurate to well under the sketch's own standard error.
constexpr double kAlphaInfinity = 0.39701;

}  // namespace

LogLog::LogLog(int precision, uint64_t seed)
    : precision_(precision), seed_(seed) {
  GEMS_CHECK(precision >= 4 && precision <= 16);
  registers_.assign(uint64_t{1} << precision, 0);
}

void LogLog::Update(uint64_t item) {
  const uint64_t h = Hash64(item, seed_);
  const uint32_t index = static_cast<uint32_t>(h >> (64 - precision_));
  // rho = rank of the leftmost 1 in the remaining 64-p bits (1-based).
  const int width = 64 - precision_;
  const int rho = RankOfLeftmostOne(h, width);
  if (rho > registers_[index]) {
    registers_[index] = static_cast<uint8_t>(rho);
  }
}

double LogLog::Estimate() const {
  const double m = static_cast<double>(registers_.size());
  double sum = 0.0;
  for (uint8_t reg : registers_) sum += reg;
  return kAlphaInfinity * m * std::pow(2.0, sum / m);
}

gems::Estimate LogLog::EstimateWithBounds(double confidence) const {
  const double n = Estimate();
  const double std_error =
      1.30 / std::sqrt(static_cast<double>(registers_.size())) * n;
  return EstimateFromStdError(n, std_error, confidence);
}

Status LogLog::Merge(const LogLog& other) {
  if (precision_ != other.precision_ || seed_ != other.seed_) {
    return Status::InvalidArgument(
        "LogLog merge requires equal precision and seed");
  }
  for (size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
  return Status::Ok();
}

std::vector<uint8_t> LogLog::Serialize() const {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(precision_));
  w.PutU64(seed_);
  w.PutRaw(registers_.data(), registers_.size());
  return WrapEnvelope(SketchTypeId::kLogLog,
                      std::move(w).TakeBytes());
}

Result<LogLog> LogLog::Deserialize(std::span<const uint8_t> bytes) {
  Result<ByteReader> payload = OpenEnvelope(SketchTypeId::kLogLog, bytes);
  if (!payload.ok()) return payload.status();
  ByteReader r = std::move(payload).value();
  uint8_t precision;
  uint64_t seed;
  if (Status sp = r.GetU8(&precision); !sp.ok()) return sp;
  if (Status ss = r.GetU64(&seed); !ss.ok()) return ss;
  if (precision < 4 || precision > 16) {
    return Status::Corruption("invalid LogLog precision");
  }
  LogLog ll(precision, seed);
  if (Status sr = r.GetRaw(ll.registers_.data(), ll.registers_.size());
      !sr.ok()) {
    return sr;
  }
  return ll;
}

}  // namespace gems
