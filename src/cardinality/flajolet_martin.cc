#include "cardinality/flajolet_martin.h"

#include <cmath>

#include "common/bits.h"
#include "common/check.h"
#include "core/wire.h"
#include "hash/hash.h"

namespace gems {
namespace {

// Flajolet-Martin's magic constant phi (correction factor).
constexpr double kPhi = 0.77351;

// Position (0-based) of the lowest zero bit of `word`.
inline int LowestZeroBit(uint64_t word) {
  return CountTrailingZeros64(~word);
}

}  // namespace

FlajoletMartin::FlajoletMartin(uint32_t num_bitmaps, uint64_t seed)
    : num_bitmaps_(num_bitmaps), seed_(seed) {
  GEMS_CHECK(num_bitmaps >= 1);
  GEMS_CHECK(IsPowerOfTwo(num_bitmaps));
  bitmaps_.assign(num_bitmaps, 0);
}

void FlajoletMartin::Update(uint64_t item) {
  const uint64_t h = Hash64(item, seed_);
  const uint32_t bitmap = static_cast<uint32_t>(h & (num_bitmaps_ - 1));
  // Remaining bits choose a geometric position: position = number of
  // trailing zeros of the high bits.
  const uint64_t rest = h >> CeilLog2(num_bitmaps_ == 1 ? 2 : num_bitmaps_);
  const int position = rest == 0 ? 63 : CountTrailingZeros64(rest);
  bitmaps_[bitmap] |= uint64_t{1} << (position < 64 ? position : 63);
}

double FlajoletMartin::Estimate() const {
  // Mean position of the lowest unset bit across bitmaps.
  double sum = 0.0;
  for (uint64_t word : bitmaps_) sum += LowestZeroBit(word);
  const double mean = sum / static_cast<double>(num_bitmaps_);
  return static_cast<double>(num_bitmaps_) / kPhi * std::pow(2.0, mean);
}

gems::Estimate FlajoletMartin::EstimateWithBounds(double confidence) const {
  const double n = Estimate();
  const double std_error = 0.78 / std::sqrt(num_bitmaps_) * n;
  return EstimateFromStdError(n, std_error, confidence);
}

Status FlajoletMartin::Merge(const FlajoletMartin& other) {
  if (num_bitmaps_ != other.num_bitmaps_ || seed_ != other.seed_) {
    return Status::InvalidArgument(
        "FlajoletMartin merge requires equal shape and seed");
  }
  for (size_t i = 0; i < bitmaps_.size(); ++i) bitmaps_[i] |= other.bitmaps_[i];
  return Status::Ok();
}

std::vector<uint8_t> FlajoletMartin::Serialize() const {
  ByteWriter w;
  w.PutU32(num_bitmaps_);
  w.PutU64(seed_);
  for (uint64_t word : bitmaps_) w.PutU64(word);
  return WrapEnvelope(SketchTypeId::kFlajoletMartin,
                      std::move(w).TakeBytes());
}

Result<FlajoletMartin> FlajoletMartin::Deserialize(
    std::span<const uint8_t> bytes) {
  Result<ByteReader> payload = OpenEnvelope(SketchTypeId::kFlajoletMartin, bytes);
  if (!payload.ok()) return payload.status();
  ByteReader r = std::move(payload).value();
  uint32_t num_bitmaps;
  uint64_t seed;
  if (Status sb = r.GetU32(&num_bitmaps); !sb.ok()) return sb;
  if (Status ss = r.GetU64(&seed); !ss.ok()) return ss;
  if (num_bitmaps == 0 || !IsPowerOfTwo(num_bitmaps) ||
      num_bitmaps > (1u << 24)) {
    return Status::Corruption("invalid FlajoletMartin shape");
  }
  FlajoletMartin fm(num_bitmaps, seed);
  for (uint64_t& word : fm.bitmaps_) {
    if (Status sw = r.GetU64(&word); !sw.ok()) return sw;
  }
  return fm;
}

}  // namespace gems
