#include "cardinality/linear_counting.h"

#include <cmath>

#include "common/bits.h"
#include "common/check.h"
#include "core/wire.h"
#include "hash/hash.h"

namespace gems {

LinearCounting::LinearCounting(uint64_t num_bits, uint64_t seed)
    : num_bits_((num_bits + 63) / 64 * 64), seed_(seed) {
  GEMS_CHECK(num_bits > 0);
  bitmap_.assign(num_bits_ / 64, 0);
}

void LinearCounting::Update(uint64_t item) {
  const uint64_t bit = Hash64(item, seed_) % num_bits_;
  bitmap_[bit / 64] |= uint64_t{1} << (bit % 64);
}

uint64_t LinearCounting::NumBitsSet() const {
  uint64_t set = 0;
  for (uint64_t word : bitmap_) set += PopCount64(word);
  return set;
}

double LinearCounting::Estimate() const {
  const uint64_t zeros = num_bits_ - NumBitsSet();
  const double m = static_cast<double>(num_bits_);
  if (zeros == 0) return m * std::log(m);  // Saturated.
  return -m * std::log(static_cast<double>(zeros) / m);
}

gems::Estimate LinearCounting::EstimateWithBounds(double confidence) const {
  const double m = static_cast<double>(num_bits_);
  const double n = Estimate();
  const double t = n / m;  // Load factor.
  // Asymptotic variance of the MLE: m(e^t - t - 1).
  const double variance = std::max(0.0, m * (std::exp(t) - t - 1.0));
  return EstimateFromStdError(n, std::sqrt(variance), confidence);
}

Status LinearCounting::Merge(const LinearCounting& other) {
  if (num_bits_ != other.num_bits_ || seed_ != other.seed_) {
    return Status::InvalidArgument(
        "LinearCounting merge requires equal size and seed");
  }
  for (size_t i = 0; i < bitmap_.size(); ++i) bitmap_[i] |= other.bitmap_[i];
  return Status::Ok();
}

std::vector<uint8_t> LinearCounting::Serialize() const {
  ByteWriter w;
  w.PutU64(num_bits_);
  w.PutU64(seed_);
  for (uint64_t word : bitmap_) w.PutU64(word);
  return WrapEnvelope(SketchTypeId::kLinearCounting,
                      std::move(w).TakeBytes());
}

Result<LinearCounting> LinearCounting::Deserialize(
    std::span<const uint8_t> bytes) {
  Result<ByteReader> payload = OpenEnvelope(SketchTypeId::kLinearCounting, bytes);
  if (!payload.ok()) return payload.status();
  ByteReader r = std::move(payload).value();
  uint64_t num_bits, seed;
  if (Status sb = r.GetU64(&num_bits); !sb.ok()) return sb;
  if (Status ss = r.GetU64(&seed); !ss.ok()) return ss;
  if (num_bits == 0 || num_bits % 64 != 0 || num_bits > (uint64_t{1} << 40)) {
    return Status::Corruption("invalid LinearCounting size");
  }
  LinearCounting lc(num_bits, seed);
  for (uint64_t& word : lc.bitmap_) {
    if (Status sw = r.GetU64(&word); !sw.ok()) return sw;
  }
  return lc;
}

}  // namespace gems
