#ifndef GEMS_CARDINALITY_LINEAR_COUNTING_H_
#define GEMS_CARDINALITY_LINEAR_COUNTING_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "core/estimate.h"

/// \file
/// Linear counting (Whang et al. 1990): hash each item to one bit of an
/// m-bit map and estimate cardinality as n̂ = -m·ln(V), where V is the
/// fraction of zero bits. Space is linear in the cardinality (like a Bloom
/// filter) but it is the most accurate estimator at small n, which is why
/// HyperLogLog implementations fall back to it below ~2.5m (the "small
/// range correction" this library's HLL uses).

namespace gems {

/// A linear counter over an m-bit bitmap.
class LinearCounting {
 public:
  /// `num_bits` is rounded up to a multiple of 64. `seed` picks the hash.
  explicit LinearCounting(uint64_t num_bits, uint64_t seed = 0);

  LinearCounting(const LinearCounting&) = default;
  LinearCounting& operator=(const LinearCounting&) = default;
  LinearCounting(LinearCounting&&) = default;
  LinearCounting& operator=(LinearCounting&&) = default;

  /// Adds an item (idempotent per item).
  void Update(uint64_t item);

  /// Estimated number of distinct items. Returns m·ln(m) as a saturated
  /// upper estimate when every bit is set.
  double Estimate() const;

  /// Estimate with asymptotic-variance confidence interval (Whang et al.
  /// eq. 4).
  gems::Estimate EstimateWithBounds(double confidence = 0.95) const;

  /// Bitwise-OR union; requires equal size and seed.
  Status Merge(const LinearCounting& other);

  uint64_t num_bits() const { return num_bits_; }
  uint64_t NumBitsSet() const;
  size_t MemoryBytes() const { return bitmap_.size() * sizeof(uint64_t); }

  std::vector<uint8_t> Serialize() const;
  static Result<LinearCounting> Deserialize(
      std::span<const uint8_t> bytes);

 private:
  uint64_t num_bits_;
  uint64_t seed_;
  std::vector<uint64_t> bitmap_;
};

}  // namespace gems

#endif  // GEMS_CARDINALITY_LINEAR_COUNTING_H_
