#ifndef GEMS_CARDINALITY_LOGLOG_H_
#define GEMS_CARDINALITY_LOGLOG_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "core/estimate.h"

/// \file
/// LogLog cardinality estimator (Durand & Flajolet 2003): keeps only the
/// maximum rho (leading-zero rank) per register instead of a whole FM
/// bitmap, cutting space from O(log n) to O(log log n) bits per register.
/// Standard error ~1.30/sqrt(m) — superseded by HyperLogLog's harmonic
/// mean (1.04/sqrt(m)) but kept both for the historical record the paper
/// traces and as the accuracy baseline in experiment E1.

namespace gems {

/// LogLog sketch with m = 2^precision registers (geometric mean estimator).
class LogLog {
 public:
  /// `precision` in [4, 16]; m = 2^precision registers of one byte each.
  explicit LogLog(int precision, uint64_t seed = 0);

  LogLog(const LogLog&) = default;
  LogLog& operator=(const LogLog&) = default;
  LogLog(LogLog&&) = default;
  LogLog& operator=(LogLog&&) = default;

  /// Adds an item (idempotent per item).
  void Update(uint64_t item);

  /// n̂ = alpha_m * m * 2^{(1/m) sum_j M_j}.
  double Estimate() const;

  /// Estimate with the 1.30/sqrt(m) normal-approximation interval.
  gems::Estimate EstimateWithBounds(double confidence = 0.95) const;

  /// Register-wise max; requires equal precision and seed.
  Status Merge(const LogLog& other);

  int precision() const { return precision_; }
  uint32_t num_registers() const { return static_cast<uint32_t>(registers_.size()); }
  size_t MemoryBytes() const { return registers_.size(); }

  std::vector<uint8_t> Serialize() const;
  static Result<LogLog> Deserialize(std::span<const uint8_t> bytes);

 private:
  int precision_;
  uint64_t seed_;
  std::vector<uint8_t> registers_;
};

}  // namespace gems

#endif  // GEMS_CARDINALITY_LOGLOG_H_
