#ifndef GEMS_CARDINALITY_HLLPP_H_
#define GEMS_CARDINALITY_HLLPP_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "cardinality/hyperloglog.h"
#include "common/status.h"
#include "core/estimate.h"

/// \file
/// HyperLogLog++ (Heule, Nunkesser & Hall 2013) — the "HLL in practice"
/// engineering pass from Google that the paper cites as an example of
/// industrial hardening of a theoretical sketch. All three improvements
/// are implemented:
///
///  1. 64-bit hash function (removes the large-range correction entirely).
///  2. Sparse representation: below ~m/4 distinct items the sketch stores
///     (index, rho) pairs at a much higher precision p' = 25, giving
///     near-exact linear-counting accuracy at small cardinalities while
///     using less memory than the dense array; it degrades gracefully to
///     the dense form when it grows.
///  3. Empirical bias correction of the dense raw estimator in its
///     mid-range, with linear-counting preferred below a per-precision
///     threshold. The bias tables were regenerated against this library's
///     own hash pipeline (Heule et al.'s methodology) for precisions
///     10..14; other precisions fall back to the classic corrections.
///
/// The E1 bench quantifies each correction's effect (ablation E1b).

namespace gems {

/// HLL++ sketch: sparse then dense.
class HllPlusPlus {
 public:
  /// Wire-format type tag, for View<HllPlusPlus> wrapping.
  static constexpr SketchTypeId kTypeId = SketchTypeId::kHllPlusPlus;

  /// `precision` in [4, 18] controls the dense register array (2^p bytes).
  explicit HllPlusPlus(int precision, uint64_t seed = 0);

  /// Advisor-driven constructor: the smallest precision whose dense
  /// standard error 1.04/sqrt(2^p) is <= `relative_error`.
  /// kInvalidArgument if `relative_error` is outside (0, 1).
  static Result<HllPlusPlus> ForRelativeError(double relative_error,
                                              uint64_t seed = 0);

  HllPlusPlus(const HllPlusPlus&) = default;
  HllPlusPlus& operator=(const HllPlusPlus&) = default;
  HllPlusPlus(HllPlusPlus&&) = default;
  HllPlusPlus& operator=(HllPlusPlus&&) = default;

  /// Adds an item (idempotent per item).
  void Update(uint64_t item);

  /// Batched ingest: hashes every item once in a hoisted loop; while
  /// sparse, feeds the sparse map (converting to dense mid-batch if it
  /// fills), then switches to the dense branch-light register pass for the
  /// rest of the batch. State is byte-identical to per-item Update().
  void UpdateBatch(std::span<const uint64_t> items);

  /// Cardinality estimate: linear counting at sparse precision while
  /// sparse; dense HLL estimate (with small-range correction) after.
  double Estimate() const;

  /// Estimate with a normal-approximation interval (uses the
  /// representation's current standard-error model).
  gems::Estimate EstimateWithBounds(double confidence = 0.95) const;

  /// Merges `other` into this sketch; requires equal precision and seed.
  Status Merge(const HllPlusPlus& other);

  /// Merges a wrapped serialized peer. Sparse/dense conversion makes a
  /// true in-place register walk impractical, so this materializes one
  /// temporary from the view (skipping only the caller-side envelope copy)
  /// and merges it — byte-identical to Merge(*view.Materialize()) by
  /// construction.
  Status MergeFromView(const View<HllPlusPlus>& view);

  bool IsSparse() const { return is_sparse_; }
  int precision() const { return precision_; }
  size_t MemoryBytes() const;

  /// Forces conversion to the dense representation (for tests/ablation).
  void ConvertToDense();

  std::vector<uint8_t> Serialize() const;
  /// Appends the wire envelope into a caller-owned buffer; byte-identical
  /// to Serialize().
  void SerializeTo(ByteSink& sink) const;
  static Result<HllPlusPlus> Deserialize(std::span<const uint8_t> bytes);

  /// The sparse precision p' used by the sparse representation.
  static constexpr int kSparsePrecision = 25;

 private:
  void UpdateSparse(uint64_t hash);
  /// Number of sparse entries at which we convert to dense.
  size_t SparseCapacity() const;

  int precision_;
  uint64_t seed_;
  bool is_sparse_;
  /// Sparse mode: map sparse-index (top 25 hash bits) -> max rho of the
  /// remaining 39 bits.
  std::unordered_map<uint32_t, uint8_t> sparse_;
  /// Dense mode.
  HyperLogLog dense_;
};

}  // namespace gems

#endif  // GEMS_CARDINALITY_HLLPP_H_
