#include "cardinality/hllpp.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/bits.h"
#include "common/check.h"
#include "core/params.h"
#include "core/wire.h"
#include "hash/hash.h"
#include "hash/hashed_batch.h"

namespace gems {
namespace {

constexpr int kSparseWidth = 64 - HllPlusPlus::kSparsePrecision;  // 39.

// Empirical bias of the raw HLL estimator in its mid-range (raw estimate
// between ~m/8 and ~6m), regenerated with this library's own hash
// pipeline (120 trials per point, 24 points per precision) in the spirit
// of Heule et al.'s appendix tables. Rows: precisions 10..14. First array:
// mean raw estimate at the sampled cardinalities; second: its bias.
constexpr int kBiasTableMinP = 10;
constexpr int kBiasTableMaxP = 14;
constexpr int kBiasPoints = 24;

constexpr double kRawEstimateTable[5][kBiasPoints] = {
    {801.3, 941.6, 1098.4, 1269.1, 1454.0, 1650.7, 1863.0, 2084.7, 2313.4,
     2548.0, 2788.1, 3032.4, 3286.1, 3538.3, 3791.3, 4047.7, 4307.8, 4569.6,
     4827.1, 5084.6, 5347.7, 5607.8, 5860.9, 6121.5},
    {1603.2, 1885.4, 2199.3, 2541.8, 2913.0, 3307.8, 3728.3, 4167.4, 4622.6,
     5095.4, 5577.7, 6062.6, 6558.4, 7062.7, 7567.4, 8082.2, 8606.4, 9123.3,
     9638.4, 10161.2, 10668.2, 11195.8, 11722.9, 12241.3},
    {3207.0, 3771.5, 4396.4, 5077.7, 5818.9, 6612.6, 7458.1, 8338.8, 9251.5,
     10208.2, 11177.0, 12166.3, 13171.7, 14182.8, 15206.2, 16228.4, 17251.0,
     18294.6, 19345.3, 20391.1, 21441.5, 22489.3, 23536.0, 24599.8},
    {6415.1, 7540.6, 8789.9, 10157.8, 11643.9, 13234.7, 14917.7, 16671.5,
     18510.9, 20390.5, 22329.8, 24308.9, 26327.3, 28339.1, 30371.7, 32441.0,
     34500.9, 36591.8, 38671.7, 40745.0, 42854.4, 44933.4, 47025.0, 49112.7},
    {12831.5, 15085.9, 17586.2, 20322.5, 23282.6, 26460.0, 29821.2, 33343.6,
     37019.3, 40806.8, 44689.4, 48635.3, 52664.6, 56771.1, 60868.5, 64990.7,
     69139.9, 73315.2, 77508.9, 81694.8, 85898.4, 90081.6, 94281.1,
     98476.4}};

constexpr double kBiasTable[5][kBiasPoints] = {
    {673.3, 552.0, 447.3, 356.4, 279.7, 214.9, 165.6, 125.7, 92.8, 65.9,
     44.4, 27.2, 19.3, 10.0, 1.3, -3.7, -5.2, -5.0, -9.0, -13.2, -11.6,
     -13.1, -21.6, -22.5},
    {1347.2, 1106.3, 897.0, 716.5, 564.5, 436.1, 333.5, 249.5, 181.5, 131.3,
     90.4, 52.2, 24.8, 6.0, -12.4, -20.8, -19.7, -26.0, -33.9, -34.3, -50.4,
     -46.0, -42.0, -46.7},
    {2695.0, 2213.2, 1791.8, 1427.0, 1121.8, 869.3, 668.5, 503.0, 369.4,
     279.8, 202.4, 145.5, 104.6, 69.4, 46.5, 22.5, -1.2, -3.9, 0.6, 0.1,
     4.3, 5.8, 6.2, 23.8},
    {5391.1, 4424.1, 3580.8, 2856.2, 2249.9, 1748.1, 1338.6, 999.9, 746.7,
     533.8, 380.5, 267.2, 193.0, 112.3, 52.4, 29.2, -3.4, -5.0, -17.7,
     -36.9, -20.0, -33.5, -34.5, -39.3},
    {10783.5, 8852.8, 7168.2, 5719.4, 4494.5, 3486.8, 2663.0, 2000.3, 1490.9,
     1093.4, 790.9, 551.8, 396.1, 317.5, 229.9, 167.0, 131.3, 121.5, 130.1,
     131.0, 149.6, 147.6, 162.1, 172.4}};

// Linear-interpolated bias of the raw estimate `raw` at precision p;
// 0 outside the tabulated precisions/range.
double BiasEstimate(int p, double raw) {
  if (p < kBiasTableMinP || p > kBiasTableMaxP) return 0.0;
  const double* raws = kRawEstimateTable[p - kBiasTableMinP];
  const double* biases = kBiasTable[p - kBiasTableMinP];
  if (raw <= raws[0]) return biases[0];
  if (raw >= raws[kBiasPoints - 1]) return biases[kBiasPoints - 1];
  int hi = 1;
  while (raws[hi] < raw) ++hi;
  const double t = (raw - raws[hi - 1]) / (raws[hi] - raws[hi - 1]);
  return biases[hi - 1] + t * (biases[hi] - biases[hi - 1]);
}

// Cardinality below which linear counting over the dense registers is
// preferred to the bias-corrected raw estimate (Heule et al.'s empirical
// thresholds for p = 10..14).
double LinearCountingThreshold(int p) {
  switch (p) {
    case 10:
      return 900;
    case 11:
      return 1800;
    case 12:
      return 3100;
    case 13:
      return 6500;
    case 14:
      return 11500;
    default:
      return 0;  // Outside the table: fall back to plain HLL behaviour.
  }
}

}  // namespace

HllPlusPlus::HllPlusPlus(int precision, uint64_t seed)
    : precision_(precision),
      seed_(seed),
      is_sparse_(true),
      dense_(precision, seed) {
  GEMS_CHECK(precision >= 4 && precision <= 18);
}

Result<HllPlusPlus> HllPlusPlus::ForRelativeError(double relative_error,
                                                  uint64_t seed) {
  if (!(relative_error > 0.0 && relative_error < 1.0)) {
    return Status::InvalidArgument(
        "HLL++ relative error must be in (0, 1)");
  }
  return HllPlusPlus(HllPrecisionFor(relative_error), seed);
}

size_t HllPlusPlus::SparseCapacity() const {
  // Convert when the sparse map's footprint approaches the dense array's.
  // Each map entry costs ~16 bytes; dense costs 2^p bytes.
  return (uint64_t{1} << precision_) / 8;
}

void HllPlusPlus::UpdateSparse(uint64_t hash) {
  const uint32_t index =
      static_cast<uint32_t>(hash >> (64 - kSparsePrecision));
  const int rho = RankOfLeftmostOne(hash, kSparseWidth);
  uint8_t& reg = sparse_[index];
  if (rho > reg) reg = static_cast<uint8_t>(rho);
  if (sparse_.size() > SparseCapacity()) ConvertToDense();
}

void HllPlusPlus::Update(uint64_t item) {
  const uint64_t hash = Hash64(item, seed_);
  if (is_sparse_) {
    UpdateSparse(hash);
  } else {
    dense_.UpdateHash(hash);
  }
}

void HllPlusPlus::UpdateBatch(std::span<const uint64_t> items) {
  uint64_t hashes[256];
  while (!items.empty()) {
    const size_t n = std::min(items.size(), std::size(hashes));
    HashBatch(items.first(n), seed_, hashes);
    size_t i = 0;
    // Sparse mode feeds the map hash by hash (a conversion can trigger at
    // any item); the moment the sketch is dense, the rest of the chunk
    // takes the dense branch-light register pass.
    while (is_sparse_ && i < n) UpdateSparse(hashes[i++]);
    if (i < n) {
      dense_.UpdateHashes(std::span<const uint64_t>(hashes + i, n - i));
    }
    items = items.subspan(n);
  }
}

void HllPlusPlus::ConvertToDense() {
  if (!is_sparse_) return;
  const int shift = kSparsePrecision - precision_;
  for (const auto& [index, rho] : sparse_) {
    const uint32_t dense_index = index >> shift;
    // The bits of the sparse index below the dense prefix.
    int dense_rho;
    if (shift == 0) {
      dense_rho = rho;
    } else {
      const uint32_t middle = index & ((uint32_t{1} << shift) - 1);
      if (middle != 0) {
        dense_rho = RankOfLeftmostOne(middle, shift);
      } else {
        dense_rho = shift + rho;
      }
    }
    if (dense_rho > dense_.registers_[dense_index]) {
      dense_.registers_[dense_index] = static_cast<uint8_t>(dense_rho);
    }
  }
  sparse_.clear();
  is_sparse_ = false;
}

double HllPlusPlus::Estimate() const {
  if (is_sparse_) {
    // Linear counting over the 2^25 sparse buckets: essentially exact at
    // the cardinalities where the sketch is still sparse.
    const double m = static_cast<double>(uint64_t{1} << kSparsePrecision);
    const double zeros = m - static_cast<double>(sparse_.size());
    if (zeros <= 0.0) return m * std::log(m);
    return m * std::log(m / zeros);
  }
  // Dense: Heule et al.'s estimator selection. For tabulated precisions,
  // bias-correct the raw estimate in its mid-range and prefer linear
  // counting below the empirical threshold; otherwise fall back to the
  // classic corrected estimator.
  const double threshold = LinearCountingThreshold(precision_);
  if (threshold == 0) return dense_.Estimate();
  const double m = static_cast<double>(dense_.num_registers());
  const uint32_t zeros = dense_.NumZeroRegisters();
  if (zeros > 0) {
    const double linear = m * std::log(m / static_cast<double>(zeros));
    if (linear <= threshold) return linear;
  }
  const double raw = dense_.RawCount();
  if (raw <= 5.0 * m) return raw - BiasEstimate(precision_, raw);
  return raw;
}

gems::Estimate HllPlusPlus::EstimateWithBounds(double confidence) const {
  const double n = Estimate();
  double std_error;
  if (is_sparse_) {
    const double m = static_cast<double>(uint64_t{1} << kSparsePrecision);
    const double t = n / m;
    std_error = std::sqrt(std::max(0.0, m * (std::exp(t) - t - 1.0)));
  } else {
    std_error =
        1.04 / std::sqrt(static_cast<double>(dense_.num_registers())) * n;
  }
  return EstimateFromStdError(n, std_error, confidence);
}

Status HllPlusPlus::Merge(const HllPlusPlus& other) {
  if (precision_ != other.precision_ || seed_ != other.seed_) {
    return Status::InvalidArgument(
        "HLL++ merge requires equal precision and seed");
  }
  if (is_sparse_ && other.is_sparse_) {
    for (const auto& [index, rho] : other.sparse_) {
      uint8_t& reg = sparse_[index];
      if (rho > reg) reg = rho;
    }
    if (sparse_.size() > SparseCapacity()) ConvertToDense();
    return Status::Ok();
  }
  ConvertToDense();
  if (other.is_sparse_) {
    // Convert a copy of the other side without mutating it.
    HllPlusPlus copy = other;
    copy.ConvertToDense();
    return dense_.Merge(copy.dense_);
  }
  return dense_.Merge(other.dense_);
}

size_t HllPlusPlus::MemoryBytes() const {
  if (is_sparse_) {
    return sparse_.size() * (sizeof(uint32_t) + sizeof(uint8_t) +
                             2 * sizeof(void*));
  }
  return dense_.MemoryBytes();
}

Status HllPlusPlus::MergeFromView(const View<HllPlusPlus>& view) {
  Result<HllPlusPlus> other = view.Materialize();
  if (!other.ok()) return other.status();
  return Merge(other.value());
}

std::vector<uint8_t> HllPlusPlus::Serialize() const {
  std::vector<uint8_t> out;
  ByteSink sink(&out);
  SerializeTo(sink);
  return out;
}

void HllPlusPlus::SerializeTo(ByteSink& sink) const {
  EnvelopeBuilder env(sink, kTypeId);
  sink.PutU8(static_cast<uint8_t>(precision_));
  sink.PutU64(seed_);
  sink.PutU8(is_sparse_ ? 1 : 0);
  if (is_sparse_) {
    // Canonical order: the map iterates in unspecified order, but equal
    // states must produce identical bytes (and checksums) on the wire.
    std::vector<std::pair<uint32_t, uint8_t>> entries(sparse_.begin(),
                                                      sparse_.end());
    std::sort(entries.begin(), entries.end());
    sink.PutVarint(entries.size());
    for (const auto& [index, rho] : entries) {
      sink.PutU32(index);
      sink.PutU8(rho);
    }
  } else {
    sink.PutRaw(dense_.registers().data(), dense_.registers().size());
  }
}

Result<HllPlusPlus> HllPlusPlus::Deserialize(
    std::span<const uint8_t> bytes) {
  Result<ByteReader> payload = OpenEnvelope(SketchTypeId::kHllPlusPlus, bytes);
  if (!payload.ok()) return payload.status();
  ByteReader r = std::move(payload).value();
  uint8_t precision, sparse_flag;
  uint64_t seed;
  if (Status sp = r.GetU8(&precision); !sp.ok()) return sp;
  if (Status ss = r.GetU64(&seed); !ss.ok()) return ss;
  if (Status sf = r.GetU8(&sparse_flag); !sf.ok()) return sf;
  if (precision < 4 || precision > 18) {
    return Status::Corruption("invalid HLL++ precision");
  }
  HllPlusPlus sketch(precision, seed);
  if (sparse_flag == 1) {
    uint64_t count;
    if (Status sc = r.GetVarint(&count); !sc.ok()) return sc;
    if (count > (uint64_t{1} << kSparsePrecision)) {
      return Status::Corruption("sparse entry count too large");
    }
    for (uint64_t i = 0; i < count; ++i) {
      uint32_t index;
      uint8_t rho;
      if (Status si = r.GetU32(&index); !si.ok()) return si;
      if (Status sr = r.GetU8(&rho); !sr.ok()) return sr;
      if (index >= (uint64_t{1} << kSparsePrecision)) {
        return Status::Corruption("sparse index out of range");
      }
      sketch.sparse_[index] = rho;
    }
  } else if (sparse_flag == 0) {
    sketch.is_sparse_ = false;
    if (Status sr = r.GetRaw(sketch.dense_.registers_.data(),
                             sketch.dense_.registers_.size());
        !sr.ok()) {
      return sr;
    }
  } else {
    return Status::Corruption("invalid sparse flag");
  }
  return sketch;
}

}  // namespace gems
