#include "cardinality/hyperloglog.h"

#include <algorithm>
#include <cmath>

#include "common/bits.h"
#include "common/check.h"
#include "common/prefetch.h"
#include "core/params.h"
#include "core/wire.h"
#include "hash/hash.h"
#include "hash/hashed_batch.h"
#include "simd/dispatch.h"

namespace gems {

HyperLogLog::HyperLogLog(int precision, uint64_t seed)
    : precision_(precision), seed_(seed) {
  GEMS_CHECK(precision >= 4 && precision <= 18);
  registers_.assign(uint64_t{1} << precision, 0);
}

Result<HyperLogLog> HyperLogLog::ForRelativeError(double relative_error,
                                                  uint64_t seed) {
  if (!(relative_error > 0.0 && relative_error < 1.0)) {
    return Status::InvalidArgument(
        "HyperLogLog relative error must be in (0, 1)");
  }
  return HyperLogLog(HllPrecisionFor(relative_error), seed);
}

double HyperLogLog::Alpha(uint32_t m) {
  switch (m) {
    case 16:
      return 0.673;
    case 32:
      return 0.697;
    case 64:
      return 0.709;
    default:
      return 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
  }
}

void HyperLogLog::Update(uint64_t item) { UpdateHash(Hash64(item, seed_)); }

void HyperLogLog::UpdateHash(uint64_t hash) {
  const uint32_t index = static_cast<uint32_t>(hash >> (64 - precision_));
  const int width = 64 - precision_;
  const int rho = RankOfLeftmostOne(hash, width);
  if (rho > registers_[index]) {
    registers_[index] = static_cast<uint8_t>(rho);
  }
}

void HyperLogLog::UpdateHashes(std::span<const uint64_t> hashes) {
  // Branch-light register pass (unconditional max, hoisted shift) via the
  // dispatched kernel table.
  simd::Kernels().hll_update_hashes(registers_.data(), precision_,
                                    hashes.data(), hashes.size());
}

void HyperLogLog::UpdateBatch(std::span<const uint64_t> items) {
  const uint64_t mixed_seed = Mix64(seed_ + 0x9E3779B97F4A7C15ULL);
  const simd::SimdKernels& kernels = simd::Kernels();
  // Once the register file outgrows the L2 cache, random register touches
  // miss; split ingest into a two-phase hash-then-touch pass per chunk:
  // materialize the chunk's hashes, prefetch their registers, then run the
  // register max over lines already in flight. hll_ingest is defined as
  // hll_update_hashes over the mixed hash words, so both paths are
  // bit-identical.
  constexpr size_t kPrefetchMinRegisters = size_t{1} << 17;
  if (PrefetchEnabled() && registers_.size() >= kPrefetchMinRegisters) {
    const int shift = 64 - precision_;
    uint64_t hashes[256];
    while (!items.empty()) {
      const size_t n = std::min(items.size(), std::size(hashes));
      kernels.mix64_batch(items.data(), n, mixed_seed, hashes);
      for (size_t i = 0; i < n; ++i) {
        PrefetchForWrite(&registers_[hashes[i] >> shift]);
      }
      kernels.hll_update_hashes(registers_.data(), precision_, hashes, n);
      items = items.subspan(n);
    }
    return;
  }
  // Fused ingest kernel: the hash words stay in vector registers between
  // the mixing pass and the register max instead of round-tripping through
  // a stack chunk. Bit-identical to per-item Update().
  kernels.hll_ingest(registers_.data(), precision_, items.data(),
                     items.size(), mixed_seed);
}

double HyperLogLog::RawCount() const {
  const double m = static_cast<double>(registers_.size());
  double harmonic;
  uint32_t zeros;
  simd::Kernels().hll_harmonic_sum(registers_.data(), registers_.size(),
                                   &harmonic, &zeros);
  return Alpha(static_cast<uint32_t>(registers_.size())) * m * m / harmonic;
}

uint32_t HyperLogLog::NumZeroRegisters() const {
  double harmonic;
  uint32_t zeros;
  simd::Kernels().hll_harmonic_sum(registers_.data(), registers_.size(),
                                   &harmonic, &zeros);
  return zeros;
}

double HyperLogLog::Estimate() const {
  // One kernel pass yields both the harmonic sum and the zero-register
  // count the small-range correction needs.
  const double m = static_cast<double>(registers_.size());
  double harmonic;
  uint32_t zeros;
  simd::Kernels().hll_harmonic_sum(registers_.data(), registers_.size(),
                                   &harmonic, &zeros);
  const double raw =
      Alpha(static_cast<uint32_t>(registers_.size())) * m * m / harmonic;
  if (raw <= 2.5 * m && zeros > 0) {
    // Small-range correction: linear counting over the registers.
    return m * std::log(m / static_cast<double>(zeros));
  }
  return raw;
}

gems::Estimate HyperLogLog::EstimateWithBounds(double confidence) const {
  const double n = Estimate();
  const double std_error =
      1.04 / std::sqrt(static_cast<double>(registers_.size())) * n;
  return EstimateFromStdError(n, std_error, confidence);
}

Status HyperLogLog::Merge(const HyperLogLog& other) {
  if (precision_ != other.precision_ || seed_ != other.seed_) {
    return Status::InvalidArgument(
        "HyperLogLog merge requires equal precision and seed");
  }
  simd::Kernels().u8_max(registers_.data(), other.registers_.data(),
                         registers_.size());
  return Status::Ok();
}

Status HyperLogLog::MergeFromView(const View<HyperLogLog>& view) {
  // Mirrors Deserialize's validation order, then Merge's compatibility
  // check, so the two paths fail with identical statuses — but the
  // register max runs straight over the wrapped payload.
  ByteReader r = view.PayloadReader();
  uint8_t precision;
  uint64_t seed;
  if (Status sp = r.GetU8(&precision); !sp.ok()) return sp;
  if (Status ss = r.GetU64(&seed); !ss.ok()) return ss;
  if (precision < 4 || precision > 18) {
    return Status::Corruption("invalid HyperLogLog precision");
  }
  std::span<const uint8_t> regs;
  if (Status sr = r.GetRawView(size_t{1} << precision, &regs); !sr.ok()) {
    return sr;
  }
  if (precision != precision_ || seed != seed_) {
    return Status::InvalidArgument(
        "HyperLogLog merge requires equal precision and seed");
  }
  // Same kernel as Merge(): the register max runs straight over the
  // wrapped payload (32 bytes per cycle under AVX2).
  simd::Kernels().u8_max(registers_.data(), regs.data(), registers_.size());
  return Status::Ok();
}

std::vector<uint8_t> HyperLogLog::Serialize() const {
  std::vector<uint8_t> out;
  out.reserve(kWireHeaderSize + 9 + registers_.size());
  ByteSink sink(&out);
  SerializeTo(sink);
  return out;
}

void HyperLogLog::SerializeTo(ByteSink& sink) const {
  EnvelopeBuilder env(sink, kTypeId);
  sink.PutU8(static_cast<uint8_t>(precision_));
  sink.PutU64(seed_);
  sink.PutRaw(registers_.data(), registers_.size());
}

Result<HyperLogLog> HyperLogLog::Deserialize(
    std::span<const uint8_t> bytes) {
  Result<ByteReader> payload = OpenEnvelope(SketchTypeId::kHyperLogLog, bytes);
  if (!payload.ok()) return payload.status();
  ByteReader r = std::move(payload).value();
  uint8_t precision;
  uint64_t seed;
  if (Status sp = r.GetU8(&precision); !sp.ok()) return sp;
  if (Status ss = r.GetU64(&seed); !ss.ok()) return ss;
  if (precision < 4 || precision > 18) {
    return Status::Corruption("invalid HyperLogLog precision");
  }
  HyperLogLog hll(precision, seed);
  if (Status sr = r.GetRaw(hll.registers_.data(), hll.registers_.size());
      !sr.ok()) {
    return sr;
  }
  return hll;
}

}  // namespace gems
