#include "cardinality/hyperloglog.h"

#include <algorithm>
#include <cmath>

#include "common/bits.h"
#include "common/check.h"
#include "core/params.h"
#include "core/wire.h"
#include "hash/hash.h"
#include "hash/hashed_batch.h"

namespace gems {

HyperLogLog::HyperLogLog(int precision, uint64_t seed)
    : precision_(precision), seed_(seed) {
  GEMS_CHECK(precision >= 4 && precision <= 18);
  registers_.assign(uint64_t{1} << precision, 0);
}

Result<HyperLogLog> HyperLogLog::ForRelativeError(double relative_error,
                                                  uint64_t seed) {
  if (!(relative_error > 0.0 && relative_error < 1.0)) {
    return Status::InvalidArgument(
        "HyperLogLog relative error must be in (0, 1)");
  }
  return HyperLogLog(HllPrecisionFor(relative_error), seed);
}

double HyperLogLog::Alpha(uint32_t m) {
  switch (m) {
    case 16:
      return 0.673;
    case 32:
      return 0.697;
    case 64:
      return 0.709;
    default:
      return 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
  }
}

void HyperLogLog::Update(uint64_t item) { UpdateHash(Hash64(item, seed_)); }

void HyperLogLog::UpdateHash(uint64_t hash) {
  const uint32_t index = static_cast<uint32_t>(hash >> (64 - precision_));
  const int width = 64 - precision_;
  const int rho = RankOfLeftmostOne(hash, width);
  if (rho > registers_[index]) {
    registers_[index] = static_cast<uint8_t>(rho);
  }
}

void HyperLogLog::UpdateHashes(std::span<const uint64_t> hashes) {
  // Fast path: the shift and register base are hoisted, and the register
  // write is an unconditional max (no taken-branch penalty on the common
  // "register already saturated" case).
  uint8_t* const regs = registers_.data();
  const int shift = 64 - precision_;
  for (uint64_t hash : hashes) {
    const uint32_t index = static_cast<uint32_t>(hash >> shift);
    const uint8_t rho =
        static_cast<uint8_t>(RankOfLeftmostOne(hash, shift));
    regs[index] = std::max(regs[index], rho);
  }
}

void HyperLogLog::UpdateBatch(std::span<const uint64_t> items) {
  // Hash-once pipeline: fill a stack chunk of hash words in a tight
  // (vectorizable) loop, then run the branch-light register pass.
  uint64_t hashes[256];
  while (!items.empty()) {
    const size_t n = std::min(items.size(), std::size(hashes));
    HashBatch(items.first(n), seed_, hashes);
    UpdateHashes(std::span<const uint64_t>(hashes, n));
    items = items.subspan(n);
  }
}

double HyperLogLog::RawCount() const {
  const double m = static_cast<double>(registers_.size());
  double harmonic = 0.0;
  for (uint8_t reg : registers_) {
    harmonic += std::pow(2.0, -static_cast<double>(reg));
  }
  return Alpha(static_cast<uint32_t>(registers_.size())) * m * m / harmonic;
}

uint32_t HyperLogLog::NumZeroRegisters() const {
  uint32_t zeros = 0;
  for (uint8_t reg : registers_) zeros += (reg == 0) ? 1 : 0;
  return zeros;
}

double HyperLogLog::Estimate() const {
  const double raw = RawCount();
  const double m = static_cast<double>(registers_.size());
  if (raw <= 2.5 * m) {
    const uint32_t zeros = NumZeroRegisters();
    if (zeros > 0) {
      // Small-range correction: linear counting over the registers.
      return m * std::log(m / static_cast<double>(zeros));
    }
  }
  return raw;
}

gems::Estimate HyperLogLog::EstimateWithBounds(double confidence) const {
  const double n = Estimate();
  const double std_error =
      1.04 / std::sqrt(static_cast<double>(registers_.size())) * n;
  return EstimateFromStdError(n, std_error, confidence);
}

Status HyperLogLog::Merge(const HyperLogLog& other) {
  if (precision_ != other.precision_ || seed_ != other.seed_) {
    return Status::InvalidArgument(
        "HyperLogLog merge requires equal precision and seed");
  }
  // Hoisted pointers: byte stores through registers_[i] could legally
  // alias the vector's own begin pointer, which blocks vectorization of
  // the register max. Locals restore it (pmaxub on x86).
  uint8_t* const dst = registers_.data();
  const uint8_t* const src = other.registers_.data();
  const size_t m = registers_.size();
  for (size_t i = 0; i < m; ++i) dst[i] = std::max(dst[i], src[i]);
  return Status::Ok();
}

Status HyperLogLog::MergeFromView(const View<HyperLogLog>& view) {
  // Mirrors Deserialize's validation order, then Merge's compatibility
  // check, so the two paths fail with identical statuses — but the
  // register max runs straight over the wrapped payload.
  ByteReader r = view.PayloadReader();
  uint8_t precision;
  uint64_t seed;
  if (Status sp = r.GetU8(&precision); !sp.ok()) return sp;
  if (Status ss = r.GetU64(&seed); !ss.ok()) return ss;
  if (precision < 4 || precision > 18) {
    return Status::Corruption("invalid HyperLogLog precision");
  }
  std::span<const uint8_t> regs;
  if (Status sr = r.GetRawView(size_t{1} << precision, &regs); !sr.ok()) {
    return sr;
  }
  if (precision != precision_ || seed != seed_) {
    return Status::InvalidArgument(
        "HyperLogLog merge requires equal precision and seed");
  }
  // Same hoist as Merge(): keep the max loop vectorizable.
  uint8_t* const dst = registers_.data();
  const uint8_t* const src = regs.data();
  const size_t m = registers_.size();
  for (size_t i = 0; i < m; ++i) dst[i] = std::max(dst[i], src[i]);
  return Status::Ok();
}

std::vector<uint8_t> HyperLogLog::Serialize() const {
  std::vector<uint8_t> out;
  out.reserve(kWireHeaderSize + 9 + registers_.size());
  ByteSink sink(&out);
  SerializeTo(sink);
  return out;
}

void HyperLogLog::SerializeTo(ByteSink& sink) const {
  EnvelopeBuilder env(sink, kTypeId);
  sink.PutU8(static_cast<uint8_t>(precision_));
  sink.PutU64(seed_);
  sink.PutRaw(registers_.data(), registers_.size());
}

Result<HyperLogLog> HyperLogLog::Deserialize(
    std::span<const uint8_t> bytes) {
  Result<ByteReader> payload = OpenEnvelope(SketchTypeId::kHyperLogLog, bytes);
  if (!payload.ok()) return payload.status();
  ByteReader r = std::move(payload).value();
  uint8_t precision;
  uint64_t seed;
  if (Status sp = r.GetU8(&precision); !sp.ok()) return sp;
  if (Status ss = r.GetU64(&seed); !ss.ok()) return ss;
  if (precision < 4 || precision > 18) {
    return Status::Corruption("invalid HyperLogLog precision");
  }
  HyperLogLog hll(precision, seed);
  if (Status sr = r.GetRaw(hll.registers_.data(), hll.registers_.size());
      !sr.ok()) {
    return sr;
  }
  return hll;
}

}  // namespace gems
