#ifndef GEMS_CARDINALITY_FLAJOLET_MARTIN_H_
#define GEMS_CARDINALITY_FLAJOLET_MARTIN_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "core/estimate.h"

/// \file
/// Flajolet-Martin probabilistic counting with stochastic averaging (PCSA,
/// 1983): the first O(log n)-bit distinct counter and the ancestor of
/// LogLog and HyperLogLog. Each item sets one bit (at a geometrically
/// distributed position) in one of m bitmaps; the estimate is derived from
/// the position of the lowest unset bit, averaged across bitmaps.

namespace gems {

/// PCSA sketch with `num_bitmaps` 64-bit bitmaps.
class FlajoletMartin {
 public:
  /// `num_bitmaps` must be a power of two; standard error ~0.78/sqrt(m).
  explicit FlajoletMartin(uint32_t num_bitmaps, uint64_t seed = 0);

  FlajoletMartin(const FlajoletMartin&) = default;
  FlajoletMartin& operator=(const FlajoletMartin&) = default;
  FlajoletMartin(FlajoletMartin&&) = default;
  FlajoletMartin& operator=(FlajoletMartin&&) = default;

  /// Adds an item (idempotent per item).
  void Update(uint64_t item);

  /// Estimated number of distinct items:
  /// n̂ = (m / phi) * 2^{mean lowest-zero position}, phi = 0.77351.
  double Estimate() const;

  /// Estimate with the 0.78/sqrt(m) normal-approximation interval.
  gems::Estimate EstimateWithBounds(double confidence = 0.95) const;

  /// Bitwise-OR union; requires equal shape and seed.
  Status Merge(const FlajoletMartin& other);

  uint32_t num_bitmaps() const { return num_bitmaps_; }
  size_t MemoryBytes() const { return bitmaps_.size() * sizeof(uint64_t); }

  std::vector<uint8_t> Serialize() const;
  static Result<FlajoletMartin> Deserialize(
      std::span<const uint8_t> bytes);

 private:
  uint32_t num_bitmaps_;
  uint64_t seed_;
  std::vector<uint64_t> bitmaps_;
};

}  // namespace gems

#endif  // GEMS_CARDINALITY_FLAJOLET_MARTIN_H_
