#include "cardinality/kmv.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "core/params.h"
#include "core/wire.h"
#include "hash/hash.h"
#include "hash/hashed_batch.h"

namespace gems {
namespace {

// Converts a 64-bit hash to its unit-interval position.
inline double UnitOf(uint64_t hash) { return HashToUnit(hash); }

}  // namespace

ThetaResult::ThetaResult(double theta, std::vector<uint64_t> hashes)
    : theta_(theta), hashes_(std::move(hashes)) {
  GEMS_CHECK(theta_ > 0.0 && theta_ <= 1.0);
  std::sort(hashes_.begin(), hashes_.end());
}

double ThetaResult::Estimate() const {
  return static_cast<double>(hashes_.size()) / theta_;
}

gems::Estimate ThetaResult::EstimateWithBounds(double confidence) const {
  // Retained count is Binomial(n, theta): std error of n̂ = sqrt(r(1-theta))
  // / theta with r retained.
  const double r = static_cast<double>(hashes_.size());
  const double std_error = std::sqrt(r * (1.0 - theta_)) / theta_;
  return EstimateFromStdError(Estimate(), std_error, confidence);
}

KmvSketch::KmvSketch(uint32_t k, uint64_t seed) : k_(k), seed_(seed) {
  GEMS_CHECK(k >= 2);
}

Result<KmvSketch> KmvSketch::ForRelativeError(double relative_error,
                                              uint64_t seed) {
  if (!(relative_error > 0.0 && relative_error < 1.0)) {
    return Status::InvalidArgument("KMV relative error must be in (0, 1)");
  }
  return KmvSketch(KmvKFor(relative_error), seed);
}

void KmvSketch::Update(uint64_t item) {
  const uint64_t h = Hash64(item, seed_);
  if (hashes_.size() < k_) {
    hashes_.insert(h);
    return;
  }
  const uint64_t largest = *hashes_.rbegin();
  if (h < largest && !hashes_.contains(h)) {
    hashes_.insert(h);
    hashes_.erase(std::prev(hashes_.end()));
  }
}

void KmvSketch::UpdateBatch(std::span<const uint64_t> items) {
  uint64_t hashes[256];
  while (!items.empty()) {
    const size_t n = std::min(items.size(), std::size(hashes));
    HashBatch(items.first(n), seed_, hashes);
    size_t i = 0;
    // Fill phase: below k retained hashes every distinct hash is admitted.
    while (hashes_.size() < k_ && i < n) hashes_.insert(hashes[i++]);
    // Steady state: one cached-threshold compare rejects most hashes
    // without touching the ordered set.
    uint64_t largest = hashes_.empty() ? ~uint64_t{0} : *hashes_.rbegin();
    for (; i < n; ++i) {
      const uint64_t h = hashes[i];
      if (h >= largest) continue;
      if (hashes_.insert(h).second) {
        hashes_.erase(std::prev(hashes_.end()));
        largest = *hashes_.rbegin();
      }
    }
    items = items.subspan(n);
  }
}

double KmvSketch::Theta() const {
  if (hashes_.size() < k_) return 1.0;
  return UnitOf(*hashes_.rbegin());
}

double KmvSketch::Estimate() const {
  if (hashes_.size() < k_) return static_cast<double>(hashes_.size());
  // (k-1)/U_(k): unbiased for the number of distinct items.
  return static_cast<double>(k_ - 1) / UnitOf(*hashes_.rbegin());
}

gems::Estimate KmvSketch::EstimateWithBounds(double confidence) const {
  const double n = Estimate();
  if (hashes_.size() < k_) {
    return EstimateFromStdError(n, 0.0, confidence);
  }
  const double std_error = n / std::sqrt(static_cast<double>(k_) - 2.0);
  return EstimateFromStdError(n, std_error, confidence);
}

Status KmvSketch::Merge(const KmvSketch& other) {
  if (seed_ != other.seed_) {
    return Status::InvalidArgument("KMV merge requires equal seed");
  }
  for (uint64_t h : other.hashes_) {
    if (hashes_.size() < k_) {
      hashes_.insert(h);
    } else {
      const uint64_t largest = *hashes_.rbegin();
      if (h < largest && !hashes_.contains(h)) {
        hashes_.insert(h);
        hashes_.erase(std::prev(hashes_.end()));
      }
    }
  }
  return Status::Ok();
}

ThetaResult KmvSketch::ToTheta() const {
  return ThetaResult(Theta(),
                     std::vector<uint64_t>(hashes_.begin(), hashes_.end()));
}

ThetaResult KmvSketch::Union(const KmvSketch& a, const KmvSketch& b) {
  GEMS_CHECK(a.seed_ == b.seed_);
  const double theta = std::min(a.Theta(), b.Theta());
  std::set<uint64_t> merged;
  for (uint64_t h : a.hashes_) {
    if (UnitOf(h) < theta || theta >= 1.0) merged.insert(h);
  }
  for (uint64_t h : b.hashes_) {
    if (UnitOf(h) < theta || theta >= 1.0) merged.insert(h);
  }
  return ThetaResult(theta,
                     std::vector<uint64_t>(merged.begin(), merged.end()));
}

ThetaResult KmvSketch::Intersect(const KmvSketch& a, const KmvSketch& b) {
  GEMS_CHECK(a.seed_ == b.seed_);
  const double theta = std::min(a.Theta(), b.Theta());
  std::vector<uint64_t> out;
  for (uint64_t h : a.hashes_) {
    if ((UnitOf(h) < theta || theta >= 1.0) && b.hashes_.contains(h)) {
      out.push_back(h);
    }
  }
  return ThetaResult(theta, std::move(out));
}

ThetaResult KmvSketch::Difference(const KmvSketch& a, const KmvSketch& b) {
  GEMS_CHECK(a.seed_ == b.seed_);
  const double theta = std::min(a.Theta(), b.Theta());
  std::vector<uint64_t> out;
  for (uint64_t h : a.hashes_) {
    if ((UnitOf(h) < theta || theta >= 1.0) && !b.hashes_.contains(h)) {
      out.push_back(h);
    }
  }
  return ThetaResult(theta, std::move(out));
}

Status KmvSketch::MergeFromView(const View<KmvSketch>& view) {
  // Deserialize's validation order, then Merge's seed check, then the
  // union streamed off the wrapped payload. The serialized hashes are in
  // ascending (set-iteration) order — the same order Merge consumes them —
  // so the admitted set is byte-identical to deserialize-then-merge.
  ByteReader r = view.PayloadReader();
  uint32_t k;
  uint64_t seed, count;
  if (Status sk = r.GetU32(&k); !sk.ok()) return sk;
  if (Status ss = r.GetU64(&seed); !ss.ok()) return ss;
  if (Status sc = r.GetVarint(&count); !sc.ok()) return sc;
  if (k < 2) return Status::Corruption("invalid KMV k");
  if (count > k) return Status::Corruption("KMV retained count exceeds k");
  std::span<const uint8_t> raw;
  if (Status sh = r.GetRawView(static_cast<size_t>(count) * 8, &raw);
      !sh.ok()) {
    return sh;
  }
  if (seed != seed_) {
    return Status::InvalidArgument("KMV merge requires equal seed");
  }
  ByteReader hashes(raw);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t h;
    if (Status sh = hashes.GetU64(&h); !sh.ok()) return sh;
    if (hashes_.size() < k_) {
      hashes_.insert(h);
    } else {
      const uint64_t largest = *hashes_.rbegin();
      if (h < largest && !hashes_.contains(h)) {
        hashes_.insert(h);
        hashes_.erase(std::prev(hashes_.end()));
      }
    }
  }
  return Status::Ok();
}

std::vector<uint8_t> KmvSketch::Serialize() const {
  std::vector<uint8_t> out;
  out.reserve(kWireHeaderSize + 22 + hashes_.size() * 8);
  ByteSink sink(&out);
  SerializeTo(sink);
  return out;
}

void KmvSketch::SerializeTo(ByteSink& sink) const {
  EnvelopeBuilder env(sink, kTypeId);
  sink.PutU32(k_);
  sink.PutU64(seed_);
  sink.PutVarint(hashes_.size());
  for (uint64_t h : hashes_) sink.PutU64(h);
}

Result<KmvSketch> KmvSketch::Deserialize(std::span<const uint8_t> bytes) {
  Result<ByteReader> payload = OpenEnvelope(SketchTypeId::kKmv, bytes);
  if (!payload.ok()) return payload.status();
  ByteReader r = std::move(payload).value();
  uint32_t k;
  uint64_t seed, count;
  if (Status sk = r.GetU32(&k); !sk.ok()) return sk;
  if (Status ss = r.GetU64(&seed); !ss.ok()) return ss;
  if (Status sc = r.GetVarint(&count); !sc.ok()) return sc;
  if (k < 2) return Status::Corruption("invalid KMV k");
  if (count > k) return Status::Corruption("KMV retained count exceeds k");
  KmvSketch sketch(k, seed);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t h;
    if (Status sh = r.GetU64(&h); !sh.ok()) return sh;
    sketch.hashes_.insert(h);
  }
  return sketch;
}

}  // namespace gems
