#include "moments/tensor_sketch.h"

#include "common/check.h"
#include "hash/hash.h"

namespace gems {

TensorSketch::TensorSketch(size_t output_dim, int degree, uint64_t seed)
    : m_(output_dim), degree_(degree) {
  GEMS_CHECK(output_dim >= 2);
  GEMS_CHECK(degree >= 1 && degree <= 8);
  bucket_hashes_.reserve(degree);
  sign_hashes_.reserve(degree);
  for (int c = 0; c < degree; ++c) {
    bucket_hashes_.emplace_back(2, DeriveSeed(seed, 2 * c));
    sign_hashes_.emplace_back(4, DeriveSeed(seed, 2 * c + 1));
  }
}

std::vector<double> TensorSketch::ComponentSketch(
    const std::vector<double>& input, int c) const {
  std::vector<double> sketch(m_, 0.0);
  for (size_t i = 0; i < input.size(); ++i) {
    if (input[i] == 0.0) continue;
    const uint64_t bucket = bucket_hashes_[c].EvalRange(i, m_);
    sketch[bucket] += sign_hashes_[c].EvalSign(i) * input[i];
  }
  return sketch;
}

std::vector<double> TensorSketch::Sketch(
    const std::vector<double>& input) const {
  std::vector<double> result = ComponentSketch(input, 0);
  // Circular convolution with each further component: the sketch of the
  // tensor product is the convolution of the component sketches.
  for (int c = 1; c < degree_; ++c) {
    const std::vector<double> next = ComponentSketch(input, c);
    std::vector<double> convolved(m_, 0.0);
    for (size_t i = 0; i < m_; ++i) {
      if (result[i] == 0.0) continue;
      for (size_t j = 0; j < m_; ++j) {
        convolved[(i + j) % m_] += result[i] * next[j];
      }
    }
    result = std::move(convolved);
  }
  return result;
}

double TensorSketch::Dot(const std::vector<double>& a,
                         const std::vector<double>& b) {
  GEMS_CHECK(a.size() == b.size());
  double dot = 0.0;
  for (size_t i = 0; i < a.size(); ++i) dot += a[i] * b[i];
  return dot;
}

}  // namespace gems
