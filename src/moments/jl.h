#ifndef GEMS_MOMENTS_JL_H_
#define GEMS_MOMENTS_JL_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

/// \file
/// Dense Johnson-Lindenstrauss transforms (JL 1984; explicit random
/// constructions from the 1990s): project d-dimensional vectors to m
/// dimensions while preserving pairwise Euclidean distances to within
/// (1 +/- eps) for m = O(log n / eps^2). Two classic matrix ensembles:
/// i.i.d. Gaussians, and Rademacher +/-1 (Achlioptas) which is cheaper to
/// generate and store.

namespace gems {

/// Matrix entry ensemble for the dense JL transform.
enum class JlEnsemble {
  kGaussian,
  kRademacher,
};

/// A fixed (materialized) random projection R^{input_dim} -> R^{output_dim}.
class JlTransform {
 public:
  /// Materializes the projection matrix (output_dim x input_dim entries),
  /// scaled by 1/sqrt(output_dim).
  JlTransform(size_t input_dim, size_t output_dim, JlEnsemble ensemble,
              uint64_t seed);

  JlTransform(const JlTransform&) = default;
  JlTransform& operator=(const JlTransform&) = default;
  JlTransform(JlTransform&&) = default;
  JlTransform& operator=(JlTransform&&) = default;

  /// Projects a dense vector (size must equal input_dim).
  std::vector<double> Project(const std::vector<double>& input) const;

  /// The output dimension m for a target (epsilon, num_points) guarantee:
  /// m = ceil(8 ln(n) / eps^2).
  static size_t DimensionFor(double epsilon, size_t num_points);

  size_t input_dim() const { return input_dim_; }
  size_t output_dim() const { return output_dim_; }
  size_t MemoryBytes() const { return matrix_.size() * sizeof(double); }

 private:
  size_t input_dim_;
  size_t output_dim_;
  std::vector<double> matrix_;  // Row-major output_dim x input_dim.
};

/// Euclidean norm of a vector.
double L2Norm(const std::vector<double>& v);

/// Euclidean distance between two vectors of equal size.
double L2Distance(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace gems

#endif  // GEMS_MOMENTS_JL_H_
