#include "moments/compressed_sensing.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/random.h"

namespace gems {
namespace {

// Solves the normal equations (G + ridge I) c = b in-place by Gaussian
// elimination with partial pivoting. Sizes here are tiny (sparsity x
// sparsity), so O(s^3) is fine.
std::vector<double> SolveLinearSystem(std::vector<std::vector<double>> g,
                                      std::vector<double> b) {
  const size_t n = b.size();
  for (size_t col = 0; col < n; ++col) {
    // Pivot.
    size_t pivot = col;
    for (size_t row = col + 1; row < n; ++row) {
      if (std::abs(g[row][col]) > std::abs(g[pivot][col])) pivot = row;
    }
    std::swap(g[col], g[pivot]);
    std::swap(b[col], b[pivot]);
    const double diag = g[col][col];
    if (std::abs(diag) < 1e-12) continue;  // Degenerate; leave zero.
    for (size_t row = col + 1; row < n; ++row) {
      const double factor = g[row][col] / diag;
      for (size_t k = col; k < n; ++k) g[row][k] -= factor * g[col][k];
      b[row] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (size_t row = n; row-- > 0;) {
    double sum = b[row];
    for (size_t k = row + 1; k < n; ++k) sum -= g[row][k] * x[k];
    x[row] = std::abs(g[row][row]) < 1e-12 ? 0.0 : sum / g[row][row];
  }
  return x;
}

}  // namespace

SensingMatrix::SensingMatrix(size_t num_measurements, size_t dim,
                             uint64_t seed)
    : m_(num_measurements), d_(dim) {
  GEMS_CHECK(num_measurements >= 1);
  GEMS_CHECK(dim >= 1);
  GEMS_CHECK(num_measurements * dim <= (size_t{1} << 26));
  Rng rng(seed);
  const double scale = 1.0 / std::sqrt(static_cast<double>(m_));
  entries_.reserve(m_ * d_);
  for (size_t i = 0; i < m_ * d_; ++i) {
    entries_.push_back(rng.NextGaussian() * scale);
  }
}

std::vector<double> SensingMatrix::Measure(
    const std::vector<double>& signal) const {
  GEMS_CHECK(signal.size() == d_);
  std::vector<double> y(m_, 0.0);
  for (size_t row = 0; row < m_; ++row) {
    const double* a = entries_.data() + row * d_;
    double sum = 0.0;
    for (size_t col = 0; col < d_; ++col) sum += a[col] * signal[col];
    y[row] = sum;
  }
  return y;
}

std::vector<double> SensingMatrix::Column(size_t j) const {
  GEMS_CHECK(j < d_);
  std::vector<double> column(m_);
  for (size_t row = 0; row < m_; ++row) {
    column[row] = entries_[row * d_ + j];
  }
  return column;
}

Result<RecoveryResult> OrthogonalMatchingPursuit(
    const SensingMatrix& matrix, const std::vector<double>& measurements,
    size_t sparsity) {
  if (measurements.size() != matrix.num_measurements()) {
    return Status::InvalidArgument("measurement vector has wrong length");
  }
  if (sparsity == 0 || sparsity > matrix.num_measurements()) {
    return Status::InvalidArgument("sparsity out of range");
  }

  const size_t d = matrix.dim();
  RecoveryResult result;
  std::vector<double> residual = measurements;
  std::vector<std::vector<double>> chosen_columns;

  for (size_t iteration = 0; iteration < sparsity; ++iteration) {
    // Column most correlated with the residual.
    size_t best = d;
    double best_correlation = 0.0;
    for (size_t j = 0; j < d; ++j) {
      if (std::find(result.support.begin(), result.support.end(), j) !=
          result.support.end()) {
        continue;
      }
      const auto column = matrix.Column(j);
      double dot = 0.0;
      for (size_t row = 0; row < column.size(); ++row) {
        dot += column[row] * residual[row];
      }
      if (std::abs(dot) > std::abs(best_correlation)) {
        best_correlation = dot;
        best = j;
      }
    }
    if (best == d) break;
    result.support.push_back(best);
    chosen_columns.push_back(matrix.Column(best));

    // Least-squares refit of all chosen coefficients: solve
    // (C^T C) c = C^T y.
    const size_t s = chosen_columns.size();
    std::vector<std::vector<double>> gram(s, std::vector<double>(s, 0.0));
    std::vector<double> rhs(s, 0.0);
    for (size_t a = 0; a < s; ++a) {
      for (size_t b = a; b < s; ++b) {
        double dot = 0.0;
        for (size_t row = 0; row < measurements.size(); ++row) {
          dot += chosen_columns[a][row] * chosen_columns[b][row];
        }
        gram[a][b] = gram[b][a] = dot;
      }
      double dot = 0.0;
      for (size_t row = 0; row < measurements.size(); ++row) {
        dot += chosen_columns[a][row] * measurements[row];
      }
      rhs[a] = dot;
    }
    const std::vector<double> coefficients = SolveLinearSystem(gram, rhs);

    // Update the residual: r = y - C c.
    residual = measurements;
    for (size_t a = 0; a < s; ++a) {
      for (size_t row = 0; row < residual.size(); ++row) {
        residual[row] -= coefficients[a] * chosen_columns[a][row];
      }
    }
    double norm = 0.0;
    for (double r : residual) norm += r * r;
    result.residual_norm = std::sqrt(norm);

    // Write the current solution.
    result.signal.assign(d, 0.0);
    for (size_t a = 0; a < s; ++a) {
      result.signal[result.support[a]] = coefficients[a];
    }
    if (result.residual_norm < 1e-9) break;
  }
  return result;
}

}  // namespace gems
