#include "moments/ams.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/check.h"
#include "common/numeric.h"
#include "core/wire.h"
#include "hash/hash.h"
#include "simd/dispatch.h"

namespace gems {

AmsSketch::AmsSketch(uint32_t estimators_per_group, uint32_t num_groups,
                     uint64_t seed)
    : s1_(estimators_per_group), s2_(num_groups), seed_(seed) {
  GEMS_CHECK(estimators_per_group >= 1);
  GEMS_CHECK(num_groups >= 1);
  const size_t total = static_cast<size_t>(s1_) * s2_;
  sign_hashes_.reserve(total);
  for (size_t i = 0; i < total; ++i) {
    sign_hashes_.emplace_back(4, DeriveSeed(seed, i));
  }
  counters_.assign(total, 0);
}

void AmsSketch::Update(uint64_t item, int64_t weight) {
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += sign_hashes_[i].EvalSign(item) * weight;
  }
}

void AmsSketch::UpdateBatch(std::span<const uint64_t> items) {
  // Estimator-outer: per-item Update reduces the key into the field once
  // per estimator (inside Eval); hoisting ReduceKey out of the estimator
  // loop pays that division once per item. Each estimator's Rademacher sum
  // accumulates in a register across the chunk before a single counter
  // add. Eval(key) == EvalReduced(ReduceKey(key)) exactly and integer
  // addition commutes, so counters are byte-identical to per-item ingest.
  std::array<uint64_t, 256> reduced;
  for (size_t offset = 0; offset < items.size(); offset += 256) {
    const size_t n = std::min<size_t>(256, items.size() - offset);
    for (size_t i = 0; i < n; ++i) {
      reduced[i] = KWiseHash::ReduceKey(items[offset + i]);
    }
    for (size_t e = 0; e < counters_.size(); ++e) {
      const KWiseHash& hash = sign_hashes_[e];
      int64_t sum = 0;
      for (size_t i = 0; i < n; ++i) {
        sum += (hash.EvalReduced(reduced[i]) & 1) ? 1 : -1;
      }
      counters_[e] += sum;
    }
  }
}

void AmsSketch::UpdateBatch(std::span<const uint64_t> items,
                            std::span<const int64_t> weights) {
  GEMS_CHECK(items.size() == weights.size());
  std::array<uint64_t, 256> reduced;
  for (size_t offset = 0; offset < items.size(); offset += 256) {
    const size_t n = std::min<size_t>(256, items.size() - offset);
    for (size_t i = 0; i < n; ++i) {
      reduced[i] = KWiseHash::ReduceKey(items[offset + i]);
    }
    for (size_t e = 0; e < counters_.size(); ++e) {
      const KWiseHash& hash = sign_hashes_[e];
      int64_t sum = 0;
      for (size_t i = 0; i < n; ++i) {
        const int64_t w = weights[offset + i];
        sum += (hash.EvalReduced(reduced[i]) & 1) ? w : -w;
      }
      counters_[e] += sum;
    }
  }
}

double AmsSketch::EstimateF2() const {
  std::vector<double> group_means;
  group_means.reserve(s2_);
  for (uint32_t group = 0; group < s2_; ++group) {
    double mean = 0;
    for (uint32_t j = 0; j < s1_; ++j) {
      const double z =
          static_cast<double>(counters_[static_cast<size_t>(group) * s1_ + j]);
      mean += z * z;
    }
    group_means.push_back(mean / static_cast<double>(s1_));
  }
  return Median(std::move(group_means));
}

Estimate AmsSketch::F2Estimate(double confidence) const {
  const double f2 = EstimateF2();
  const double std_error = std::sqrt(2.0 / static_cast<double>(s1_)) * f2;
  return EstimateFromStdError(f2, std_error, confidence);
}

Result<double> AmsSketch::InnerProduct(const AmsSketch& other) const {
  if (s1_ != other.s1_ || s2_ != other.s2_ || seed_ != other.seed_) {
    return Status::InvalidArgument(
        "AMS inner product requires identical shape and seed");
  }
  std::vector<double> group_means;
  group_means.reserve(s2_);
  for (uint32_t group = 0; group < s2_; ++group) {
    double mean = 0;
    for (uint32_t j = 0; j < s1_; ++j) {
      const size_t i = static_cast<size_t>(group) * s1_ + j;
      mean += static_cast<double>(counters_[i]) *
              static_cast<double>(other.counters_[i]);
    }
    group_means.push_back(mean / static_cast<double>(s1_));
  }
  return Median(std::move(group_means));
}

Status AmsSketch::Merge(const AmsSketch& other) {
  if (s1_ != other.s1_ || s2_ != other.s2_ || seed_ != other.seed_) {
    return Status::InvalidArgument(
        "AMS merge requires identical shape and seed");
  }
  simd::Kernels().i64_add(counters_.data(), other.counters_.data(),
                          counters_.size());
  return Status::Ok();
}

std::vector<uint8_t> AmsSketch::Serialize() const {
  ByteWriter w;
  w.PutU32(s1_);
  w.PutU32(s2_);
  w.PutU64(seed_);
  for (int64_t counter : counters_) w.PutI64(counter);
  return WrapEnvelope(SketchTypeId::kAmsSketch,
                      std::move(w).TakeBytes());
}

Result<AmsSketch> AmsSketch::Deserialize(std::span<const uint8_t> bytes) {
  Result<ByteReader> payload = OpenEnvelope(SketchTypeId::kAmsSketch, bytes);
  if (!payload.ok()) return payload.status();
  ByteReader r = std::move(payload).value();
  uint32_t s1, s2;
  uint64_t seed;
  if (Status sa = r.GetU32(&s1); !sa.ok()) return sa;
  if (Status sb = r.GetU32(&s2); !sb.ok()) return sb;
  if (Status sc = r.GetU64(&seed); !sc.ok()) return sc;
  if (s1 == 0 || s2 == 0 ||
      static_cast<uint64_t>(s1) * s2 > (uint64_t{1} << 24)) {
    return Status::Corruption("invalid AMS shape");
  }
  AmsSketch sketch(s1, s2, seed);
  for (int64_t& counter : sketch.counters_) {
    if (Status sv = r.GetI64(&counter); !sv.ok()) return sv;
  }
  return sketch;
}

}  // namespace gems
