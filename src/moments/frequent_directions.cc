#include "moments/frequent_directions.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace gems {
namespace {

// Jacobi eigendecomposition of a symmetric n x n matrix (row-major).
// Fills `eigenvalues` (size n) and `eigenvectors` (row-major, row i = i-th
// eigenvector), unsorted.
void JacobiEigen(std::vector<double> a, size_t n,
                 std::vector<double>* eigenvalues,
                 std::vector<double>* eigenvectors) {
  std::vector<double>& v = *eigenvectors;
  v.assign(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) v[i * n + i] = 1.0;

  for (int sweep = 0; sweep < 64; ++sweep) {
    double off = 0.0;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) off += a[p * n + q] * a[p * n + q];
    }
    if (off < 1e-22) break;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = a[p * n + q];
        if (std::abs(apq) < 1e-30) continue;
        const double app = a[p * n + p];
        const double aqq = a[q * n + q];
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) +
                          std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Rotate rows/cols p and q of `a`.
        for (size_t k = 0; k < n; ++k) {
          const double akp = a[k * n + p];
          const double akq = a[k * n + q];
          a[k * n + p] = c * akp - s * akq;
          a[k * n + q] = s * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double apk = a[p * n + k];
          const double aqk = a[q * n + k];
          a[p * n + k] = c * apk - s * aqk;
          a[q * n + k] = s * apk + c * aqk;
        }
        // Accumulate the rotation into the eigenvector rows.
        for (size_t k = 0; k < n; ++k) {
          const double vpk = v[p * n + k];
          const double vqk = v[q * n + k];
          v[p * n + k] = c * vpk - s * vqk;
          v[q * n + k] = s * vpk + c * vqk;
        }
      }
    }
  }
  eigenvalues->resize(n);
  for (size_t i = 0; i < n; ++i) (*eigenvalues)[i] = a[i * n + i];
}

}  // namespace

FrequentDirections::FrequentDirections(size_t sketch_rows, size_t dim)
    : rows_(sketch_rows), dim_(dim) {
  GEMS_CHECK(sketch_rows >= 2 && sketch_rows % 2 == 0);
  GEMS_CHECK(dim >= 1);
  b_.assign(rows_ * dim_, 0.0);
}

void FrequentDirections::Update(const std::vector<double>& row) {
  GEMS_CHECK(row.size() == dim_);
  if (occupied_ == rows_) Shrink();
  for (size_t j = 0; j < dim_; ++j) b_[occupied_ * dim_ + j] = row[j];
  ++occupied_;
  for (double x : row) frobenius_squared_ += x * x;
}

void FrequentDirections::Shrink() {
  const size_t l = rows_;
  // Gram matrix G = B B^T (l x l).
  std::vector<double> gram(l * l, 0.0);
  for (size_t i = 0; i < l; ++i) {
    for (size_t j = i; j < l; ++j) {
      double dot = 0.0;
      for (size_t k = 0; k < dim_; ++k) {
        dot += b_[i * dim_ + k] * b_[j * dim_ + k];
      }
      gram[i * l + j] = gram[j * l + i] = dot;
    }
  }
  std::vector<double> eigenvalues;
  std::vector<double> eigenvectors;  // Row i = eigenvector i (length l).
  JacobiEigen(std::move(gram), l, &eigenvalues, &eigenvectors);

  // Sort eigenpairs descending.
  std::vector<size_t> order(l);
  for (size_t i = 0; i < l; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return eigenvalues[a] > eigenvalues[b];
  });

  const double delta = std::max(0.0, eigenvalues[order[l / 2]]);
  shrunk_mass_ += delta;

  // New B: row i (i < l/2) = sqrt((lambda_i - delta)/lambda_i) * u_i^T B.
  std::vector<double> next(rows_ * dim_, 0.0);
  for (size_t i = 0; i < l / 2; ++i) {
    const double lambda = eigenvalues[order[i]];
    if (lambda <= delta || lambda <= 1e-12) continue;
    const double scale = std::sqrt((lambda - delta) / lambda);
    const double* u = eigenvectors.data() + order[i] * l;
    double* out = next.data() + i * dim_;
    for (size_t r = 0; r < l; ++r) {
      const double coefficient = scale * u[r];
      if (coefficient == 0.0) continue;
      const double* row = b_.data() + r * dim_;
      for (size_t k = 0; k < dim_; ++k) out[k] += coefficient * row[k];
    }
  }
  b_ = std::move(next);
  occupied_ = l / 2;
}

double FrequentDirections::QuadraticForm(const std::vector<double>& x) const {
  GEMS_CHECK(x.size() == dim_);
  double total = 0.0;
  for (size_t i = 0; i < rows_; ++i) {
    double dot = 0.0;
    const double* row = b_.data() + i * dim_;
    for (size_t k = 0; k < dim_; ++k) dot += row[k] * x[k];
    total += dot * dot;
  }
  return total;
}

double FrequentDirections::CovarianceErrorBound() const {
  // The accumulated shrink deltas bound the error exactly; the theoretical
  // worst case is ||A||_F^2 / (l/2).
  return std::min(shrunk_mass_,
                  frobenius_squared_ / (static_cast<double>(rows_) / 2.0));
}

Status FrequentDirections::Merge(const FrequentDirections& other) {
  if (rows_ != other.rows_ || dim_ != other.dim_) {
    return Status::InvalidArgument(
        "FrequentDirections merge requires equal shape");
  }
  // Feed the other sketch's non-zero rows through Update (correct because
  // B^T B approximates A^T A and rows are processed identically).
  std::vector<double> row(dim_);
  for (size_t i = 0; i < other.rows_; ++i) {
    bool non_zero = false;
    for (size_t k = 0; k < dim_; ++k) {
      row[k] = other.b_[i * dim_ + k];
      non_zero = non_zero || row[k] != 0.0;
    }
    if (!non_zero) continue;
    if (occupied_ == rows_) Shrink();
    for (size_t k = 0; k < dim_; ++k) b_[occupied_ * dim_ + k] = row[k];
    ++occupied_;
  }
  frobenius_squared_ += other.frobenius_squared_;
  shrunk_mass_ += other.shrunk_mass_;
  return Status::Ok();
}

}  // namespace gems
