#include "moments/sparse_jl.h"

#include <cmath>

#include "common/check.h"
#include "hash/hash.h"

namespace gems {

SparseJlTransform::SparseJlTransform(size_t output_dim, size_t blocks,
                                     uint64_t seed)
    : output_dim_(output_dim), blocks_(blocks) {
  GEMS_CHECK(output_dim >= 1);
  GEMS_CHECK(blocks >= 1);
  bucket_hashes_.reserve(blocks);
  sign_hashes_.reserve(blocks);
  for (size_t block = 0; block < blocks; ++block) {
    bucket_hashes_.emplace_back(2, DeriveSeed(seed, 2 * block));
    sign_hashes_.emplace_back(4, DeriveSeed(seed, 2 * block + 1));
  }
}

std::vector<double> SparseJlTransform::ProjectSparse(
    const std::vector<std::pair<uint64_t, double>>& input) const {
  std::vector<double> output(output_dim_ * blocks_, 0.0);
  const double scale = 1.0 / std::sqrt(static_cast<double>(blocks_));
  for (size_t block = 0; block < blocks_; ++block) {
    double* block_out = output.data() + block * output_dim_;
    for (const auto& [coordinate, value] : input) {
      const uint64_t bucket =
          bucket_hashes_[block].EvalRange(coordinate, output_dim_);
      const int sign = sign_hashes_[block].EvalSign(coordinate);
      block_out[bucket] += sign * value * scale;
    }
  }
  return output;
}

std::vector<double> SparseJlTransform::Project(
    const std::vector<double>& input) const {
  std::vector<std::pair<uint64_t, double>> sparse;
  sparse.reserve(input.size());
  for (size_t i = 0; i < input.size(); ++i) {
    if (input[i] != 0.0) sparse.emplace_back(i, input[i]);
  }
  return ProjectSparse(sparse);
}

}  // namespace gems
