#ifndef GEMS_MOMENTS_FREQUENT_DIRECTIONS_H_
#define GEMS_MOMENTS_FREQUENT_DIRECTIONS_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

/// \file
/// Frequent Directions (Liberty, KDD 2013): the matrix sketch behind the
/// paper's note that "sketches can also capture properties of more complex
/// data types, such as graphs, and matrices", and the deterministic
/// workhorse of sketching for numerical linear algebra (Woodruff's
/// monograph, also cited). Maintains an l x d matrix B such that
///   0 <= x^T (A^T A - B^T B) x <= ||A||_F^2 / (l/2)   for all unit x,
/// by periodically shrinking B's singular values — the matrix analogue of
/// Misra-Gries frequency counting (which it generalizes).

namespace gems {

/// Frequent Directions sketch of a stream of d-dimensional rows.
class FrequentDirections {
 public:
  /// `sketch_rows` l (even, >= 2): covariance error <= 2 ||A||_F^2 / l.
  FrequentDirections(size_t sketch_rows, size_t dim);

  FrequentDirections(const FrequentDirections&) = default;
  FrequentDirections& operator=(const FrequentDirections&) = default;
  FrequentDirections(FrequentDirections&&) = default;
  FrequentDirections& operator=(FrequentDirections&&) = default;

  /// Appends one row of A (size dim).
  void Update(const std::vector<double>& row);

  /// The sketch matrix B (row-major l x d; includes zero rows).
  const std::vector<double>& sketch() const { return b_; }

  /// x^T B^T B x for a direction x (estimates x^T A^T A x from below).
  double QuadraticForm(const std::vector<double>& x) const;

  /// Squared Frobenius norm of everything fed in (exact).
  double SquaredFrobenius() const { return frobenius_squared_; }

  /// Guaranteed bound on x^T (A^T A - B^T B) x for unit x:
  /// ||A||_F^2 / (l/2) minus the mass already shrunk away.
  double CovarianceErrorBound() const;

  /// Merges another sketch (same shape): concatenate and re-shrink — FD is
  /// mergeable with the same guarantee (Ghashami et al. 2016).
  Status Merge(const FrequentDirections& other);

  size_t sketch_rows() const { return rows_; }
  size_t dim() const { return dim_; }

 private:
  /// SVD-shrink step: halves the occupied rows.
  void Shrink();

  size_t rows_;
  size_t dim_;
  size_t occupied_ = 0;          // Rows of b_ currently holding data.
  double frobenius_squared_ = 0;  // ||A||_F^2, exact.
  double shrunk_mass_ = 0;        // Total sigma_l^2 removed by shrinks.
  std::vector<double> b_;         // Row-major rows_ x dim_.
};

}  // namespace gems

#endif  // GEMS_MOMENTS_FREQUENT_DIRECTIONS_H_
