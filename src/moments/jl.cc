#include "moments/jl.h"

#include <cmath>

#include "common/check.h"
#include "common/random.h"

namespace gems {

JlTransform::JlTransform(size_t input_dim, size_t output_dim,
                         JlEnsemble ensemble, uint64_t seed)
    : input_dim_(input_dim), output_dim_(output_dim) {
  GEMS_CHECK(input_dim >= 1);
  GEMS_CHECK(output_dim >= 1);
  GEMS_CHECK(input_dim * output_dim <= (size_t{1} << 28));  // ~2 GiB cap.
  Rng rng(seed);
  matrix_.reserve(input_dim * output_dim);
  const double scale = 1.0 / std::sqrt(static_cast<double>(output_dim));
  for (size_t i = 0; i < input_dim * output_dim; ++i) {
    const double entry = ensemble == JlEnsemble::kGaussian
                             ? rng.NextGaussian()
                             : static_cast<double>(rng.NextSign());
    matrix_.push_back(entry * scale);
  }
}

std::vector<double> JlTransform::Project(
    const std::vector<double>& input) const {
  GEMS_CHECK(input.size() == input_dim_);
  std::vector<double> output(output_dim_, 0.0);
  for (size_t row = 0; row < output_dim_; ++row) {
    const double* matrix_row = matrix_.data() + row * input_dim_;
    double sum = 0.0;
    for (size_t col = 0; col < input_dim_; ++col) {
      sum += matrix_row[col] * input[col];
    }
    output[row] = sum;
  }
  return output;
}

size_t JlTransform::DimensionFor(double epsilon, size_t num_points) {
  GEMS_CHECK(epsilon > 0.0 && epsilon < 1.0);
  GEMS_CHECK(num_points >= 2);
  return static_cast<size_t>(std::ceil(
      8.0 * std::log(static_cast<double>(num_points)) / (epsilon * epsilon)));
}

double L2Norm(const std::vector<double>& v) {
  double sum = 0.0;
  for (double x : v) sum += x * x;
  return std::sqrt(sum);
}

double L2Distance(const std::vector<double>& a,
                  const std::vector<double>& b) {
  GEMS_CHECK(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

}  // namespace gems
