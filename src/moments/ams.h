#ifndef GEMS_MOMENTS_AMS_H_
#define GEMS_MOMENTS_AMS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "core/estimate.h"
#include "hash/polynomial.h"

/// \file
/// AMS "tug-of-war" sketch (Alon, Matias & Szegedy 1996) — the result the
/// paper credits with launching streaming algorithms. Each estimator keeps
/// Z = sum_x f(x) * s(x) for a 4-wise independent Rademacher s; E[Z^2] = F2
/// and Var[Z^2] <= 2*F2^2. Averaging s1 estimators and taking the median of
/// s2 groups gives an (eps, delta) approximation of the second frequency
/// moment (self-join size). Can be viewed, as the paper notes, as a
/// small-space Johnson-Lindenstrauss projection.

namespace gems {

/// AMS F2 sketch with s2 groups of s1 estimators (median of means).
class AmsSketch {
 public:
  /// Standard error ~ sqrt(2/s1); failure probability ~ 2^-Omega(s2).
  AmsSketch(uint32_t estimators_per_group, uint32_t num_groups,
            uint64_t seed = 0);

  AmsSketch(const AmsSketch&) = default;
  AmsSketch& operator=(const AmsSketch&) = default;
  AmsSketch(AmsSketch&&) = default;
  AmsSketch& operator=(AmsSketch&&) = default;

  /// Adds `weight` (may be negative) to item's frequency.
  void Update(uint64_t item, int64_t weight = 1);

  /// Batched ingest, weight 1 per item. Hoists the field reduction of each
  /// key out of the estimator loop and accumulates each estimator's signed
  /// sum in a register before one counter write. Integer adds commute, so
  /// counters are byte-identical to per-item Update().
  void UpdateBatch(std::span<const uint64_t> items);

  /// Batched weighted ingest; `weights` parallel to `items`.
  void UpdateBatch(std::span<const uint64_t> items,
                   std::span<const int64_t> weights);

  /// Median-of-means estimate of F2 = sum_x f(x)^2.
  double EstimateF2() const;

  /// F2 estimate with the sqrt(2/s1) relative-error interval.
  Estimate F2Estimate(double confidence = 0.95) const;

  /// Estimated inner product <f, g> with another stream's sketch (median
  /// of means of coordinate products). Shapes and seed must match.
  Result<double> InnerProduct(const AmsSketch& other) const;

  /// Coordinate-wise sum; requires identical shape and seed.
  Status Merge(const AmsSketch& other);

  uint32_t estimators_per_group() const { return s1_; }
  uint32_t num_groups() const { return s2_; }
  size_t MemoryBytes() const { return counters_.size() * sizeof(int64_t); }

  std::vector<uint8_t> Serialize() const;
  static Result<AmsSketch> Deserialize(std::span<const uint8_t> bytes);

 private:
  uint32_t s1_;
  uint32_t s2_;
  uint64_t seed_;
  std::vector<KWiseHash> sign_hashes_;  // One 4-wise hash per estimator.
  std::vector<int64_t> counters_;       // s1_ * s2_ tug-of-war counters.
};

}  // namespace gems

#endif  // GEMS_MOMENTS_AMS_H_
