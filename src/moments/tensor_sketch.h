#ifndef GEMS_MOMENTS_TENSOR_SKETCH_H_
#define GEMS_MOMENTS_TENSOR_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hash/polynomial.h"

/// \file
/// TensorSketch (Pham & Pagh, KDD 2013) — the paper's "incorporate kernel
/// transformations" citation. Sketches the p-fold tensor product x^(⊗p)
/// (whose inner products are the polynomial kernel (x·y)^p) by circularly
/// convolving p independent Count Sketches of x, so the kernel can be
/// approximated in sketched space without ever materializing the d^p
/// feature expansion. This implementation uses direct O(m^2) circular
/// convolution (m is small), avoiding an FFT dependency.

namespace gems {

/// Sketches vectors so that <Sketch(x), Sketch(y)> ~ (x . y)^degree.
class TensorSketch {
 public:
  /// `output_dim` m controls variance; `degree` p is the kernel power.
  TensorSketch(size_t output_dim, int degree, uint64_t seed);

  TensorSketch(const TensorSketch&) = default;
  TensorSketch& operator=(const TensorSketch&) = default;
  TensorSketch(TensorSketch&&) = default;
  TensorSketch& operator=(TensorSketch&&) = default;

  /// The m-dimensional sketch of `input`.
  std::vector<double> Sketch(const std::vector<double>& input) const;

  /// Inner product of two sketches (estimates (x . y)^degree).
  static double Dot(const std::vector<double>& a,
                    const std::vector<double>& b);

  size_t output_dim() const { return m_; }
  int degree() const { return degree_; }

 private:
  /// Count-sketch projection of `input` under component `c`.
  std::vector<double> ComponentSketch(const std::vector<double>& input,
                                      int c) const;

  size_t m_;
  int degree_;
  std::vector<KWiseHash> bucket_hashes_;  // One per component.
  std::vector<KWiseHash> sign_hashes_;
};

}  // namespace gems

#endif  // GEMS_MOMENTS_TENSOR_SKETCH_H_
