#ifndef GEMS_MOMENTS_SPARSE_JL_H_
#define GEMS_MOMENTS_SPARSE_JL_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "hash/polynomial.h"

/// \file
/// Sparse Johnson-Lindenstrauss transform / feature hashing — the
/// "Count Sketch as a projection" view the paper attributes to Kane &
/// Nelson's sparser JL line. Each input coordinate lands in exactly one
/// output bucket with a random sign, so projecting a vector with nnz
/// non-zeros costs O(nnz) instead of O(nnz * m). Norms are preserved in
/// expectation; with `blocks` > 1 the transform stacks independent copies
/// scaled by 1/sqrt(blocks) (the s-sparse construction), tightening
/// concentration.

namespace gems {

/// Sparse random projection R^{any} -> R^{output_dim * 1}, s = `blocks`.
class SparseJlTransform {
 public:
  /// `output_dim` buckets per block, `blocks` independent copies (sparsity
  /// parameter s); output dimension is output_dim * blocks.
  SparseJlTransform(size_t output_dim, size_t blocks, uint64_t seed);

  SparseJlTransform(const SparseJlTransform&) = default;
  SparseJlTransform& operator=(const SparseJlTransform&) = default;
  SparseJlTransform(SparseJlTransform&&) = default;
  SparseJlTransform& operator=(SparseJlTransform&&) = default;

  /// Projects a sparse vector given as (coordinate, value) pairs.
  std::vector<double> ProjectSparse(
      const std::vector<std::pair<uint64_t, double>>& input) const;

  /// Projects a dense vector (coordinate i = position i).
  std::vector<double> Project(const std::vector<double>& input) const;

  size_t output_dim() const { return output_dim_ * blocks_; }
  size_t blocks() const { return blocks_; }

 private:
  size_t output_dim_;
  size_t blocks_;
  std::vector<KWiseHash> bucket_hashes_;  // One per block.
  std::vector<KWiseHash> sign_hashes_;    // One per block.
};

}  // namespace gems

#endif  // GEMS_MOMENTS_SPARSE_JL_H_
