#ifndef GEMS_MOMENTS_COMPRESSED_SENSING_H_
#define GEMS_MOMENTS_COMPRESSED_SENSING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"

/// \file
/// Compressed sensing (Donoho 2004) — the paper names it as an outgrowth of
/// JL-style dimensionality reduction: an s-sparse d-dimensional signal is
/// recoverable from m = O(s log d) random linear measurements. This module
/// implements the sensing operator (a Gaussian JL-style matrix, the
/// classic RIP ensemble) and greedy recovery by Orthogonal Matching
/// Pursuit, plus a least-squares helper. Experimented on by the E1-style
/// sweep in tests (recovery success vs measurements), reproducing the
/// standard phase-transition shape.

namespace gems {

/// Random sensing matrix y = A x with i.i.d. N(0, 1/m) entries.
class SensingMatrix {
 public:
  SensingMatrix(size_t num_measurements, size_t dim, uint64_t seed);

  SensingMatrix(const SensingMatrix&) = default;
  SensingMatrix& operator=(const SensingMatrix&) = default;
  SensingMatrix(SensingMatrix&&) = default;
  SensingMatrix& operator=(SensingMatrix&&) = default;

  /// y = A x for a dense signal x (size dim).
  std::vector<double> Measure(const std::vector<double>& signal) const;

  /// Column j of A.
  std::vector<double> Column(size_t j) const;

  size_t num_measurements() const { return m_; }
  size_t dim() const { return d_; }

 private:
  size_t m_;
  size_t d_;
  std::vector<double> entries_;  // Row-major m x d.
};

/// Result of a recovery attempt.
struct RecoveryResult {
  /// Recovered signal (size dim).
  std::vector<double> signal;
  /// Chosen support (column indices, in selection order).
  std::vector<size_t> support;
  /// Final residual L2 norm.
  double residual_norm = 0.0;
};

/// Orthogonal Matching Pursuit: greedily selects the column most
/// correlated with the residual, then re-fits all selected coefficients by
/// least squares, for `sparsity` iterations (or until the residual is
/// negligible).
Result<RecoveryResult> OrthogonalMatchingPursuit(
    const SensingMatrix& matrix, const std::vector<double>& measurements,
    size_t sparsity);

}  // namespace gems

#endif  // GEMS_MOMENTS_COMPRESSED_SENSING_H_
