#include "membership/bloom.h"

#include <algorithm>
#include <cmath>

#include "common/bits.h"
#include "common/check.h"
#include "core/params.h"
#include "core/wire.h"
#include "hash/hash.h"
#include "hash/hashed_batch.h"
#include "simd/dispatch.h"

namespace gems {

BloomFilter::BloomFilter(uint64_t num_bits, int num_hashes, uint64_t seed)
    : num_bits_((num_bits + 63) / 64 * 64),
      num_hashes_(num_hashes),
      seed_(seed) {
  GEMS_CHECK(num_bits > 0);
  GEMS_CHECK(num_hashes >= 1 && num_hashes <= 64);
  bits_.assign(num_bits_ / 64, 0);
}

BloomFilter BloomFilter::ForCapacity(uint64_t expected_items,
                                     double target_fpr, uint64_t seed) {
  GEMS_CHECK(expected_items > 0);
  GEMS_CHECK(target_fpr > 0.0 && target_fpr < 1.0);
  const double ln2 = std::log(2.0);
  const double m = -static_cast<double>(expected_items) *
                   std::log(target_fpr) / (ln2 * ln2);
  const int k = std::max(1, static_cast<int>(std::round(
                                m / static_cast<double>(expected_items) *
                                ln2)));
  return BloomFilter(static_cast<uint64_t>(std::ceil(m)), k, seed);
}

Result<BloomFilter> BloomFilter::ForFpr(uint64_t expected_items,
                                        double target_fpr, uint64_t seed) {
  if (expected_items == 0) {
    return Status::InvalidArgument("Bloom expected_items must be > 0");
  }
  if (!(target_fpr > 0.0 && target_fpr < 1.0)) {
    return Status::InvalidArgument("Bloom target FPR must be in (0, 1)");
  }
  const uint64_t bits = BloomBitsFor(expected_items, target_fpr);
  const int k = OptimalNumHashes(static_cast<double>(bits) /
                                 static_cast<double>(expected_items));
  return BloomFilter(bits, std::min(k, 64), seed);
}

int BloomFilter::OptimalNumHashes(double bits_per_item) {
  return std::max(1, static_cast<int>(std::round(bits_per_item *
                                                 std::log(2.0))));
}

void BloomFilter::InsertHash(uint64_t h1, uint64_t h2) {
  // Kirsch-Mitzenmacher: probe i at h1 + i*h2.
  uint64_t h = h1;
  for (int i = 0; i < num_hashes_; ++i) {
    const uint64_t bit = h % num_bits_;
    bits_[bit / 64] |= uint64_t{1} << (bit % 64);
    h += h2;
  }
}

bool BloomFilter::MayContainHash(uint64_t h1, uint64_t h2) const {
  uint64_t h = h1;
  for (int i = 0; i < num_hashes_; ++i) {
    const uint64_t bit = h % num_bits_;
    if ((bits_[bit / 64] & (uint64_t{1} << (bit % 64))) == 0) return false;
    h += h2;
  }
  return true;
}

void BloomFilter::Insert(uint64_t key) {
  const Hash128 h = Hash128Bits(key, seed_);
  InsertHash(h.low, h.high | 1);
}

void BloomFilter::Insert(std::string_view key) {
  const Hash128 h = Hash128Bits(key.data(), key.size(), seed_);
  InsertHash(h.low, h.high | 1);
}

void BloomFilter::InsertBatch(std::span<const uint64_t> keys) {
  // Hash-once pipeline over small chunks: the Murmur batch kernel keeps
  // 4-8 keys in flight, then the probe kernel streams the bit writes with
  // the per-probe modulo strength-reduced (vector multiply-high under
  // AVX2) instead of one hardware divide each. Bit indices are exactly
  // those of Insert(), so the resulting filter is byte-identical.
  const simd::SimdKernels& kernels = simd::Kernels();
  uint64_t h1[256];
  uint64_t h2[256];
  while (!keys.empty()) {
    const size_t n = std::min(keys.size(), std::size(h1));
    kernels.murmur3_batch_u64(keys.data(), n, seed_, h1, h2);
    for (size_t i = 0; i < n; ++i) h2[i] |= 1;
    kernels.bloom_insert(bits_.data(), num_bits_, num_hashes_, h1, h2, n);
    keys = keys.subspan(n);
  }
}

void BloomFilter::MayContainBatch(std::span<const uint64_t> keys,
                                  uint8_t* out) const {
  // Batched membership: hash kernel, then the multi-probe query kernel
  // (gathered word loads under AVX2). out[i] == MayContain(keys[i]).
  const simd::SimdKernels& kernels = simd::Kernels();
  uint64_t h1[256];
  uint64_t h2[256];
  size_t offset = 0;
  while (offset < keys.size()) {
    const size_t n = std::min(keys.size() - offset, std::size(h1));
    kernels.murmur3_batch_u64(keys.data() + offset, n, seed_, h1, h2);
    for (size_t i = 0; i < n; ++i) h2[i] |= 1;
    kernels.bloom_query(bits_.data(), num_bits_, num_hashes_, h1, h2, n,
                        out + offset);
    offset += n;
  }
}

bool BloomFilter::MayContain(uint64_t key) const {
  const Hash128 h = Hash128Bits(key, seed_);
  return MayContainHash(h.low, h.high | 1);
}

bool BloomFilter::MayContain(std::string_view key) const {
  const Hash128 h = Hash128Bits(key.data(), key.size(), seed_);
  return MayContainHash(h.low, h.high | 1);
}

uint64_t BloomFilter::NumBitsSet() const {
  uint64_t set = 0;
  for (uint64_t word : bits_) set += PopCount64(word);
  return set;
}

double BloomFilter::EstimatedFpr() const {
  const double fill =
      static_cast<double>(NumBitsSet()) / static_cast<double>(num_bits_);
  return std::pow(fill, num_hashes_);
}

double BloomFilter::EstimateCardinality() const {
  const double m = static_cast<double>(num_bits_);
  const double set = static_cast<double>(NumBitsSet());
  if (set >= m) return m * std::log(m) / num_hashes_;  // Saturated.
  return -(m / num_hashes_) * std::log(1.0 - set / m);
}

double BloomFilter::TheoreticalFpr(uint64_t num_bits, int num_hashes,
                                   uint64_t n) {
  const double exponent = -static_cast<double>(num_hashes) *
                          static_cast<double>(n) /
                          static_cast<double>(num_bits);
  return std::pow(1.0 - std::exp(exponent), num_hashes);
}

Status BloomFilter::Merge(const BloomFilter& other) {
  if (num_bits_ != other.num_bits_ || num_hashes_ != other.num_hashes_ ||
      seed_ != other.seed_) {
    return Status::InvalidArgument(
        "Bloom merge requires identical shape and seed");
  }
  simd::Kernels().u64_or(bits_.data(), other.bits_.data(), bits_.size());
  return Status::Ok();
}

Status BloomFilter::MergeFromView(const View<BloomFilter>& view) {
  // Deserialize's validation order, then Merge's compatibility check, then
  // the word OR streamed straight off the wrapped payload.
  ByteReader r = view.PayloadReader();
  uint64_t num_bits, seed;
  uint8_t num_hashes;
  if (Status sb = r.GetU64(&num_bits); !sb.ok()) return sb;
  if (Status sh = r.GetU8(&num_hashes); !sh.ok()) return sh;
  if (Status ss = r.GetU64(&seed); !ss.ok()) return ss;
  if (num_bits == 0 || num_bits % 64 != 0 || num_bits > (uint64_t{1} << 40) ||
      num_hashes < 1) {
    return Status::Corruption("invalid Bloom filter shape");
  }
  // Claim the whole word array up front: a payload shorter than the
  // declared shape surfaces as the read error Deserialize would have
  // produced, and no partial merge ever touches bits_.
  std::span<const uint8_t> raw;
  if (Status sw = r.GetRawView((num_bits / 64) * 8, &raw); !sw.ok()) return sw;
  if (num_bits != num_bits_ || num_hashes != num_hashes_ || seed != seed_) {
    return Status::InvalidArgument(
        "Bloom merge requires identical shape and seed");
  }
  ByteReader words(raw);
  for (uint64_t& ours : bits_) {
    uint64_t word;
    if (Status sw = words.GetU64(&word); !sw.ok()) return sw;
    ours |= word;
  }
  return Status::Ok();
}

std::vector<uint8_t> BloomFilter::Serialize() const {
  std::vector<uint8_t> out;
  out.reserve(kWireHeaderSize + 17 + bits_.size() * 8);
  ByteSink sink(&out);
  SerializeTo(sink);
  return out;
}

void BloomFilter::SerializeTo(ByteSink& sink) const {
  EnvelopeBuilder env(sink, kTypeId);
  sink.PutU64(num_bits_);
  sink.PutU8(static_cast<uint8_t>(num_hashes_));
  sink.PutU64(seed_);
  for (uint64_t word : bits_) sink.PutU64(word);
}

Result<BloomFilter> BloomFilter::Deserialize(
    std::span<const uint8_t> bytes) {
  Result<ByteReader> payload = OpenEnvelope(SketchTypeId::kBloomFilter, bytes);
  if (!payload.ok()) return payload.status();
  ByteReader r = std::move(payload).value();
  uint64_t num_bits, seed;
  uint8_t num_hashes;
  if (Status sb = r.GetU64(&num_bits); !sb.ok()) return sb;
  if (Status sh = r.GetU8(&num_hashes); !sh.ok()) return sh;
  if (Status ss = r.GetU64(&seed); !ss.ok()) return ss;
  if (num_bits == 0 || num_bits % 64 != 0 || num_bits > (uint64_t{1} << 40) ||
      num_hashes < 1) {
    return Status::Corruption("invalid Bloom filter shape");
  }
  BloomFilter filter(num_bits, num_hashes, seed);
  for (uint64_t& word : filter.bits_) {
    if (Status sw = r.GetU64(&word); !sw.ok()) return sw;
  }
  return filter;
}

}  // namespace gems
