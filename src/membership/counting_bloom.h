#ifndef GEMS_MEMBERSHIP_COUNTING_BLOOM_H_
#define GEMS_MEMBERSHIP_COUNTING_BLOOM_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/status.h"

/// \file
/// Counting Bloom filter (Fan et al. 1998): replaces each bit with a small
/// counter so items can be deleted — the standard fix for Bloom's
/// insert-only limitation, at 4-8x the space. Uses 8-bit saturating
/// counters (a counter that reaches 255 sticks there, so deletions remain
/// safe: a saturated counter never decrements to a false negative).

namespace gems {

/// Counting Bloom filter with 8-bit saturating counters.
class CountingBloomFilter {
 public:
  CountingBloomFilter(uint64_t num_counters, int num_hashes,
                      uint64_t seed = 0);

  CountingBloomFilter(const CountingBloomFilter&) = default;
  CountingBloomFilter& operator=(const CountingBloomFilter&) = default;
  CountingBloomFilter(CountingBloomFilter&&) = default;
  CountingBloomFilter& operator=(CountingBloomFilter&&) = default;

  void Insert(uint64_t key);
  /// Removes one prior insertion of `key`. Removing a key that was never
  /// inserted can create false negatives for other keys (inherent to the
  /// structure); callers must only remove inserted keys.
  void Remove(uint64_t key);

  bool MayContain(uint64_t key) const;

  /// Counter-wise saturating add; requires identical shape and seed.
  Status Merge(const CountingBloomFilter& other);

  uint64_t num_counters() const { return num_counters_; }
  size_t MemoryBytes() const { return counters_.size(); }

  std::vector<uint8_t> Serialize() const;
  static Result<CountingBloomFilter> Deserialize(
      std::span<const uint8_t> bytes);

 private:
  void Probe(uint64_t key, uint64_t* h1, uint64_t* h2) const;

  uint64_t num_counters_;
  int num_hashes_;
  uint64_t seed_;
  std::vector<uint8_t> counters_;
};

}  // namespace gems

#endif  // GEMS_MEMBERSHIP_COUNTING_BLOOM_H_
