#include "membership/counting_bloom.h"

#include "common/check.h"
#include "core/wire.h"
#include "hash/hash.h"

namespace gems {

CountingBloomFilter::CountingBloomFilter(uint64_t num_counters,
                                         int num_hashes, uint64_t seed)
    : num_counters_(num_counters), num_hashes_(num_hashes), seed_(seed) {
  GEMS_CHECK(num_counters > 0);
  GEMS_CHECK(num_hashes >= 1 && num_hashes <= 64);
  counters_.assign(num_counters, 0);
}

void CountingBloomFilter::Probe(uint64_t key, uint64_t* h1,
                                uint64_t* h2) const {
  const Hash128 h = Hash128Bits(key, seed_);
  *h1 = h.low;
  *h2 = h.high | 1;
}

void CountingBloomFilter::Insert(uint64_t key) {
  uint64_t h1, h2;
  Probe(key, &h1, &h2);
  for (int i = 0; i < num_hashes_; ++i) {
    uint8_t& counter = counters_[h1 % num_counters_];
    if (counter < 255) ++counter;  // Saturate.
    h1 += h2;
  }
}

void CountingBloomFilter::Remove(uint64_t key) {
  uint64_t h1, h2;
  Probe(key, &h1, &h2);
  for (int i = 0; i < num_hashes_; ++i) {
    uint8_t& counter = counters_[h1 % num_counters_];
    // Saturated counters stay put (we no longer know their true value);
    // all others decrement.
    if (counter > 0 && counter < 255) --counter;
    h1 += h2;
  }
}

bool CountingBloomFilter::MayContain(uint64_t key) const {
  uint64_t h1, h2;
  Probe(key, &h1, &h2);
  for (int i = 0; i < num_hashes_; ++i) {
    if (counters_[h1 % num_counters_] == 0) return false;
    h1 += h2;
  }
  return true;
}

Status CountingBloomFilter::Merge(const CountingBloomFilter& other) {
  if (num_counters_ != other.num_counters_ ||
      num_hashes_ != other.num_hashes_ || seed_ != other.seed_) {
    return Status::InvalidArgument(
        "CountingBloom merge requires identical shape and seed");
  }
  for (size_t i = 0; i < counters_.size(); ++i) {
    const int sum = counters_[i] + other.counters_[i];
    counters_[i] = static_cast<uint8_t>(sum > 255 ? 255 : sum);
  }
  return Status::Ok();
}

std::vector<uint8_t> CountingBloomFilter::Serialize() const {
  ByteWriter w;
  w.PutU64(num_counters_);
  w.PutU8(static_cast<uint8_t>(num_hashes_));
  w.PutU64(seed_);
  w.PutRaw(counters_.data(), counters_.size());
  return WrapEnvelope(SketchTypeId::kCountingBloomFilter,
                      std::move(w).TakeBytes());
}

Result<CountingBloomFilter> CountingBloomFilter::Deserialize(
    std::span<const uint8_t> bytes) {
  Result<ByteReader> payload = OpenEnvelope(SketchTypeId::kCountingBloomFilter, bytes);
  if (!payload.ok()) return payload.status();
  ByteReader r = std::move(payload).value();
  uint64_t num_counters, seed;
  uint8_t num_hashes;
  if (Status sc = r.GetU64(&num_counters); !sc.ok()) return sc;
  if (Status sh = r.GetU8(&num_hashes); !sh.ok()) return sh;
  if (Status ss = r.GetU64(&seed); !ss.ok()) return ss;
  if (num_counters == 0 || num_counters > (uint64_t{1} << 36) ||
      num_hashes < 1) {
    return Status::Corruption("invalid CountingBloom shape");
  }
  CountingBloomFilter filter(num_counters, num_hashes, seed);
  if (Status sr = r.GetRaw(filter.counters_.data(), filter.counters_.size());
      !sr.ok()) {
    return sr;
  }
  return filter;
}

}  // namespace gems
