#ifndef GEMS_MEMBERSHIP_BLOCKED_BLOOM_H_
#define GEMS_MEMBERSHIP_BLOCKED_BLOOM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

/// \file
/// Cache-blocked Bloom filter (Putze, Sanders & Singler 2007): confines all
/// k probes of a key to one 64-byte cache line, trading a slightly higher
/// false-positive rate for one memory access per query instead of k. This
/// is the variant used inside RocksDB and most modern storage engines — a
/// concrete instance of the "practical implementation" concerns the paper's
/// mergeable-era section highlights.

namespace gems {

/// Blocked Bloom filter with 512-bit (cache line) blocks.
class BlockedBloomFilter {
 public:
  /// `num_bits` rounded up to a multiple of 512; `num_hashes` probes, all
  /// within one block.
  BlockedBloomFilter(uint64_t num_bits, int num_hashes, uint64_t seed = 0);

  BlockedBloomFilter(const BlockedBloomFilter&) = default;
  BlockedBloomFilter& operator=(const BlockedBloomFilter&) = default;
  BlockedBloomFilter(BlockedBloomFilter&&) = default;
  BlockedBloomFilter& operator=(BlockedBloomFilter&&) = default;

  void Insert(uint64_t key);
  bool MayContain(uint64_t key) const;

  /// Batched insert through the dispatched simd kernel: hashes a chunk of
  /// keys in one hoisted pass, prefetches each key's cache-line block, then
  /// streams the probe writes. Bit ORs commute, so state is byte-identical
  /// to per-key Insert().
  void InsertBatch(std::span<const uint64_t> keys);

  /// Batched membership: out[i] = MayContain(keys[i]) ? 1 : 0 for every i.
  /// `out` must have room for keys.size() results.
  void MayContainBatch(std::span<const uint64_t> keys, uint8_t* out) const;

  Status Merge(const BlockedBloomFilter& other);

  uint64_t num_bits() const { return num_blocks_ * 512; }
  size_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

  std::vector<uint8_t> Serialize() const;
  static Result<BlockedBloomFilter> Deserialize(
      std::span<const uint8_t> bytes);

 private:
  static constexpr int kWordsPerBlock = 8;  // 512 bits.

  void InsertProbes(uint64_t block, uint64_t probe_bits);

  uint64_t num_blocks_;
  int num_hashes_;
  uint64_t seed_;
  std::vector<uint64_t> words_;
};

}  // namespace gems

#endif  // GEMS_MEMBERSHIP_BLOCKED_BLOOM_H_
