#ifndef GEMS_MEMBERSHIP_BLOOM_H_
#define GEMS_MEMBERSHIP_BLOOM_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/io.h"
#include "core/view.h"

/// \file
/// Bloom filter (Bloom 1970) — per the paper, "perhaps the first example of
/// something we can think of as a sketch", originally motivated by spell
/// checking under memory constraints. Uses Kirsch-Mitzenmacher double
/// hashing: the k probe positions are derived as h1 + i*h2 from one 128-bit
/// hash, which preserves the asymptotic false-positive rate.

namespace gems {

/// A standard Bloom filter over 64-bit keys (or byte strings).
class BloomFilter {
 public:
  /// Wire-format type tag, for View<BloomFilter> wrapping.
  static constexpr SketchTypeId kTypeId = SketchTypeId::kBloomFilter;

  /// Creates a filter with `num_bits` bits (rounded up to a multiple of 64)
  /// and `num_hashes` probes per item.
  BloomFilter(uint64_t num_bits, int num_hashes, uint64_t seed = 0);

  /// Sizes a filter for `expected_items` at `target_fpr` using the optimal
  /// m = -n ln p / (ln 2)^2 and k = (m/n) ln 2.
  static BloomFilter ForCapacity(uint64_t expected_items, double target_fpr,
                                 uint64_t seed = 0);

  /// Advisor-driven constructor for the same sizing rule that surfaces
  /// invalid parameters as a Status instead of aborting: kInvalidArgument
  /// unless `expected_items` > 0 and 0 < `target_fpr` < 1.
  static Result<BloomFilter> ForFpr(uint64_t expected_items, double target_fpr,
                                    uint64_t seed = 0);

  BloomFilter(const BloomFilter&) = default;
  BloomFilter& operator=(const BloomFilter&) = default;
  BloomFilter(BloomFilter&&) = default;
  BloomFilter& operator=(BloomFilter&&) = default;

  /// Inserts a key.
  void Insert(uint64_t key);
  void Insert(std::string_view key);

  /// Batched insert: computes the 128-bit hash for a chunk of keys in one
  /// hoisted loop, then streams the probe writes. Bit ORs commute, so state
  /// is byte-identical to per-key Insert().
  void InsertBatch(std::span<const uint64_t> keys);

  /// True if the key may have been inserted; false means definitely not.
  bool MayContain(uint64_t key) const;
  bool MayContain(std::string_view key) const;

  /// Batched membership: out[i] = MayContain(keys[i]) ? 1 : 0 for every i,
  /// with the hashing and multi-probe reads batched through the dispatched
  /// kernels. `out` must have room for keys.size() results.
  void MayContainBatch(std::span<const uint64_t> keys, uint8_t* out) const;

  /// Predicted false-positive rate at the current fill: (1 - e^{-kn/m})^k
  /// using the number of set bits as the fill estimate.
  double EstimatedFpr() const;

  /// Theoretical FPR for the given parameters after n insertions.
  static double TheoreticalFpr(uint64_t num_bits, int num_hashes, uint64_t n);

  /// Estimated number of distinct keys inserted, from the bit occupancy
  /// (Swamidass & Baldi 2007): n̂ = -(m/k) ln(1 - X/m) with X set bits.
  /// Returns m ln m / k as a saturated ceiling when every bit is set.
  double EstimateCardinality() const;

  /// Optimal probe count for a bits-per-item budget: k = (m/n) ln 2.
  static int OptimalNumHashes(double bits_per_item);

  /// Bitwise-OR union; requires identical shape and seed.
  Status Merge(const BloomFilter& other);

  /// Bitwise-OR union straight out of a wrapped serialized peer — no
  /// materialization. Byte-identical result to Merge(*view.Materialize()).
  Status MergeFromView(const View<BloomFilter>& view);

  uint64_t num_bits() const { return num_bits_; }
  int num_hashes() const { return num_hashes_; }
  uint64_t NumBitsSet() const;
  size_t MemoryBytes() const { return bits_.size() * sizeof(uint64_t); }

  std::vector<uint8_t> Serialize() const;
  /// Appends the wire envelope into a caller-owned buffer; byte-identical
  /// to Serialize().
  void SerializeTo(ByteSink& sink) const;
  static Result<BloomFilter> Deserialize(std::span<const uint8_t> bytes);

 private:
  void InsertHash(uint64_t h1, uint64_t h2);
  bool MayContainHash(uint64_t h1, uint64_t h2) const;

  uint64_t num_bits_;
  int num_hashes_;
  uint64_t seed_;
  std::vector<uint64_t> bits_;
};

}  // namespace gems

#endif  // GEMS_MEMBERSHIP_BLOOM_H_
