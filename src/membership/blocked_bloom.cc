#include "membership/blocked_bloom.h"

#include <algorithm>

#include "common/check.h"
#include "core/wire.h"
#include "hash/hash.h"
#include "simd/dispatch.h"

namespace gems {

BlockedBloomFilter::BlockedBloomFilter(uint64_t num_bits, int num_hashes,
                                       uint64_t seed)
    : num_blocks_((num_bits + 511) / 512), num_hashes_(num_hashes),
      seed_(seed) {
  GEMS_CHECK(num_bits > 0);
  GEMS_CHECK(num_hashes >= 1 && num_hashes <= 16);
  words_.assign(num_blocks_ * kWordsPerBlock, 0);
}

void BlockedBloomFilter::InsertProbes(uint64_t block, uint64_t probe_bits) {
  uint64_t probe = probe_bits;
  for (int i = 0; i < num_hashes_; ++i) {
    const uint32_t bit = probe & 511;  // 9 bits per probe.
    words_[block * kWordsPerBlock + bit / 64] |= uint64_t{1} << (bit % 64);
    probe >>= 9;
    if (i == 5) probe = Mix64(probe_bits);  // Refill bits (64/9 = 7 max).
  }
}

void BlockedBloomFilter::Insert(uint64_t key) {
  const Hash128 h = Hash128Bits(key, seed_);
  InsertProbes(h.low % num_blocks_, h.high);
}

void BlockedBloomFilter::InsertBatch(std::span<const uint64_t> keys) {
  // Fully fused in the dispatched kernel: hash, block-select, prefetch,
  // and probe writes all live in src/simd/ (this class carries no
  // intrinsics or feature tests of its own). Bit ORs commute, so state is
  // byte-identical to per-key Insert().
  simd::Kernels().blocked_bloom_insert(words_.data(), num_blocks_,
                                       num_hashes_, seed_, keys.data(),
                                       keys.size());
}

bool BlockedBloomFilter::MayContain(uint64_t key) const {
  const Hash128 h = Hash128Bits(key, seed_);
  const uint64_t block = h.low % num_blocks_;
  uint64_t probe = h.high;
  for (int i = 0; i < num_hashes_; ++i) {
    const uint32_t bit = probe & 511;
    if ((words_[block * kWordsPerBlock + bit / 64] &
         (uint64_t{1} << (bit % 64))) == 0) {
      return false;
    }
    probe >>= 9;
    if (i == 5) probe = Mix64(h.high);
  }
  return true;
}

void BlockedBloomFilter::MayContainBatch(std::span<const uint64_t> keys,
                                         uint8_t* out) const {
  // Same fused kernel pipeline as InsertBatch, reading instead of writing.
  // out[i] == MayContain(keys[i]).
  simd::Kernels().blocked_bloom_query(words_.data(), num_blocks_, num_hashes_,
                                      seed_, keys.data(), keys.size(), out);
}

Status BlockedBloomFilter::Merge(const BlockedBloomFilter& other) {
  if (num_blocks_ != other.num_blocks_ || num_hashes_ != other.num_hashes_ ||
      seed_ != other.seed_) {
    return Status::InvalidArgument(
        "BlockedBloom merge requires identical shape and seed");
  }
  simd::Kernels().u64_or(words_.data(), other.words_.data(), words_.size());
  return Status::Ok();
}

std::vector<uint8_t> BlockedBloomFilter::Serialize() const {
  ByteWriter w;
  w.PutU64(num_blocks_);
  w.PutU8(static_cast<uint8_t>(num_hashes_));
  w.PutU64(seed_);
  for (uint64_t word : words_) w.PutU64(word);
  return WrapEnvelope(SketchTypeId::kBlockedBloomFilter,
                      std::move(w).TakeBytes());
}

Result<BlockedBloomFilter> BlockedBloomFilter::Deserialize(
    std::span<const uint8_t> bytes) {
  Result<ByteReader> payload = OpenEnvelope(SketchTypeId::kBlockedBloomFilter, bytes);
  if (!payload.ok()) return payload.status();
  ByteReader r = std::move(payload).value();
  uint64_t num_blocks, seed;
  uint8_t num_hashes;
  if (Status sb = r.GetU64(&num_blocks); !sb.ok()) return sb;
  if (Status sh = r.GetU8(&num_hashes); !sh.ok()) return sh;
  if (Status ss = r.GetU64(&seed); !ss.ok()) return ss;
  if (num_blocks == 0 || num_blocks > (uint64_t{1} << 32) || num_hashes < 1 ||
      num_hashes > 16) {
    return Status::Corruption("invalid BlockedBloom shape");
  }
  BlockedBloomFilter filter(num_blocks * 512, num_hashes, seed);
  for (uint64_t& word : filter.words_) {
    if (Status sw = r.GetU64(&word); !sw.ok()) return sw;
  }
  return filter;
}

}  // namespace gems
