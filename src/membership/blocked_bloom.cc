#include "membership/blocked_bloom.h"

#include "common/check.h"
#include "core/wire.h"
#include "hash/hash.h"

namespace gems {

BlockedBloomFilter::BlockedBloomFilter(uint64_t num_bits, int num_hashes,
                                       uint64_t seed)
    : num_blocks_((num_bits + 511) / 512), num_hashes_(num_hashes),
      seed_(seed) {
  GEMS_CHECK(num_bits > 0);
  GEMS_CHECK(num_hashes >= 1 && num_hashes <= 16);
  words_.assign(num_blocks_ * kWordsPerBlock, 0);
}

void BlockedBloomFilter::Insert(uint64_t key) {
  const Hash128 h = Hash128Bits(key, seed_);
  const uint64_t block = h.low % num_blocks_;
  uint64_t probe = h.high;
  for (int i = 0; i < num_hashes_; ++i) {
    const uint32_t bit = probe & 511;  // 9 bits per probe.
    words_[block * kWordsPerBlock + bit / 64] |= uint64_t{1} << (bit % 64);
    probe >>= 9;
    if (i == 5) probe = Mix64(h.high);  // Refill probe bits (64/9 = 7 max).
  }
}

bool BlockedBloomFilter::MayContain(uint64_t key) const {
  const Hash128 h = Hash128Bits(key, seed_);
  const uint64_t block = h.low % num_blocks_;
  uint64_t probe = h.high;
  for (int i = 0; i < num_hashes_; ++i) {
    const uint32_t bit = probe & 511;
    if ((words_[block * kWordsPerBlock + bit / 64] &
         (uint64_t{1} << (bit % 64))) == 0) {
      return false;
    }
    probe >>= 9;
    if (i == 5) probe = Mix64(h.high);
  }
  return true;
}

Status BlockedBloomFilter::Merge(const BlockedBloomFilter& other) {
  if (num_blocks_ != other.num_blocks_ || num_hashes_ != other.num_hashes_ ||
      seed_ != other.seed_) {
    return Status::InvalidArgument(
        "BlockedBloom merge requires identical shape and seed");
  }
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return Status::Ok();
}

std::vector<uint8_t> BlockedBloomFilter::Serialize() const {
  ByteWriter w;
  w.PutU64(num_blocks_);
  w.PutU8(static_cast<uint8_t>(num_hashes_));
  w.PutU64(seed_);
  for (uint64_t word : words_) w.PutU64(word);
  return WrapEnvelope(SketchTypeId::kBlockedBloomFilter,
                      std::move(w).TakeBytes());
}

Result<BlockedBloomFilter> BlockedBloomFilter::Deserialize(
    const std::vector<uint8_t>& bytes) {
  Result<ByteReader> payload = OpenEnvelope(SketchTypeId::kBlockedBloomFilter, bytes);
  if (!payload.ok()) return payload.status();
  ByteReader r = std::move(payload).value();
  uint64_t num_blocks, seed;
  uint8_t num_hashes;
  if (Status sb = r.GetU64(&num_blocks); !sb.ok()) return sb;
  if (Status sh = r.GetU8(&num_hashes); !sh.ok()) return sh;
  if (Status ss = r.GetU64(&seed); !ss.ok()) return ss;
  if (num_blocks == 0 || num_blocks > (uint64_t{1} << 32) || num_hashes < 1 ||
      num_hashes > 16) {
    return Status::Corruption("invalid BlockedBloom shape");
  }
  BlockedBloomFilter filter(num_blocks * 512, num_hashes, seed);
  for (uint64_t& word : filter.words_) {
    if (Status sw = r.GetU64(&word); !sw.ok()) return sw;
  }
  return filter;
}

}  // namespace gems
