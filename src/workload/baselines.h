#ifndef GEMS_WORKLOAD_BASELINES_H_
#define GEMS_WORKLOAD_BASELINES_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

/// \file
/// Exact (non-sketch) baselines. The paper notes that sketches were
/// eventually displaced in some applications by "highly performant data
/// warehouses giving exact results" — these classes are that comparator:
/// exact answers at linear space, used as ground truth and as the
/// space/time baseline in every experiment.

namespace gems {

/// Exact distinct counting via a hash set.
class ExactDistinct {
 public:
  ExactDistinct() = default;

  void Update(uint64_t item) { items_.insert(item); }
  uint64_t Count() const { return items_.size(); }
  bool Contains(uint64_t item) const { return items_.contains(item); }
  /// Approximate heap footprint in bytes (for space-accuracy plots).
  size_t MemoryBytes() const;

  /// Union with another exact set.
  void Merge(const ExactDistinct& other);

 private:
  std::unordered_set<uint64_t> items_;
};

/// Exact frequency table with heavy-hitter and top-k queries.
class ExactFrequencies {
 public:
  ExactFrequencies() = default;

  void Update(uint64_t item, int64_t weight = 1) {
    counts_[item] += weight;
    total_ += weight;
  }
  int64_t Count(uint64_t item) const;
  int64_t TotalWeight() const { return total_; }

  /// Items with count >= threshold, unsorted.
  std::vector<uint64_t> ItemsAbove(int64_t threshold) const;

  /// The k most frequent items, most frequent first (ties by item id).
  std::vector<std::pair<uint64_t, int64_t>> TopK(size_t k) const;

  /// Second frequency moment F2 = sum of squared counts.
  double F2() const;

  /// Number of distinct keys with non-zero count.
  size_t NumKeys() const;

  size_t MemoryBytes() const;

  void Merge(const ExactFrequencies& other);

 private:
  std::unordered_map<uint64_t, int64_t> counts_;
  int64_t total_ = 0;
};

/// Exact quantiles: stores everything, sorts lazily.
class ExactQuantiles {
 public:
  ExactQuantiles() = default;

  void Update(double value) {
    values_.push_back(value);
    sorted_ = false;
  }

  /// Value at quantile q in [0, 1]; requires at least one update.
  double Quantile(double q);

  /// Rank of `value`: number of stored values <= value.
  uint64_t Rank(double value);

  uint64_t Count() const { return values_.size(); }
  size_t MemoryBytes() const { return values_.size() * sizeof(double); }

  void Merge(const ExactQuantiles& other);

 private:
  void EnsureSorted();

  std::vector<double> values_;
  bool sorted_ = true;
};

}  // namespace gems

#endif  // GEMS_WORKLOAD_BASELINES_H_
