#include "workload/multi_query.h"

#include "common/check.h"
#include "workload/generators.h"

namespace gems {

namespace {

/// The group-skew pattern repeats on this period; long enough that every
/// window sees the full skew profile, short enough to pre-draw cheaply.
constexpr size_t kGroupSequenceLength = size_t{1} << 16;

}  // namespace

size_t MultiQueryWorkload::PaletteSize() { return 6; }

std::function<bool(const StreamEvent&)> MultiQueryWorkload::PaletteFilter(
    size_t index) {
  GEMS_CHECK(index < PaletteSize());
  switch (index) {
    case 0:
      return [](const StreamEvent& e) { return e.value % 2 == 0; };
    case 1:
      return [](const StreamEvent& e) { return e.item % 3 != 0; };
    case 2:
      return [](const StreamEvent& e) { return e.group % 4 < 2; };
    case 3:
      return [](const StreamEvent& e) { return e.value % 1000 < 750; };
    case 4:
      return [](const StreamEvent& e) { return e.item % 5 != 1; };
    default:
      return [](const StreamEvent& e) { return (e.group ^ e.item) % 2 == 0; };
  }
}

MultiQueryWorkload::MultiQueryWorkload(const MultiQueryWorkloadOptions& options)
    : options_(options), event_rng_(options.seed ^ 0x4556454E54ULL) {
  GEMS_CHECK(options.num_queries >= 1);
  GEMS_CHECK(options.num_groups >= 1);
  GEMS_CHECK(options.universe >= 1);
  GEMS_CHECK(options.events_per_tick >= 1);
  // Sliding specs use slide = window_size / 4.
  GEMS_CHECK(options.window_size >= 4 && options.window_size % 4 == 0);

  Rng spec_rng(options.seed ^ 0x5351554552ULL);
  size_t distinct = 0;
  for (size_t i = 0; i < options.num_queries; ++i) {
    if (i > 0 && spec_rng.NextBernoulli(options.overlap)) {
      // Duplicate: an exact copy of a uniformly chosen earlier query —
      // the state-dedup opportunity the overlap factor dials.
      specs_.push_back(specs_[spec_rng.NextBounded(i)]);
      continue;
    }
    MultiQuerySpec spec;
    spec.options.window_size = options.window_size;
    switch (distinct % 7) {
      case 0:
        spec.options.aggregate = AggregateKind::kCountDistinct;
        break;
      case 1:
        spec.options.aggregate = AggregateKind::kTopK;
        break;
      case 2:
        spec.options.aggregate = AggregateKind::kQuantiles;
        break;
      case 3:
        spec.options.aggregate = AggregateKind::kSum;
        break;
      case 4:
        spec.options.aggregate = AggregateKind::kCountDistinct;
        spec.options.slide = options.window_size / 4;
        break;
      case 5:
        spec.options.aggregate = AggregateKind::kTopK;
        spec.options.slide = options.window_size / 4;
        break;
      default:
        spec.options.aggregate = AggregateKind::kQuantiles;
        spec.options.slide = options.window_size / 4;
        break;
    }
    // Parameter jitter draws each knob from a small set of realistic
    // configurations — fleets of standing queries cluster on a handful of
    // accuracy settings, so two "distinct" specs can still land on the
    // same (aggregate, knobs, filters) bucket and share a physical query.
    spec.options.hll_precision = 8 + static_cast<int>(distinct % 3);
    spec.options.top_k_capacity = 64 + 8 * (distinct % 4);
    spec.options.kll_k = 200 + 56 * static_cast<uint32_t>(distinct % 3);
    // Every standing query carries at least one predicate (telemetry
    // queries always select a slice); the engine evaluates each distinct
    // palette predicate once per event no matter how many queries use it.
    const size_t num_filters = 1 + distinct % 2;
    for (size_t f = 0; f < num_filters; ++f) {
      spec.filters.push_back(spec_rng.NextBounded(PaletteSize()));
    }
    specs_.push_back(std::move(spec));
    ++distinct;
  }

  if (options.group_skew > 0.0 && options.num_groups > 1) {
    ZipfGenerator zipf(options.num_groups, options.group_skew,
                       options.seed ^ 0x47524F5550ULL);
    group_sequence_ = zipf.Take(kGroupSequenceLength);
  }
}

std::vector<StreamEvent> MultiQueryWorkload::GenerateEvents(size_t n) {
  std::vector<StreamEvent> events;
  events.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    StreamEvent event;
    event.timestamp = next_event_index_ / options_.events_per_tick;
    if (group_sequence_.empty()) {
      event.group = event_rng_.NextBounded(options_.num_groups);
    } else {
      event.group = group_sequence_[next_group_++ % group_sequence_.size()];
    }
    event.item = event_rng_.NextBounded(options_.universe);
    event.value = 1 + static_cast<int64_t>(event_rng_.NextBounded(1000));
    events.push_back(event);
    ++next_event_index_;
  }
  return events;
}

}  // namespace gems
