#ifndef GEMS_WORKLOAD_MULTI_QUERY_H_
#define GEMS_WORKLOAD_MULTI_QUERY_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/random.h"
#include "engine/stream_query.h"

/// \file
/// Deterministic multi-query workload generator: a population of standing
/// queries with a configurable overlap factor (the fraction of queries that
/// are exact duplicates of earlier ones — the state-dedup opportunity) and
/// a group-skewed event stream to run them over. The E17 bench and the
/// multi-query tests share this one source, so "256 queries at 50% overlap"
/// means the same thing in both.
///
/// Filters come from a small canonical palette of pure functions of the
/// event fields, addressed by index. Both sides of an equivalence check
/// (MultiQueryEngine registration and independent StreamQuery::AddFilter)
/// construct predicates from the same palette entries, so the accepted
/// event sets are identical by construction.

namespace gems {

/// One standing query: engine options plus palette filter indices.
struct MultiQuerySpec {
  StreamQuery::Options options;
  std::vector<size_t> filters;  // Indices into MultiQueryWorkload palette.
};

struct MultiQueryWorkloadOptions {
  size_t num_queries = 64;
  /// P(a query duplicates a uniformly chosen earlier query) — the expected
  /// fraction of logical queries sharing physical state.
  double overlap = 0.5;
  size_t num_groups = 64;
  /// Item universe per event (items drawn uniformly).
  uint64_t universe = uint64_t{1} << 20;
  /// Zipf exponent over group keys; 0 = uniform groups.
  double group_skew = 1.1;
  /// Tumbling window size queries are built with; sliding specs use
  /// window_size with slide = window_size / 4.
  uint64_t window_size = 1024;
  /// Events per timestamp tick (so windows close every
  /// window_size * events_per_tick events).
  size_t events_per_tick = 8;
  uint64_t seed = 1;
};

/// Deterministic generator for the query population and its event stream.
class MultiQueryWorkload {
 public:
  explicit MultiQueryWorkload(const MultiQueryWorkloadOptions& options);

  /// The generated query population. Specs cycle through every aggregate
  /// kind (including sliding COUNT DISTINCT / TOP-K / QUANTILES) with
  /// per-spec parameter jitter, so distinct specs never collide; duplicate
  /// specs are exact copies of earlier ones.
  const std::vector<MultiQuerySpec>& specs() const { return specs_; }

  /// Number of canonical filter predicates.
  static size_t PaletteSize();

  /// The `index`-th canonical predicate (pure function of the event).
  static std::function<bool(const StreamEvent&)> PaletteFilter(size_t index);

  /// Generates the next `n` events: non-decreasing timestamps (advancing
  /// one tick every events_per_tick events), Zipf-skewed groups, uniform
  /// items, bounded values. Repeated calls continue the stream.
  std::vector<StreamEvent> GenerateEvents(size_t n);

  const MultiQueryWorkloadOptions& options() const { return options_; }

 private:
  MultiQueryWorkloadOptions options_;
  std::vector<MultiQuerySpec> specs_;
  Rng event_rng_;
  std::vector<uint64_t> group_sequence_;  // Pre-drawn Zipf group keys.
  size_t next_group_ = 0;
  uint64_t next_event_index_ = 0;
};

}  // namespace gems

#endif  // GEMS_WORKLOAD_MULTI_QUERY_H_
