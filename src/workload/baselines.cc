#include "workload/baselines.h"

#include <algorithm>

#include "common/check.h"

namespace gems {

size_t ExactDistinct::MemoryBytes() const {
  // Rough model: bucket array + one node per element.
  return items_.bucket_count() * sizeof(void*) +
         items_.size() * (sizeof(uint64_t) + 2 * sizeof(void*));
}

void ExactDistinct::Merge(const ExactDistinct& other) {
  items_.insert(other.items_.begin(), other.items_.end());
}

int64_t ExactFrequencies::Count(uint64_t item) const {
  const auto it = counts_.find(item);
  return it == counts_.end() ? 0 : it->second;
}

std::vector<uint64_t> ExactFrequencies::ItemsAbove(int64_t threshold) const {
  std::vector<uint64_t> out;
  for (const auto& [item, count] : counts_) {
    if (count >= threshold) out.push_back(item);
  }
  return out;
}

std::vector<std::pair<uint64_t, int64_t>> ExactFrequencies::TopK(
    size_t k) const {
  std::vector<std::pair<uint64_t, int64_t>> all(counts_.begin(),
                                                counts_.end());
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

double ExactFrequencies::F2() const {
  double f2 = 0.0;
  for (const auto& [item, count] : counts_) {
    f2 += static_cast<double>(count) * static_cast<double>(count);
  }
  return f2;
}

size_t ExactFrequencies::NumKeys() const {
  size_t n = 0;
  for (const auto& [item, count] : counts_) {
    if (count != 0) ++n;
  }
  return n;
}

size_t ExactFrequencies::MemoryBytes() const {
  return counts_.bucket_count() * sizeof(void*) +
         counts_.size() * (2 * sizeof(uint64_t) + 2 * sizeof(void*));
}

void ExactFrequencies::Merge(const ExactFrequencies& other) {
  for (const auto& [item, count] : other.counts_) counts_[item] += count;
  total_ += other.total_;
}

void ExactQuantiles::EnsureSorted() {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double ExactQuantiles::Quantile(double q) {
  GEMS_CHECK(!values_.empty());
  GEMS_CHECK(q >= 0.0 && q <= 1.0);
  EnsureSorted();
  const size_t index = std::min(
      values_.size() - 1,
      static_cast<size_t>(q * static_cast<double>(values_.size())));
  return values_[index];
}

uint64_t ExactQuantiles::Rank(double value) {
  EnsureSorted();
  return static_cast<uint64_t>(
      std::upper_bound(values_.begin(), values_.end(), value) -
      values_.begin());
}

void ExactQuantiles::Merge(const ExactQuantiles& other) {
  values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  sorted_ = false;
}

}  // namespace gems
