#include "workload/metrics.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/check.h"

namespace gems {

RetrievalQuality CompareSets(const std::vector<uint64_t>& retrieved,
                             const std::vector<uint64_t>& truth) {
  const std::unordered_set<uint64_t> retrieved_set(retrieved.begin(),
                                                   retrieved.end());
  const std::unordered_set<uint64_t> truth_set(truth.begin(), truth.end());

  RetrievalQuality q;
  for (uint64_t item : retrieved_set) {
    if (truth_set.contains(item)) {
      ++q.true_positives;
    } else {
      ++q.false_positives;
    }
  }
  for (uint64_t item : truth_set) {
    if (!retrieved_set.contains(item)) ++q.false_negatives;
  }
  const size_t retrieved_n = retrieved_set.size();
  const size_t truth_n = truth_set.size();
  q.precision = retrieved_n == 0
                    ? 1.0
                    : static_cast<double>(q.true_positives) / retrieved_n;
  q.recall =
      truth_n == 0 ? 1.0 : static_cast<double>(q.true_positives) / truth_n;
  q.f1 = (q.precision + q.recall) == 0.0
             ? 0.0
             : 2.0 * q.precision * q.recall / (q.precision + q.recall);
  return q;
}

uint64_t ExactRank(const std::vector<double>& sorted_data, double value) {
  return static_cast<uint64_t>(
      std::upper_bound(sorted_data.begin(), sorted_data.end(), value) -
      sorted_data.begin());
}

double MeanRankError(const std::vector<double>& sorted_data,
                     const std::vector<double>& query_quantiles,
                     const std::vector<double>& estimated_values) {
  GEMS_CHECK(query_quantiles.size() == estimated_values.size());
  GEMS_CHECK(!sorted_data.empty());
  const double n = static_cast<double>(sorted_data.size());
  double total = 0.0;
  for (size_t i = 0; i < query_quantiles.size(); ++i) {
    const double true_rank = query_quantiles[i] * n;
    const double est_rank =
        static_cast<double>(ExactRank(sorted_data, estimated_values[i]));
    total += std::abs(est_rank - true_rank) / n;
  }
  return total / static_cast<double>(query_quantiles.size());
}

}  // namespace gems
