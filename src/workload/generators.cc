#include "workload/generators.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "hash/hash.h"

namespace gems {

ZipfGenerator::ZipfGenerator(uint64_t universe, double exponent, uint64_t seed,
                             bool shuffle)
    : universe_(universe),
      exponent_(exponent),
      shuffle_(shuffle),
      shuffle_seed_(Mix64(seed ^ 0xC0FFEE)),
      rng_(seed) {
  GEMS_CHECK(universe > 0);
  GEMS_CHECK(exponent >= 0.0);
  cdf_.resize(universe);
  double total = 0.0;
  for (uint64_t i = 0; i < universe; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = total;
  }
  for (double& c : cdf_) c /= total;
}

uint64_t ZipfGenerator::Next() {
  const double u = rng_.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  uint64_t rank = static_cast<uint64_t>(it - cdf_.begin());
  if (rank >= universe_) rank = universe_ - 1;
  if (!shuffle_) return rank;
  // Hash-permute so that item ids are uncorrelated with frequency rank,
  // while keeping the mapping bijective enough for experiment purposes
  // (collisions across 64-bit hash space are negligible).
  return Hash64(rank, shuffle_seed_);
}

std::vector<uint64_t> ZipfGenerator::Take(size_t n) {
  std::vector<uint64_t> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(Next());
  return out;
}

std::vector<uint64_t> UniformItemGenerator::Take(size_t n) {
  std::vector<uint64_t> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(Next());
  return out;
}

std::vector<uint64_t> DistinctItems(size_t n, uint64_t seed) {
  std::vector<uint64_t> out;
  out.reserve(n);
  const uint64_t salt = Mix64(seed);
  for (size_t i = 0; i < n; ++i) {
    // Distinct inputs to an injective-enough mixer; collisions over 64 bits
    // at laptop scale are vanishingly unlikely, and tests guard cardinality.
    out.push_back(Hash64(static_cast<uint64_t>(i), salt));
  }
  return out;
}

std::vector<double> GenerateValues(ValueDistribution distribution, size_t n,
                                   uint64_t seed) {
  std::vector<double> out;
  out.reserve(n);
  Rng rng(seed);
  switch (distribution) {
    case ValueDistribution::kUniform:
      for (size_t i = 0; i < n; ++i) out.push_back(rng.NextDouble());
      break;
    case ValueDistribution::kGaussian:
      for (size_t i = 0; i < n; ++i) out.push_back(rng.NextGaussian());
      break;
    case ValueDistribution::kLogNormal:
      for (size_t i = 0; i < n; ++i)
        out.push_back(std::exp(rng.NextGaussian()));
      break;
    case ValueDistribution::kSorted:
      for (size_t i = 0; i < n; ++i) out.push_back(static_cast<double>(i));
      break;
    case ValueDistribution::kReverse:
      for (size_t i = n; i-- > 0;) out.push_back(static_cast<double>(i));
      break;
    case ValueDistribution::kZipfValues: {
      ZipfGenerator zipf(std::max<uint64_t>(n / 10, 1), 1.1, seed,
                         /*shuffle=*/false);
      for (size_t i = 0; i < n; ++i)
        out.push_back(static_cast<double>(zipf.Next()));
      break;
    }
  }
  return out;
}

uint64_t FlowRecord::FlowKey() const {
  uint64_t key = (static_cast<uint64_t>(src_ip) << 32) | dst_ip;
  uint64_t ports = (static_cast<uint64_t>(src_port) << 24) |
                   (static_cast<uint64_t>(dst_port) << 8) | protocol;
  return Hash64(key ^ Mix64(ports), 0x5EED);
}

FlowGenerator::FlowGenerator(const Options& options, uint64_t seed)
    : options_(options),
      flow_picker_(options.num_flows, options.flow_size_skew, seed,
                   /*shuffle=*/false),
      rng_(Mix64(seed ^ 0xF10)) {}

FlowRecord FlowGenerator::Next() {
  if (options_.include_scan && rng_.NextBernoulli(0.05)) {
    // Scanner: fixed source sweeping destinations.
    FlowRecord r;
    r.src_ip = 0x0A000001;  // 10.0.0.1
    r.dst_ip = 0xC0A80000 + static_cast<uint32_t>(
                                scan_counter_++ % options_.scan_fanout);
    r.src_port = 31337;
    r.dst_port = static_cast<uint16_t>(1 + scan_counter_ % 1024);
    r.protocol = 6;
    r.num_bytes = 40;  // SYN-sized.
    return r;
  }
  const uint64_t flow = flow_picker_.Next();
  // Derive stable flow attributes from the flow id.
  const uint64_t h = Mix64(flow + 1);
  FlowRecord r;
  r.src_ip = static_cast<uint32_t>(h % options_.num_hosts) + 0x0A000000;
  r.dst_ip =
      static_cast<uint32_t>((h >> 20) % options_.num_hosts) + 0xC0A80000;
  r.src_port = static_cast<uint16_t>(1024 + (h >> 40) % 60000);
  r.dst_port = static_cast<uint16_t>((h >> 12) % 2 == 0 ? 443 : 80);
  r.protocol = (h >> 50) % 10 == 0 ? 17 : 6;
  r.num_bytes = static_cast<uint32_t>(64 + rng_.NextBounded(1400));
  return r;
}

std::vector<FlowRecord> FlowGenerator::Take(size_t n) {
  std::vector<FlowRecord> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(Next());
  return out;
}

ExposureGenerator::ExposureGenerator(const Options& options, uint64_t seed)
    : options_(options), rng_(seed) {
  GEMS_CHECK(options.num_users > 0);
  GEMS_CHECK(options.num_campaigns > 0);
  GEMS_CHECK(options.audience_fraction > 0.0 &&
             options.audience_fraction <= 1.0);
}

bool ExposureGenerator::InAudience(uint64_t user_id,
                                   uint32_t campaign_id) const {
  // Each campaign's audience is a contiguous arc of the hashed-user circle,
  // with arcs for consecutive campaigns offset by half an arc so adjacent
  // campaigns overlap by ~50% of their audiences.
  const double position = HashToUnit(Hash64(user_id, 0xAD5EED));
  const double arc = options_.audience_fraction;
  const double start = 0.5 * arc * campaign_id;
  double offset = position - start;
  offset -= std::floor(offset);  // Wrap to [0, 1).
  return offset < arc;
}

ExposureEvent ExposureGenerator::Next() {
  // Rejection-sample a (user, campaign) pair consistent with audiences.
  while (true) {
    const uint64_t user = rng_.NextBounded(options_.num_users);
    const uint32_t campaign =
        static_cast<uint32_t>(rng_.NextBounded(options_.num_campaigns));
    if (!InAudience(user, campaign)) continue;
    ExposureEvent e;
    e.user_id = user;
    e.campaign_id = campaign;
    const uint64_t h = Mix64(user + 0xDE40);
    e.region = static_cast<uint8_t>(h % options_.num_regions);
    e.age_band = static_cast<uint8_t>((h >> 8) % options_.num_age_bands);
    return e;
  }
}

std::vector<ExposureEvent> ExposureGenerator::Take(size_t n) {
  std::vector<ExposureEvent> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(Next());
  return out;
}

}  // namespace gems
