#ifndef GEMS_WORKLOAD_METRICS_H_
#define GEMS_WORKLOAD_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

/// \file
/// Evaluation metrics for the experiment harness: set-retrieval quality for
/// heavy hitters and LSH, and rank error for quantile sketches.

namespace gems {

/// Precision/recall/F1 of a retrieved set against a truth set.
struct RetrievalQuality {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t false_negatives = 0;
};

/// Compares `retrieved` against `truth` (both as item-id sets; duplicates
/// ignored).
RetrievalQuality CompareSets(const std::vector<uint64_t>& retrieved,
                             const std::vector<uint64_t>& truth);

/// Normalized rank error |rank_est - rank_true| / n averaged over the given
/// query quantiles. `sorted_data` must be sorted ascending.
double MeanRankError(const std::vector<double>& sorted_data,
                     const std::vector<double>& query_quantiles,
                     const std::vector<double>& estimated_values);

/// Exact rank of `value` in sorted data (# elements <= value).
uint64_t ExactRank(const std::vector<double>& sorted_data, double value);

}  // namespace gems

#endif  // GEMS_WORKLOAD_METRICS_H_
