#ifndef GEMS_WORKLOAD_GENERATORS_H_
#define GEMS_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"

/// \file
/// Synthetic workload generators standing in for the data sources the paper
/// describes: skewed item streams (embedded-tweet views, search queries),
/// IP flow records (the ISP/Gigascope era), and ad-exposure logs (the online
/// advertising era). All generators are seeded and deterministic.

namespace gems {

/// Zipf-distributed item generator over universe [0, universe).
/// P(item = i) proportional to 1/(i+1)^exponent. Items are identity-mapped
/// (item 0 is the most frequent) unless `shuffle` is set, which applies a
/// hash permutation so frequency is uncorrelated with key value.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t universe, double exponent, uint64_t seed,
                bool shuffle = true);

  ZipfGenerator(const ZipfGenerator&) = default;
  ZipfGenerator& operator=(const ZipfGenerator&) = default;
  ZipfGenerator(ZipfGenerator&&) = default;
  ZipfGenerator& operator=(ZipfGenerator&&) = default;

  /// Draws the next item.
  uint64_t Next();

  /// Draws `n` items.
  std::vector<uint64_t> Take(size_t n);

  uint64_t universe() const { return universe_; }
  double exponent() const { return exponent_; }

 private:
  uint64_t universe_;
  double exponent_;
  bool shuffle_;
  uint64_t shuffle_seed_;
  std::vector<double> cdf_;  // Cumulative probabilities, size = universe.
  Rng rng_;
};

/// Uniform item generator over [0, universe).
class UniformItemGenerator {
 public:
  UniformItemGenerator(uint64_t universe, uint64_t seed)
      : universe_(universe), rng_(seed) {}

  uint64_t Next() { return rng_.NextBounded(universe_); }
  std::vector<uint64_t> Take(size_t n);

 private:
  uint64_t universe_;
  Rng rng_;
};

/// Emits `n` distinct 64-bit items in pseudo-random order (for cardinality
/// experiments: every item unique).
std::vector<uint64_t> DistinctItems(size_t n, uint64_t seed);

/// Real-valued stream distributions for quantile sketches.
enum class ValueDistribution {
  kUniform,     // U[0, 1)
  kGaussian,    // N(0, 1)
  kLogNormal,   // exp(N(0, 1)) — heavy right tail
  kSorted,      // 0, 1, 2, ... (adversarial for some quantile sketches)
  kReverse,     // n-1, ..., 1, 0
  kZipfValues,  // Values with Zipfian repetition structure
};

/// Generates `n` doubles from the given distribution.
std::vector<double> GenerateValues(ValueDistribution distribution, size_t n,
                                   uint64_t seed);

/// A synthetic IP flow record (the Gigascope/CMON scenario).
struct FlowRecord {
  uint32_t src_ip;
  uint32_t dst_ip;
  uint16_t src_port;
  uint16_t dst_port;
  uint8_t protocol;   // 6 = TCP, 17 = UDP.
  uint32_t num_bytes;  // Payload size of this packet.

  /// Key identifying the flow (5-tuple hash input).
  uint64_t FlowKey() const;
  /// Key identifying the destination (for per-destination GROUP BY).
  uint64_t DestKey() const { return dst_ip; }
};

/// Generates packet streams with realistic structure: a few "elephant"
/// flows carrying most bytes (Zipfian flow sizes), many "mice", plus a
/// configurable scan event (one source touching many destinations).
class FlowGenerator {
 public:
  struct Options {
    uint64_t num_flows = 10000;      // Distinct flows.
    double flow_size_skew = 1.2;     // Zipf exponent on packets per flow.
    uint64_t num_hosts = 4096;       // Distinct IPs to draw from.
    bool include_scan = false;       // Inject a port-scan-like source.
    uint64_t scan_fanout = 512;      // Destinations touched by the scanner.
  };

  FlowGenerator(const Options& options, uint64_t seed);

  /// Next packet.
  FlowRecord Next();

  std::vector<FlowRecord> Take(size_t n);

 private:
  Options options_;
  ZipfGenerator flow_picker_;
  Rng rng_;
  uint64_t scan_counter_ = 0;
};

/// An ad-exposure event (the online advertising scenario): one user seeing
/// one campaign, with demographic attributes for slice-and-dice.
struct ExposureEvent {
  uint64_t user_id;
  uint32_t campaign_id;
  uint8_t region;     // 0..num_regions-1
  uint8_t age_band;   // 0..num_age_bands-1
};

/// Generates exposure logs where campaigns have overlapping audiences drawn
/// from a shared user universe, so union/intersection reach questions have
/// non-trivial answers.
class ExposureGenerator {
 public:
  struct Options {
    uint64_t num_users = 100000;
    uint32_t num_campaigns = 3;
    uint8_t num_regions = 4;
    uint8_t num_age_bands = 5;
    /// Each campaign reaches a contiguous (after hashing) slice of users of
    /// this fraction; slices overlap pairwise by construction.
    double audience_fraction = 0.4;
  };

  ExposureGenerator(const Options& options, uint64_t seed);

  /// Next exposure event.
  ExposureEvent Next();

  std::vector<ExposureEvent> Take(size_t n);

  /// True if `user_id` is in campaign `campaign_id`'s audience (ground
  /// truth for reach experiments).
  bool InAudience(uint64_t user_id, uint32_t campaign_id) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
  Rng rng_;
};

}  // namespace gems

#endif  // GEMS_WORKLOAD_GENERATORS_H_
