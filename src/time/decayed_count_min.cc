#include "time/decayed_count_min.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "core/wire.h"
#include "hash/hash.h"

namespace gems {

namespace {

// Renormalize well before double underflow: scale_ only shrinks, and
// stored counters grow as 1/scale_, so fold the scale back in while both
// are comfortably inside the normal range.
constexpr double kRenormalizeBelow = 1e-50;

constexpr uint64_t kMaxMatrixCells = uint64_t{1} << 28;

}  // namespace

DecayedCountMin::DecayedCountMin(uint32_t width, uint32_t depth,
                                 double half_life, uint64_t seed)
    : width_(width), depth_(depth), seed_(seed), half_life_(half_life) {
  GEMS_CHECK(width >= 1);
  GEMS_CHECK(depth >= 1);
  GEMS_CHECK(std::isfinite(half_life) && half_life > 0.0);
  counters_.assign(static_cast<size_t>(width) * depth, 0.0);
  row_seeds_.reserve(depth);
  for (uint32_t row = 0; row < depth; ++row) {
    row_seeds_.push_back(DeriveSeed(seed_, row));
  }
}

uint64_t DecayedCountMin::Bucket(uint32_t row, uint64_t item) const {
  return Hash64(item, row_seeds_[row]) % width_;
}

void DecayedCountMin::Advance(uint64_t now) {
  if (!started_) {
    started_ = true;
    last_timestamp_ = now;
    return;
  }
  if (now <= last_timestamp_) return;  // Late timestamps clamp.
  const double dt = static_cast<double>(now - last_timestamp_);
  last_timestamp_ = now;
  scale_ *= std::exp2(-dt / half_life_);
  if (scale_ < kRenormalizeBelow) Renormalize();
}

void DecayedCountMin::Renormalize() {
  for (double& counter : counters_) counter *= scale_;
  total_ *= scale_;
  scale_ = 1.0;
}

void DecayedCountMin::Deposit(uint64_t item, double weight) {
  GEMS_CHECK(weight >= 0.0);
  started_ = true;
  const double inflated = weight / scale_;
  total_ += inflated;
  for (uint32_t row = 0; row < depth_; ++row) {
    counters_[static_cast<size_t>(row) * width_ + Bucket(row, item)] +=
        inflated;
  }
}

void DecayedCountMin::UpdateBatch(std::span<const uint64_t> items) {
  const double inflated = 1.0 / scale_;
  started_ = started_ || !items.empty();
  total_ += inflated * static_cast<double>(items.size());
  for (uint32_t row = 0; row < depth_; ++row) {
    double* const row_ptr = counters_.data() + static_cast<size_t>(row) * width_;
    const uint64_t row_seed = row_seeds_[row];
    for (const uint64_t item : items) {
      row_ptr[Hash64(item, row_seed) % width_] += inflated;
    }
  }
}

void DecayedCountMin::UpdateBatchTimed(std::span<const uint64_t> timestamps,
                                       std::span<const uint64_t> items) {
  const size_t n = std::min(timestamps.size(), items.size());
  size_t i = 0;
  while (i < n) {
    Advance(timestamps[i]);
    // Batch the run of items whose timestamps do not advance the clock
    // (equal or late ones clamp), sharing one scale lookup.
    size_t j = i + 1;
    while (j < n && timestamps[j] <= last_timestamp_) ++j;
    UpdateBatch(items.subspan(i, j - i));
    i = j;
  }
}

void DecayedCountMin::ApplyHashed(const HashedBatch& batch) {
  if (batch.empty()) return;
  if (!batch.has_timestamps()) {
    UpdateBatch(batch.items());
    return;
  }
  UpdateBatchTimed(batch.timestamps(), batch.items());
}

double DecayedCountMin::Estimate(uint64_t item) const {
  double best = counters_[Bucket(0, item)];
  for (uint32_t row = 1; row < depth_; ++row) {
    best = std::min(
        best, counters_[static_cast<size_t>(row) * width_ + Bucket(row, item)]);
  }
  return best * scale_;
}

gems::Estimate DecayedCountMin::EstimateWithBounds(uint64_t item,
                                                   double confidence) const {
  const double value = Estimate(item);
  const double eps = std::exp(1.0) / static_cast<double>(width_);
  gems::Estimate e;
  e.value = value;
  e.upper = value;  // CM never underestimates.
  e.lower = std::max(0.0, value - eps * TotalWeight());
  e.confidence = confidence;
  return e;
}

Status DecayedCountMin::Merge(const DecayedCountMin& other) {
  if (width_ != other.width_ || depth_ != other.depth_ ||
      seed_ != other.seed_ || half_life_ != other.half_life_) {
    return Status::InvalidArgument(
        "decayed CM merge requires identical shape, seed, and half_life");
  }
  if (!other.started_) return Status::Ok();
  // Align both clocks to the later of the two, then fold other's logical
  // counters in, decayed from its clock to the merged one.
  Advance(other.last_timestamp_);
  const double decay =
      other.last_timestamp_ >= last_timestamp_
          ? 1.0
          : std::exp2(
                -static_cast<double>(last_timestamp_ - other.last_timestamp_) /
                half_life_);
  const double factor = other.scale_ * decay / scale_;
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i] * factor;
  }
  total_ += other.total_ * factor;
  return Status::Ok();
}

std::vector<uint8_t> DecayedCountMin::Serialize() const {
  std::vector<uint8_t> out;
  ByteSink sink(&out);
  SerializeTo(sink);
  return out;
}

void DecayedCountMin::SerializeTo(ByteSink& sink) const {
  EnvelopeBuilder env(sink, kTypeId);
  sink.PutU32(width_);
  sink.PutU32(depth_);
  sink.PutU64(seed_);
  sink.PutDouble(half_life_);
  sink.PutU8(started_ ? 1 : 0);
  sink.PutU64(last_timestamp_);
  // Logical (decayed) units: the restored sketch starts at scale 1, so the
  // round trip is byte-identical regardless of the writer's scale.
  sink.PutDouble(total_ * scale_);
  for (const double counter : counters_) sink.PutDouble(counter * scale_);
  env.Finish();
}

Result<DecayedCountMin> DecayedCountMin::Deserialize(
    std::span<const uint8_t> bytes) {
  Result<ByteReader> opened = OpenEnvelope(kTypeId, bytes);
  if (!opened.ok()) return opened.status();
  ByteReader& reader = opened.value();
  uint8_t started = 0;
  uint32_t width = 0, depth = 0;
  uint64_t seed = 0, last_timestamp = 0;
  double half_life = 0.0, total = 0.0;
  if (Status s = reader.GetU32(&width); !s.ok()) return s;
  if (Status s = reader.GetU32(&depth); !s.ok()) return s;
  if (Status s = reader.GetU64(&seed); !s.ok()) return s;
  if (Status s = reader.GetDouble(&half_life); !s.ok()) return s;
  if (Status s = reader.GetU8(&started); !s.ok()) return s;
  if (Status s = reader.GetU64(&last_timestamp); !s.ok()) return s;
  if (Status s = reader.GetDouble(&total); !s.ok()) return s;
  if (width == 0 || depth == 0 ||
      static_cast<uint64_t>(width) * depth > kMaxMatrixCells) {
    return Status::Corruption("decayed CM: bad shape");
  }
  if (!std::isfinite(half_life) || half_life <= 0.0) {
    return Status::Corruption("decayed CM: bad half_life");
  }
  if (started > 1 || !std::isfinite(total) || total < 0.0) {
    return Status::Corruption("decayed CM: bad state");
  }
  if (reader.remaining() != static_cast<size_t>(width) * depth * 8) {
    return Status::Corruption("decayed CM: counter matrix size mismatch");
  }
  DecayedCountMin sketch(width, depth, half_life, seed);
  for (double& counter : sketch.counters_) {
    if (Status s = reader.GetDouble(&counter); !s.ok()) return s;
    if (!std::isfinite(counter) || counter < 0.0) {
      return Status::Corruption("decayed CM: bad counter");
    }
  }
  sketch.started_ = started != 0;
  sketch.last_timestamp_ = started != 0 ? last_timestamp : 0;
  sketch.total_ = total;
  if (started == 0 && (last_timestamp != 0 || total != 0.0)) {
    return Status::Corruption("decayed CM: unstarted sketch carries state");
  }
  return sketch;
}

}  // namespace gems
