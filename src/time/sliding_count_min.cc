#include "time/sliding_count_min.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/layout.h"
#include "core/wire.h"

namespace gems {

namespace {

constexpr size_t kMaxPanes = 1u << 20;

}  // namespace

SlidingCountMin::SlidingCountMin(uint32_t width, uint32_t depth,
                                 uint64_t pane_width, size_t num_panes,
                                 uint64_t seed)
    : ring_(CountMinSketch(width, depth, seed, /*conservative_update=*/false,
                           SketchLayout::kFlat),
            pane_width, num_panes) {}

void SlidingCountMin::UpdateBatch(std::span<const uint64_t> items) {
  if (items.empty()) return;
  ring_.SummaryAt(ring_.last_timestamp()).UpdateBatch(items);
}

void SlidingCountMin::UpdateBatchTimed(std::span<const uint64_t> timestamps,
                                       std::span<const uint64_t> items) {
  const size_t n = std::min(timestamps.size(), items.size());
  const uint64_t pane_width = ring_.pane_width();
  size_t i = 0;
  while (i < n) {
    // Open (or clamp into) the pane the run starts in, then extend the run
    // while items keep landing in a pane no newer than the current one —
    // late timestamps clamp, so they stay in the run too.
    CountMinSketch& pane = ring_.SummaryAt(timestamps[i]);
    const uint64_t current = ring_.CurrentPaneId();
    uint64_t run_max = timestamps[i];
    size_t j = i + 1;
    while (j < n && timestamps[j] / pane_width <= current) {
      run_max = std::max(run_max, timestamps[j]);
      ++j;
    }
    pane.UpdateBatch(items.subspan(i, j - i));
    // Per-item ingest tracks the max timestamp even when it does not
    // rotate; keep the clock byte-identical.
    ring_.Advance(run_max);
    i = j;
  }
}

void SlidingCountMin::ApplyHashed(const HashedBatch& batch) {
  if (batch.empty()) return;
  if (!batch.has_timestamps()) {
    ring_.SummaryAt(ring_.last_timestamp()).UpdateBatch(batch.items());
    return;
  }
  UpdateBatchTimed(batch.timestamps(), batch.items());
}

uint64_t SlidingCountMin::Estimate(uint64_t item) const {
  const CountMinSketch& closed = ring_.ClosedMerged();
  const CountMinSketch* current = ring_.CurrentSummary();
  const uint32_t w = width();
  const uint32_t d = depth();
  // Merge is a counter-wise sum, so the windowed counter for (row, item) is
  // just closed[row][b] + current[row][b]: no merged sketch materialized.
  uint64_t best = UINT64_MAX;
  for (uint32_t row = 0; row < d; ++row) {
    const uint64_t b = closed.BucketOf(row, item);
    uint64_t counter = closed.counters()[static_cast<size_t>(row) * w + b];
    if (current != nullptr) {
      counter += current->counters()[static_cast<size_t>(row) * w + b];
    }
    best = std::min(best, counter);
  }
  return best == UINT64_MAX ? 0 : best;
}

gems::Estimate SlidingCountMin::EstimateWithBounds(uint64_t item,
                                                   double confidence) const {
  const double value = static_cast<double>(Estimate(item));
  const double eps = std::exp(1.0) / static_cast<double>(width());
  gems::Estimate e;
  e.value = value;
  e.upper = value;  // CM never underestimates.
  e.lower = std::max(0.0, value - eps * static_cast<double>(TotalWeight()));
  e.confidence = confidence;
  return e;
}

int64_t SlidingCountMin::TotalWeight() const {
  int64_t total = ring_.ClosedMerged().TotalWeight();
  if (const CountMinSketch* current = ring_.CurrentSummary()) {
    total += current->TotalWeight();
  }
  return total;
}

Status SlidingCountMin::Merge(const SlidingCountMin& other) {
  if (width() != other.width() || depth() != other.depth() ||
      seed() != other.seed()) {
    return Status::InvalidArgument(
        "sliding CM merge requires identical shape and seed");
  }
  return ring_.Merge(other.ring_);
}

std::vector<uint8_t> SlidingCountMin::Serialize() const {
  std::vector<uint8_t> out;
  ByteSink sink(&out);
  SerializeTo(sink);
  return out;
}

void SlidingCountMin::SerializeTo(ByteSink& sink) const {
  EnvelopeBuilder env(sink, kTypeId);
  sink.PutU32(width());
  sink.PutU32(depth());
  sink.PutU64(seed());
  sink.PutU64(ring_.pane_width());
  sink.PutU32(static_cast<uint32_t>(ring_.num_panes()));
  sink.PutU8(ring_.started() ? 1 : 0);
  sink.PutU64(ring_.last_timestamp());
  sink.PutU32(static_cast<uint32_t>(ring_.NumLivePanes()));
  ring_.ForEachPane([&](uint64_t id, const CountMinSketch& pane) {
    sink.PutU64(id);
    const size_t length_at = sink.size();
    sink.PutU32(0);  // Nested envelope length, patched below.
    pane.SerializeTo(sink);
    sink.PatchU32(length_at, static_cast<uint32_t>(sink.size() - length_at - 4));
  });
  env.Finish();
}

Result<SlidingCountMin> SlidingCountMin::Deserialize(
    std::span<const uint8_t> bytes) {
  Result<ByteReader> opened = OpenEnvelope(kTypeId, bytes);
  if (!opened.ok()) return opened.status();
  ByteReader& reader = opened.value();
  uint8_t started = 0;
  uint32_t width = 0, depth = 0, num_panes = 0, pane_count = 0;
  uint64_t seed = 0, pane_width = 0, last_timestamp = 0;
  if (Status s = reader.GetU32(&width); !s.ok()) return s;
  if (Status s = reader.GetU32(&depth); !s.ok()) return s;
  if (Status s = reader.GetU64(&seed); !s.ok()) return s;
  if (Status s = reader.GetU64(&pane_width); !s.ok()) return s;
  if (Status s = reader.GetU32(&num_panes); !s.ok()) return s;
  if (Status s = reader.GetU8(&started); !s.ok()) return s;
  if (Status s = reader.GetU64(&last_timestamp); !s.ok()) return s;
  if (Status s = reader.GetU32(&pane_count); !s.ok()) return s;
  if (width == 0 || depth == 0) {
    return Status::Corruption("sliding CM: bad shape");
  }
  if (pane_width == 0 || num_panes == 0 || num_panes > kMaxPanes) {
    return Status::Corruption("sliding CM: bad window geometry");
  }
  if (started > 1 || pane_count > num_panes ||
      (started == 0) != (pane_count == 0)) {
    return Status::Corruption("sliding CM: inconsistent ring state");
  }
  SlidingCountMin sketch(width, depth, pane_width, num_panes, seed);
  for (uint32_t i = 0; i < pane_count; ++i) {
    uint64_t id = 0;
    uint32_t length = 0;
    ByteSpan envelope;
    if (Status s = reader.GetU64(&id); !s.ok()) return s;
    if (Status s = reader.GetU32(&length); !s.ok()) return s;
    if (Status s = reader.GetRawView(length, &envelope); !s.ok()) return s;
    Result<CountMinSketch> pane = CountMinSketch::Deserialize(envelope);
    if (!pane.ok()) return pane.status();
    if (pane.value().width() != width || pane.value().depth() != depth ||
        pane.value().seed() != seed ||
        pane.value().layout() != SketchLayout::kFlat ||
        pane.value().conservative_update()) {
      return Status::Corruption("sliding CM: pane parameter mismatch");
    }
    if (Status s = sketch.ring_.AppendPane(id, std::move(pane).value());
        !s.ok()) {
      return s;
    }
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("sliding CM: trailing payload bytes");
  }
  if (started != 0) {
    if (last_timestamp / pane_width != sketch.ring_.CurrentPaneId()) {
      return Status::Corruption(
          "sliding CM: clock inconsistent with newest pane");
    }
    sketch.ring_.Advance(last_timestamp);
  }
  return sketch;
}

}  // namespace gems
