#ifndef GEMS_TIME_EXPONENTIAL_HISTOGRAM_H_
#define GEMS_TIME_EXPONENTIAL_HISTOGRAM_H_

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "common/check.h"
#include "core/io.h"
#include "core/wire.h"

/// \file
/// Exponential histogram (Datar, Gionis, Indyk & Motwani 2002): counts the
/// number of events in the last W time units of a stream within a
/// (1 + eps) factor, using O((1/eps) log^2 W) bits — the canonical
/// sliding-window sketch of the streaming era the paper surveys. Buckets
/// of exponentially growing sizes are merged so that at most k = ceil(1/eps)
/// buckets of each size exist; only the oldest bucket is uncertain.

namespace gems {

/// Sliding-window event counter.
class ExponentialHistogram {
 public:
  /// Wire-format type tag, for registry dispatch.
  static constexpr SketchTypeId kTypeId = SketchTypeId::kExponentialHistogram;

  /// Counts events in the trailing `window` time units with relative
  /// error <= epsilon.
  ExponentialHistogram(uint64_t window, double epsilon);

  ExponentialHistogram(const ExponentialHistogram&) = default;
  ExponentialHistogram& operator=(const ExponentialHistogram&) = default;
  ExponentialHistogram(ExponentialHistogram&&) = default;
  ExponentialHistogram& operator=(ExponentialHistogram&&) = default;

  /// Records one event at `timestamp`. Late timestamps clamp to the newest
  /// one seen (the event is counted as if it happened now).
  void Add(uint64_t timestamp);

  /// Item-shaped alias for Add: the "item" is the event's timestamp. This
  /// is the update shape the registry's type-erased path uses.
  void Update(uint64_t timestamp) { Add(timestamp); }

  /// Batched ingest; identical to calling Add() per timestamp, in order.
  void UpdateBatch(std::span<const uint64_t> timestamps);

  /// Timed-update shape: records one event at `timestamp`. The item
  /// payload is irrelevant to a pure event counter and is ignored.
  void UpdateAt(uint64_t timestamp, uint64_t /*item*/) { Add(timestamp); }

  /// Batched timed ingest: one event per timestamp; items are ignored.
  void UpdateBatchTimed(std::span<const uint64_t> timestamps,
                        std::span<const uint64_t> /*items*/) {
    UpdateBatch(timestamps);
  }

  /// Advances the window clock without recording an event, expiring
  /// buckets that have left the window. Late `now` clamps.
  void Advance(uint64_t now);

  /// Estimated number of events in (now - window, now]; a `now` earlier
  /// than the newest timestamp seen clamps to it.
  uint64_t EstimateCount(uint64_t now) const;

  /// Estimated events in the window ending at the newest timestamp seen.
  double Estimate() const {
    return static_cast<double>(EstimateCount(last_timestamp_));
  }

  /// Number of buckets currently held (space accounting).
  size_t NumBuckets() const { return buckets_.size(); }

  uint64_t window() const { return window_; }
  double epsilon() const { return epsilon_; }
  uint64_t last_timestamp() const { return last_timestamp_; }

  std::vector<uint8_t> Serialize() const;
  /// Appends the wire envelope into a caller-owned buffer; byte-identical
  /// to Serialize().
  void SerializeTo(ByteSink& sink) const;
  static Result<ExponentialHistogram> Deserialize(
      std::span<const uint8_t> bytes);

 private:
  struct Bucket {
    uint64_t timestamp;  // Most recent event folded into this bucket.
    uint64_t size;       // Number of events (a power of two).
  };

  /// Drops buckets whose newest event has left the window.
  void ExpireBefore(uint64_t now);
  /// Restores the <= k buckets-per-size invariant by merging oldest pairs.
  void Canonicalize();

  uint64_t window_;
  double epsilon_;
  size_t max_per_size_;  // k = ceil(1/eps) (+1 transiently).
  uint64_t last_timestamp_ = 0;
  // Newest buckets at the front, oldest at the back.
  std::deque<Bucket> buckets_;
};

}  // namespace gems

#endif  // GEMS_TIME_EXPONENTIAL_HISTOGRAM_H_
