#ifndef GEMS_TIME_DECAYED_COUNT_MIN_H_
#define GEMS_TIME_DECAYED_COUNT_MIN_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/estimate.h"
#include "core/io.h"
#include "core/wire.h"
#include "hash/hashed_batch.h"

/// \file
/// Exponentially decayed Count-Min: every count halves each `half_life`
/// time units, so the sketch answers "how hot is this item *now*" instead
/// of "how often has it ever appeared". This is the recency-weighted
/// frequency signal behind TinyLFU-style cache admission — the E16 bench
/// plays that simulation out against a plain Count-Min.
///
/// Decay is lazy: counters are stored in inflated units and one global
/// `scale` factor carries the decay, so Advance() is O(1) — no pass over
/// the matrix. The logical value of a counter is always stored * scale;
/// Update deposits weight / scale so its logical contribution is exactly
/// `weight` at the update's timestamp. When scale underflows toward
/// denormals the matrix is renormalized once (stored *= scale, scale = 1).

namespace gems {

/// Count-Min over exponentially decayed weights (flat layout).
class DecayedCountMin {
 public:
  /// Wire-format type tag, for registry dispatch.
  static constexpr SketchTypeId kTypeId = SketchTypeId::kDecayedCountMin;

  /// Counts halve every `half_life` (> 0) time units.
  DecayedCountMin(uint32_t width, uint32_t depth, double half_life,
                  uint64_t seed = 0);

  DecayedCountMin(const DecayedCountMin&) = default;
  DecayedCountMin& operator=(const DecayedCountMin&) = default;
  DecayedCountMin(DecayedCountMin&&) = default;
  DecayedCountMin& operator=(DecayedCountMin&&) = default;

  /// Adds `weight` (>= 0) at the newest timestamp seen.
  void Update(uint64_t item, int64_t weight = 1) {
    Deposit(item, static_cast<double>(weight));
  }

  /// Adds `weight` at `timestamp`; late timestamps clamp to the newest one
  /// seen (the late item decays as if it arrived now).
  void UpdateAt(uint64_t timestamp, uint64_t item, int64_t weight = 1) {
    Advance(timestamp);
    Deposit(item, static_cast<double>(weight));
  }

  /// Batched unit-weight ingest at the newest timestamp seen.
  void UpdateBatch(std::span<const uint64_t> items);

  /// Batched timestamped unit-weight ingest; equivalent to calling
  /// UpdateAt() per item, in order.
  void UpdateBatchTimed(std::span<const uint64_t> timestamps,
                        std::span<const uint64_t> items);

  /// Ingest from a hashed batch (re-hashes per row like Count-Min, so the
  /// batch's seed need not match); uses its timestamp column if present.
  void ApplyHashed(const HashedBatch& batch);

  /// Advances the decay clock; O(1). Late `now` clamps (no un-decay).
  void Advance(uint64_t now);

  /// Decayed point query: overestimate of the item's decayed weight as of
  /// last_timestamp(). Mutation-free.
  double Estimate(uint64_t item) const;

  /// Decayed point query with the one-sided Markov interval against the
  /// decayed total weight.
  gems::Estimate EstimateWithBounds(uint64_t item,
                                    double confidence = 0.95) const;

  /// Sum of all decayed weights as of last_timestamp().
  double TotalWeight() const { return total_ * scale_; }

  /// Counter-wise sum after aligning both decay clocks to the later of the
  /// two; identical shape, seed, and half_life required.
  Status Merge(const DecayedCountMin& other);

  uint32_t width() const { return width_; }
  uint32_t depth() const { return depth_; }
  uint64_t seed() const { return seed_; }
  double half_life() const { return half_life_; }
  uint64_t last_timestamp() const { return last_timestamp_; }
  size_t MemoryBytes() const { return counters_.size() * sizeof(double); }

  std::vector<uint8_t> Serialize() const;
  /// Appends the wire envelope into a caller-owned buffer; byte-identical
  /// to Serialize(). Counters are written in logical (decayed) units, so a
  /// serialize -> deserialize -> serialize round trip is byte-identical.
  void SerializeTo(ByteSink& sink) const;
  static Result<DecayedCountMin> Deserialize(std::span<const uint8_t> bytes);

 private:
  uint64_t Bucket(uint32_t row, uint64_t item) const;
  /// Adds `weight` logical units at the current clock.
  void Deposit(uint64_t item, double weight);
  /// Folds the global scale into the matrix when it nears underflow.
  void Renormalize();

  uint32_t width_;
  uint32_t depth_;
  uint64_t seed_;
  double half_life_;
  bool started_ = false;
  uint64_t last_timestamp_ = 0;
  // Logical value = stored * scale_; scale_ shrinks as time advances.
  double scale_ = 1.0;
  double total_ = 0.0;
  // depth_ rows of width_ counters, row-major (flat layout).
  std::vector<double> counters_;
  // Per-row derived hash seeds, same derivation as the flat Count-Min so
  // the two sketches see identical bucket collisions (fair E16 comparison).
  std::vector<uint64_t> row_seeds_;
};

}  // namespace gems

#endif  // GEMS_TIME_DECAYED_COUNT_MIN_H_
