#include "time/sliding_hll.h"

#include <algorithm>
#include <utility>

#include "core/wire.h"

namespace gems {

namespace {

constexpr size_t kMaxPanes = 1u << 20;

}  // namespace

SlidingHyperLogLog::SlidingHyperLogLog(int precision, uint64_t pane_width,
                                       size_t num_panes, uint64_t seed)
    : ring_(HyperLogLog(precision, seed), pane_width, num_panes) {}

void SlidingHyperLogLog::UpdateBatch(std::span<const uint64_t> items) {
  if (items.empty()) return;
  ring_.SummaryAt(ring_.last_timestamp()).UpdateBatch(items);
}

void SlidingHyperLogLog::UpdateBatchTimed(
    std::span<const uint64_t> timestamps, std::span<const uint64_t> items) {
  const size_t n = std::min(timestamps.size(), items.size());
  const uint64_t pane_width = ring_.pane_width();
  size_t i = 0;
  while (i < n) {
    // Open (or clamp into) the pane the run starts in, then extend the run
    // while items keep landing in a pane no newer than the current one —
    // late timestamps clamp, so they stay in the run too.
    HyperLogLog& pane = ring_.SummaryAt(timestamps[i]);
    const uint64_t current = ring_.CurrentPaneId();
    uint64_t run_max = timestamps[i];
    size_t j = i + 1;
    while (j < n && timestamps[j] / pane_width <= current) {
      run_max = std::max(run_max, timestamps[j]);
      ++j;
    }
    pane.UpdateBatch(items.subspan(i, j - i));
    // Per-item ingest tracks the max timestamp even when it does not
    // rotate; keep the clock byte-identical.
    ring_.Advance(run_max);
    i = j;
  }
}

void SlidingHyperLogLog::ApplyHashed(const HashedBatch& batch) {
  if (batch.empty()) return;
  GEMS_CHECK(batch.seed() == seed());
  if (!batch.has_timestamps()) {
    ring_.SummaryAt(ring_.last_timestamp()).UpdateHashes(batch.hashes());
    return;
  }
  const std::span<const uint64_t> timestamps = batch.timestamps();
  const std::span<const uint64_t> hashes = batch.hashes();
  const uint64_t pane_width = ring_.pane_width();
  size_t i = 0;
  while (i < batch.size()) {
    HyperLogLog& pane = ring_.SummaryAt(timestamps[i]);
    const uint64_t current = ring_.CurrentPaneId();
    uint64_t run_max = timestamps[i];
    size_t j = i + 1;
    while (j < batch.size() && timestamps[j] / pane_width <= current) {
      run_max = std::max(run_max, timestamps[j]);
      ++j;
    }
    pane.UpdateHashes(hashes.subspan(i, j - i));
    ring_.Advance(run_max);
    i = j;
  }
}

Status SlidingHyperLogLog::Merge(const SlidingHyperLogLog& other) {
  if (precision() != other.precision() || seed() != other.seed()) {
    return Status::InvalidArgument(
        "sliding HLL merge requires identical precision and seed");
  }
  return ring_.Merge(other.ring_);
}

std::vector<uint8_t> SlidingHyperLogLog::Serialize() const {
  std::vector<uint8_t> out;
  ByteSink sink(&out);
  SerializeTo(sink);
  return out;
}

void SlidingHyperLogLog::SerializeTo(ByteSink& sink) const {
  EnvelopeBuilder env(sink, kTypeId);
  sink.PutU8(static_cast<uint8_t>(precision()));
  sink.PutU64(seed());
  sink.PutU64(ring_.pane_width());
  sink.PutU32(static_cast<uint32_t>(ring_.num_panes()));
  sink.PutU8(ring_.started() ? 1 : 0);
  sink.PutU64(ring_.last_timestamp());
  sink.PutU32(static_cast<uint32_t>(ring_.NumLivePanes()));
  ring_.ForEachPane([&](uint64_t id, const HyperLogLog& pane) {
    sink.PutU64(id);
    const size_t length_at = sink.size();
    sink.PutU32(0);  // Nested envelope length, patched below.
    pane.SerializeTo(sink);
    sink.PatchU32(length_at, static_cast<uint32_t>(sink.size() - length_at - 4));
  });
  env.Finish();
}

Result<SlidingHyperLogLog> SlidingHyperLogLog::Deserialize(
    std::span<const uint8_t> bytes) {
  Result<ByteReader> opened = OpenEnvelope(kTypeId, bytes);
  if (!opened.ok()) return opened.status();
  ByteReader& reader = opened.value();
  uint8_t precision = 0, started = 0;
  uint64_t seed = 0, pane_width = 0, last_timestamp = 0;
  uint32_t num_panes = 0, pane_count = 0;
  if (Status s = reader.GetU8(&precision); !s.ok()) return s;
  if (Status s = reader.GetU64(&seed); !s.ok()) return s;
  if (Status s = reader.GetU64(&pane_width); !s.ok()) return s;
  if (Status s = reader.GetU32(&num_panes); !s.ok()) return s;
  if (Status s = reader.GetU8(&started); !s.ok()) return s;
  if (Status s = reader.GetU64(&last_timestamp); !s.ok()) return s;
  if (Status s = reader.GetU32(&pane_count); !s.ok()) return s;
  if (precision < 4 || precision > 18) {
    return Status::Corruption("sliding HLL: precision out of range");
  }
  if (pane_width == 0 || num_panes == 0 || num_panes > kMaxPanes) {
    return Status::Corruption("sliding HLL: bad window geometry");
  }
  if (started > 1 || pane_count > num_panes ||
      (started == 0) != (pane_count == 0)) {
    return Status::Corruption("sliding HLL: inconsistent ring state");
  }
  SlidingHyperLogLog sketch(precision, pane_width, num_panes, seed);
  for (uint32_t i = 0; i < pane_count; ++i) {
    uint64_t id = 0;
    uint32_t length = 0;
    ByteSpan envelope;
    if (Status s = reader.GetU64(&id); !s.ok()) return s;
    if (Status s = reader.GetU32(&length); !s.ok()) return s;
    if (Status s = reader.GetRawView(length, &envelope); !s.ok()) return s;
    Result<HyperLogLog> pane = HyperLogLog::Deserialize(envelope);
    if (!pane.ok()) return pane.status();
    if (pane.value().precision() != precision ||
        pane.value().seed() != seed) {
      return Status::Corruption("sliding HLL: pane parameter mismatch");
    }
    if (Status s = sketch.ring_.AppendPane(id, std::move(pane).value());
        !s.ok()) {
      return s;
    }
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("sliding HLL: trailing payload bytes");
  }
  if (started != 0) {
    if (last_timestamp / pane_width != sketch.ring_.CurrentPaneId()) {
      return Status::Corruption(
          "sliding HLL: clock inconsistent with newest pane");
    }
    sketch.ring_.Advance(last_timestamp);
  }
  return sketch;
}

}  // namespace gems
