#ifndef GEMS_TIME_PANE_RING_H_
#define GEMS_TIME_PANE_RING_H_

#include <cstdint>
#include <deque>
#include <utility>

#include "common/check.h"
#include "common/status.h"
#include "core/summary.h"

/// \file
/// Pane-based sliding windows over any mergeable summary: the window is
/// divided into fixed panes, each summarized independently; a query merges
/// the live panes. This is mergeability put to work *inside* one stream —
/// expired panes are dropped wholesale, giving sliding-window semantics
/// that register sketches (which cannot "forget" individual items) could
/// not otherwise offer. Window error adds one pane of time quantization.
///
/// Query cost is kept off the hot path by two caches:
///  - `closed_merged_` holds the merge of every *closed* pane (all but the
///    current one), maintained incrementally on rotation: closing a pane is
///    one merge, and only an expiry (at most once per rotation) rebuilds it
///    from the surviving closed panes. Queries between rotations never
///    re-merge the ring.
///  - `WindowSummary()` memoizes the full-window merge (closed cache + the
///    current pane) until the next mutation, so repeated queries between
///    updates are free. The memo lives behind a non-const method; concurrent
///    readers on the epoch-published path use the mutation-free
///    `MergedWindow()` instead.
///
/// Out-of-order input does not abort: a timestamp earlier than the newest
/// one seen is clamped into the current pane (one pane of extra time error
/// for the late item — a server must not crash on unsorted input).

namespace gems {

/// Sliding window of `num_panes` panes of `pane_width` time units over a
/// mergeable summary S.
template <typename S>
  requires MergeableSummary<S>
class PaneRing {
 public:
  /// Window covers num_panes * pane_width time units; all panes start as
  /// copies of `prototype` (merge-compatible by construction).
  PaneRing(const S& prototype, uint64_t pane_width, size_t num_panes)
      : prototype_(prototype),
        closed_merged_(prototype),
        window_memo_(prototype),
        pane_width_(pane_width),
        num_panes_(num_panes) {
    GEMS_CHECK(pane_width >= 1);
    GEMS_CHECK(num_panes >= 1);
  }

  /// Feeds one timestamped update; forwards `args` to S::Update. A
  /// timestamp earlier than the newest one seen lands in the current pane.
  template <typename... Args>
  void Update(uint64_t timestamp, Args&&... args) {
    Advance(timestamp);
    panes_.back().summary.Update(std::forward<Args>(args)...);
    memo_valid_ = false;
  }

  /// Advances time: opens a new current pane when `timestamp` crosses a
  /// pane boundary and expires panes older than the window. Late
  /// timestamps clamp to the newest one seen (no-op beyond the clamp).
  void Advance(uint64_t timestamp) {
    if (started_ && timestamp < last_timestamp_) timestamp = last_timestamp_;
    started_ = true;
    last_timestamp_ = timestamp;
    const uint64_t pane_id = timestamp / pane_width_;
    bool rotated = false;
    if (panes_.empty() || pane_id > panes_.back().id) {
      panes_.push_back(Pane{pane_id, prototype_});
      rotated = true;
    }
    // Live panes are ids in (pane_id - num_panes, pane_id]: the current
    // (partial) pane plus the num_panes - 1 full panes before it.
    bool expired = false;
    while (!panes_.empty() && panes_.front().id + num_panes_ <= pane_id) {
      panes_.pop_front();
      expired = true;
    }
    if (expired) {
      RebuildClosed();
    } else if (rotated && panes_.size() >= 2) {
      // The pane that was current is now closed: fold it into the cache —
      // one merge per rotation instead of a full re-merge per query.
      MustMerge(closed_merged_, panes_[panes_.size() - 2].summary);
    }
    if (rotated || expired) memo_valid_ = false;
  }

  /// Merged summary of every pane overlapping the window ending at the
  /// most recent timestamp; the prototype (empty) if no data. Memoized:
  /// re-merged only after a mutation, so repeated queries between
  /// rotations are free. Single-writer only (it refreshes a cache) — the
  /// concurrent read path uses MergedWindow().
  const S& WindowSummary() {
    if (!memo_valid_) {
      window_memo_ = closed_merged_;
      if (!panes_.empty()) MustMerge(window_memo_, panes_.back().summary);
      memo_valid_ = true;
    }
    return window_memo_;
  }

  /// Mutation-free full-window merge: a copy of the closed-pane cache with
  /// the current pane folded in. Safe to call concurrently with other
  /// const methods (the epoch-published concurrent read path).
  S MergedWindow() const {
    S merged = closed_merged_;
    if (!panes_.empty()) MustMerge(merged, panes_.back().summary);
    return merged;
  }

  /// The merge of every closed (non-current) pane; the prototype when the
  /// ring holds at most the current pane. Const-safe for readers.
  const S& ClosedMerged() const { return closed_merged_; }

  /// The current (newest, partial) pane's summary, or nullptr before the
  /// first update. Const-safe for readers.
  const S* CurrentSummary() const {
    return panes_.empty() ? nullptr : &panes_.back().summary;
  }

  /// Advances to `timestamp` and exposes the pane it lands in for direct
  /// (batched) mutation — the segmented UpdateBatch entry point. The
  /// caller must only *add data* to the returned summary.
  S& SummaryAt(uint64_t timestamp) {
    Advance(timestamp);
    memo_valid_ = false;
    return panes_.back().summary;
  }

  /// Pane id of the current pane (meaningful once started()).
  uint64_t CurrentPaneId() const {
    return panes_.empty() ? 0 : panes_.back().id;
  }

  /// Merges another ring pane-by-pane (same pane_width and num_panes
  /// required), then re-expires against the later of the two clocks.
  Status Merge(const PaneRing& other) {
    if (pane_width_ != other.pane_width_ || num_panes_ != other.num_panes_) {
      return Status::InvalidArgument(
          "pane ring merge requires identical pane_width and num_panes");
    }
    for (const Pane& pane : other.panes_) {
      bool placed = false;
      for (Pane& mine : panes_) {
        if (mine.id == pane.id) {
          if (Status s = mine.summary.Merge(pane.summary); !s.ok()) return s;
          placed = true;
          break;
        }
      }
      if (!placed) {
        // Insert keeping ids ascending.
        auto it = panes_.begin();
        while (it != panes_.end() && it->id < pane.id) ++it;
        panes_.insert(it, pane);
      }
    }
    if (other.started_ &&
        (!started_ || other.last_timestamp_ > last_timestamp_)) {
      last_timestamp_ = other.last_timestamp_;
    }
    started_ = started_ || other.started_;
    if (started_) {
      const uint64_t pane_id = last_timestamp_ / pane_width_;
      while (!panes_.empty() && panes_.front().id + num_panes_ <= pane_id) {
        panes_.pop_front();
      }
    }
    RebuildClosed();
    memo_valid_ = false;
    return Status::Ok();
  }

  /// Restore path: appends one pane with a strictly increasing id,
  /// maintaining the closed-pane cache incrementally. The deserializer
  /// finishes with Advance(last_timestamp) to restore the clock.
  Status AppendPane(uint64_t id, S summary) {
    if (!panes_.empty() && id <= panes_.back().id) {
      return Status::Corruption("pane ring: pane ids must strictly increase");
    }
    if (!panes_.empty()) {
      if (Status s = closed_merged_.Merge(panes_.back().summary); !s.ok()) {
        return s;
      }
    }
    panes_.push_back(Pane{id, std::move(summary)});
    started_ = true;
    memo_valid_ = false;
    return Status::Ok();
  }

  /// Iterates live panes oldest-first as (id, const S&).
  template <typename Fn>
  void ForEachPane(Fn&& fn) const {
    for (const Pane& pane : panes_) fn(pane.id, pane.summary);
  }

  size_t NumLivePanes() const { return panes_.size(); }
  uint64_t WindowSpan() const { return pane_width_ * num_panes_; }
  uint64_t pane_width() const { return pane_width_; }
  size_t num_panes() const { return num_panes_; }
  uint64_t last_timestamp() const { return last_timestamp_; }
  bool started() const { return started_; }
  const S& prototype() const { return prototype_; }

 private:
  struct Pane {
    uint64_t id;
    S summary;
  };

  static void MustMerge(S& into, const S& from) {
    // Panes are copies of one prototype, so parameter mismatches here are
    // programmer error, not runtime conditions.
    Status s = into.Merge(from);
    GEMS_CHECK(s.ok());
  }

  /// Rebuilds the closed-pane cache from every pane but the current one —
  /// the once-per-expiry slow path.
  void RebuildClosed() {
    closed_merged_ = prototype_;
    for (size_t i = 0; i + 1 < panes_.size(); ++i) {
      MustMerge(closed_merged_, panes_[i].summary);
    }
  }

  S prototype_;
  S closed_merged_;
  S window_memo_;
  bool memo_valid_ = false;
  bool started_ = false;
  uint64_t last_timestamp_ = 0;
  uint64_t pane_width_;
  size_t num_panes_;
  std::deque<Pane> panes_;
};

/// The engine-era name; PaneRing is the same template promoted into the
/// time family.
template <typename S>
using SlidingWindowSummary = PaneRing<S>;

}  // namespace gems

#endif  // GEMS_TIME_PANE_RING_H_
