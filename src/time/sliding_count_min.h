#ifndef GEMS_TIME_SLIDING_COUNT_MIN_H_
#define GEMS_TIME_SLIDING_COUNT_MIN_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/estimate.h"
#include "core/io.h"
#include "frequency/count_min.h"
#include "hash/hashed_batch.h"
#include "time/pane_ring.h"

/// \file
/// Sliding-window frequency estimation: a pane ring of Count-Min sketches.
/// Because Count-Min merge is a counter-wise sum, a windowed point query
/// never materializes the merged window — it reads the closed-pane cache's
/// counter and the current pane's counter for each row and sums them, so
/// QUERY stays O(depth) no matter how many panes are live.

namespace gems {

/// Count-Min over the trailing num_panes * pane_width time units. Flat
/// layout, non-conservative (pane merges must be order-independent).
class SlidingCountMin {
 public:
  /// Wire-format type tag, for registry dispatch.
  static constexpr SketchTypeId kTypeId = SketchTypeId::kSlidingCountMin;

  SlidingCountMin(uint32_t width, uint32_t depth, uint64_t pane_width,
                  size_t num_panes, uint64_t seed = 0);

  SlidingCountMin(const SlidingCountMin&) = default;
  SlidingCountMin& operator=(const SlidingCountMin&) = default;
  SlidingCountMin(SlidingCountMin&&) = default;
  SlidingCountMin& operator=(SlidingCountMin&&) = default;

  /// Adds `weight` (>= 0) to the item's count at the newest timestamp seen.
  void Update(uint64_t item, int64_t weight = 1) {
    ring_.Update(ring_.last_timestamp(), item, weight);
  }

  /// Adds `weight` at `timestamp`; late timestamps clamp into the current
  /// pane instead of aborting.
  void UpdateAt(uint64_t timestamp, uint64_t item, int64_t weight = 1) {
    ring_.Update(timestamp, item, weight);
  }

  /// Batched unit-weight ingest into the current pane; byte-identical to
  /// calling Update() per item.
  void UpdateBatch(std::span<const uint64_t> items);

  /// Batched timestamped unit-weight ingest; pane runs are segmented and
  /// fed through the pane sketch's batched (SIMD-dispatched) path. State is
  /// byte-identical to calling UpdateAt() per item, in order.
  void UpdateBatchTimed(std::span<const uint64_t> timestamps,
                        std::span<const uint64_t> items);

  /// Ingest from a hashed batch (Count-Min re-hashes per row, so only the
  /// item and timestamp columns are consumed; the batch's seed need not
  /// match).
  void ApplyHashed(const HashedBatch& batch);

  /// Advances the window clock without adding data.
  void Advance(uint64_t now) { ring_.Advance(now); }

  /// Windowed point query: overestimate of the item's weight inside the
  /// window. O(depth); mutation-free and safe on the concurrent read path.
  uint64_t Estimate(uint64_t item) const;

  /// Windowed point query with the one-sided Markov interval against the
  /// window's total weight.
  gems::Estimate EstimateWithBounds(uint64_t item,
                                    double confidence = 0.95) const;

  /// Total weight currently inside the window.
  int64_t TotalWeight() const;

  /// Pane-wise merge; identical shape, seed, and window geometry required.
  Status Merge(const SlidingCountMin& other);

  uint32_t width() const { return ring_.prototype().width(); }
  uint32_t depth() const { return ring_.prototype().depth(); }
  uint64_t seed() const { return ring_.prototype().seed(); }
  uint64_t pane_width() const { return ring_.pane_width(); }
  size_t num_panes() const { return ring_.num_panes(); }
  uint64_t WindowSpan() const { return ring_.WindowSpan(); }
  size_t NumLivePanes() const { return ring_.NumLivePanes(); }
  uint64_t last_timestamp() const { return ring_.last_timestamp(); }

  std::vector<uint8_t> Serialize() const;
  /// Appends the wire envelope into a caller-owned buffer; byte-identical
  /// to Serialize().
  void SerializeTo(ByteSink& sink) const;
  static Result<SlidingCountMin> Deserialize(std::span<const uint8_t> bytes);

 private:
  PaneRing<CountMinSketch> ring_;
};

}  // namespace gems

#endif  // GEMS_TIME_SLIDING_COUNT_MIN_H_
