#ifndef GEMS_TIME_SLIDING_HLL_H_
#define GEMS_TIME_SLIDING_HLL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "cardinality/hyperloglog.h"
#include "core/estimate.h"
#include "core/io.h"
#include "hash/hashed_batch.h"
#include "time/pane_ring.h"

/// \file
/// Sliding-window distinct counting: a pane ring of HyperLogLogs. Each
/// pane_width-sized pane holds its own HLL; the window estimate merges the
/// live panes (register-wise max), and expired panes are dropped wholesale —
/// the ring-of-subsketches recipe production telemetry systems use to make
/// "distinct users in the last hour" a sketch query. Error is the HLL's
/// 1.04/sqrt(m) plus one pane of time quantization.

namespace gems {

/// HyperLogLog over the trailing num_panes * pane_width time units.
class SlidingHyperLogLog {
 public:
  /// Wire-format type tag, for registry dispatch.
  static constexpr SketchTypeId kTypeId = SketchTypeId::kSlidingHyperLogLog;

  /// `precision` in [4, 18]; window = pane_width * num_panes time units.
  SlidingHyperLogLog(int precision, uint64_t pane_width, size_t num_panes,
                     uint64_t seed = 0);

  SlidingHyperLogLog(const SlidingHyperLogLog&) = default;
  SlidingHyperLogLog& operator=(const SlidingHyperLogLog&) = default;
  SlidingHyperLogLog(SlidingHyperLogLog&&) = default;
  SlidingHyperLogLog& operator=(SlidingHyperLogLog&&) = default;

  /// Adds an item at the newest timestamp seen (the untimed type-erased
  /// update shape: items land in the current pane).
  void Update(uint64_t item) { ring_.Update(ring_.last_timestamp(), item); }

  /// Adds an item observed at `timestamp`. Late timestamps clamp into the
  /// current pane instead of aborting.
  void UpdateAt(uint64_t timestamp, uint64_t item) {
    ring_.Update(timestamp, item);
  }

  /// Batched ingest into the current pane; byte-identical to calling
  /// Update() per item.
  void UpdateBatch(std::span<const uint64_t> items);

  /// Batched timestamped ingest: `timestamps` parallels `items`. Runs of
  /// items landing in one pane are segmented and fed through the pane
  /// HLL's batched (SIMD-dispatched) path; state is byte-identical to
  /// calling UpdateAt() per item, in order.
  void UpdateBatchTimed(std::span<const uint64_t> timestamps,
                        std::span<const uint64_t> items);

  /// Hash-reuse ingest from a batch hashed under this sketch's seed; uses
  /// the batch's timestamp column when it carries one.
  void ApplyHashed(const HashedBatch& batch);

  /// Advances the window clock without adding data (rotates/expires
  /// panes). Late `now` clamps.
  void Advance(uint64_t now) { ring_.Advance(now); }

  /// Windowed distinct estimate. Mutation-free (safe on the concurrent
  /// epoch-published read path): merges the closed-pane cache with the
  /// current pane into a stack copy.
  double Estimate() const { return ring_.MergedWindow().Estimate(); }

  /// Windowed estimate with the HLL's normal-approximation interval.
  gems::Estimate EstimateWithBounds(double confidence = 0.95) const {
    return ring_.MergedWindow().EstimateWithBounds(confidence);
  }

  /// Memoized merged window for single-writer callers (the engine): only
  /// re-merged after a mutation.
  const HyperLogLog& WindowSummary() { return ring_.WindowSummary(); }

  /// Pane-wise merge; both sketches need identical precision, seed, and
  /// window geometry.
  Status Merge(const SlidingHyperLogLog& other);

  int precision() const { return ring_.prototype().precision(); }
  uint64_t seed() const { return ring_.prototype().seed(); }
  uint64_t pane_width() const { return ring_.pane_width(); }
  size_t num_panes() const { return ring_.num_panes(); }
  uint64_t WindowSpan() const { return ring_.WindowSpan(); }
  size_t NumLivePanes() const { return ring_.NumLivePanes(); }
  uint64_t last_timestamp() const { return ring_.last_timestamp(); }

  std::vector<uint8_t> Serialize() const;
  /// Appends the wire envelope into a caller-owned buffer; byte-identical
  /// to Serialize().
  void SerializeTo(ByteSink& sink) const;
  static Result<SlidingHyperLogLog> Deserialize(std::span<const uint8_t> bytes);

 private:
  PaneRing<HyperLogLog> ring_;
};

}  // namespace gems

#endif  // GEMS_TIME_SLIDING_HLL_H_
