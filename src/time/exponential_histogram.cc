#include "time/exponential_histogram.h"

#include <cmath>

#include "core/wire.h"

namespace gems {

namespace {

constexpr uint32_t kMaxBuckets = 1u << 24;

}  // namespace

ExponentialHistogram::ExponentialHistogram(uint64_t window, double epsilon)
    : window_(window), epsilon_(epsilon) {
  GEMS_CHECK(window >= 1);
  GEMS_CHECK(epsilon > 0.0 && epsilon <= 1.0);
  max_per_size_ = static_cast<size_t>(std::ceil(1.0 / epsilon));
}

void ExponentialHistogram::Add(uint64_t timestamp) {
  // A server must not crash on unsorted input: a late event is counted at
  // the current clock (at most one window of extra recency error for it).
  if (timestamp < last_timestamp_) timestamp = last_timestamp_;
  last_timestamp_ = timestamp;
  ExpireBefore(timestamp);
  buckets_.push_front(Bucket{timestamp, 1});
  Canonicalize();
}

void ExponentialHistogram::UpdateBatch(std::span<const uint64_t> timestamps) {
  for (const uint64_t timestamp : timestamps) Add(timestamp);
}

void ExponentialHistogram::Advance(uint64_t now) {
  if (now < last_timestamp_) return;  // Late timestamps clamp.
  last_timestamp_ = now;
  ExpireBefore(now);
}

void ExponentialHistogram::ExpireBefore(uint64_t now) {
  // A bucket is expired once its newest event is outside (now - W, now].
  while (!buckets_.empty() &&
         buckets_.back().timestamp + window_ <= now) {
    buckets_.pop_back();
  }
}

void ExponentialHistogram::Canonicalize() {
  // Walk from newest to oldest; whenever more than k buckets of one size
  // exist, merge the two OLDEST of that size into one of double size.
  // One insertion adds one size-1 bucket, so a single cascading pass
  // restores the invariant.
  size_t index = 0;
  while (index < buckets_.size()) {
    const uint64_t size = buckets_[index].size;
    // Count the run of buckets with this size starting at `index`
    // (buckets are kept in non-decreasing size order from front to back).
    size_t run_end = index;
    while (run_end < buckets_.size() && buckets_[run_end].size == size) {
      ++run_end;
    }
    const size_t run = run_end - index;
    if (run <= max_per_size_) {
      index = run_end;
      continue;
    }
    // Merge the two oldest of this size (positions run_end-1, run_end-2).
    // The merged bucket keeps the NEWER timestamp of the pair, so expiry
    // remains conservative for the estimator below.
    Bucket merged;
    merged.size = size * 2;
    merged.timestamp = buckets_[run_end - 2].timestamp;
    buckets_.erase(buckets_.begin() + run_end - 2,
                   buckets_.begin() + run_end);
    buckets_.insert(buckets_.begin() + (run_end - 2), merged);
    // The doubled bucket may overflow the next size class; continue from
    // the start of this run.
  }
}

uint64_t ExponentialHistogram::EstimateCount(uint64_t now) const {
  if (now < last_timestamp_) now = last_timestamp_;
  uint64_t total = 0;
  uint64_t oldest_size = 0;
  for (const Bucket& bucket : buckets_) {
    if (bucket.timestamp + window_ <= now) continue;  // Expired.
    total += bucket.size;
    oldest_size = bucket.size;  // Last surviving = oldest.
  }
  // The oldest bucket straddles the window boundary: only about half its
  // events are expected inside. Subtracting half its size is the standard
  // estimator, with error <= oldest_size/2 <= eps * true count.
  return total - oldest_size / 2;
}

std::vector<uint8_t> ExponentialHistogram::Serialize() const {
  std::vector<uint8_t> out;
  ByteSink sink(&out);
  SerializeTo(sink);
  return out;
}

void ExponentialHistogram::SerializeTo(ByteSink& sink) const {
  EnvelopeBuilder env(sink, kTypeId);
  sink.PutU64(window_);
  sink.PutDouble(epsilon_);
  sink.PutU64(last_timestamp_);
  sink.PutU32(static_cast<uint32_t>(buckets_.size()));
  // Newest-first, exactly the deque order, so restore is a push_back walk.
  for (const Bucket& bucket : buckets_) {
    sink.PutU64(bucket.timestamp);
    sink.PutVarint(bucket.size);
  }
  env.Finish();
}

Result<ExponentialHistogram> ExponentialHistogram::Deserialize(
    std::span<const uint8_t> bytes) {
  Result<ByteReader> opened = OpenEnvelope(kTypeId, bytes);
  if (!opened.ok()) return opened.status();
  ByteReader& reader = opened.value();
  uint64_t window = 0, last_timestamp = 0;
  double epsilon = 0.0;
  uint32_t count = 0;
  if (Status s = reader.GetU64(&window); !s.ok()) return s;
  if (Status s = reader.GetDouble(&epsilon); !s.ok()) return s;
  if (Status s = reader.GetU64(&last_timestamp); !s.ok()) return s;
  if (Status s = reader.GetU32(&count); !s.ok()) return s;
  if (window == 0) {
    return Status::Corruption("exponential histogram: bad window");
  }
  if (!std::isfinite(epsilon) || epsilon <= 0.0 || epsilon > 1.0) {
    return Status::Corruption("exponential histogram: bad epsilon");
  }
  if (count > kMaxBuckets) {
    return Status::Corruption("exponential histogram: too many buckets");
  }
  ExponentialHistogram histogram(window, epsilon);
  histogram.last_timestamp_ = last_timestamp;
  uint64_t prev_size = 0;
  uint64_t prev_timestamp = UINT64_MAX;
  for (uint32_t i = 0; i < count; ++i) {
    Bucket bucket;
    if (Status s = reader.GetU64(&bucket.timestamp); !s.ok()) return s;
    if (Status s = reader.GetVarint(&bucket.size); !s.ok()) return s;
    // Invariants of a live histogram: sizes are powers of two and
    // non-decreasing newest to oldest, timestamps non-increasing, nothing
    // newer than the clock, nothing already expired.
    if (bucket.size == 0 || (bucket.size & (bucket.size - 1)) != 0 ||
        bucket.size < prev_size) {
      return Status::Corruption("exponential histogram: bad bucket size");
    }
    if (bucket.timestamp > prev_timestamp ||
        bucket.timestamp > last_timestamp ||
        bucket.timestamp + window <= last_timestamp) {
      return Status::Corruption("exponential histogram: bad bucket timestamp");
    }
    prev_size = bucket.size;
    prev_timestamp = bucket.timestamp;
    histogram.buckets_.push_back(bucket);
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("exponential histogram: trailing payload bytes");
  }
  return histogram;
}

}  // namespace gems
