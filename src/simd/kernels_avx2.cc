#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "common/bits.h"
#include "common/random.h"
#include "hash/hashed_batch.h"
#include "hash/murmur3.h"
#include "simd/internal.h"
#include "simd/kernels.h"

/// \file
/// AVX2 kernel variants. This TU is the only one compiled with -mavx2 (see
/// src/simd/CMakeLists.txt); dispatch.cc checks __builtin_cpu_supports
/// before handing out this table, so nothing here runs on a CPU without
/// AVX2. Every function must be bit-identical to kernels_scalar.cc.
///
/// AVX2 has no 64x64->64 multiply and no 64-bit unsigned compare, so the
/// mixing kernels emulate both: the multiply from three 32x32->64 products
/// (pmuludq) plus shifts, the unsigned compare by biasing both sides with
/// 2^63 before the signed compare. Scatter-style loops (register max,
/// counter adds, bit sets) stay scalar — duplicate indices inside a vector
/// carry a sequential dependency — so the strategy throughout is: vectorize
/// the arithmetic (hash, modulo, probe math), extract, then do the few
/// scalar stores.

namespace gems::simd {
namespace {

using internal::BlockedBloomProbe;
using internal::BlockedBloomTest;
using internal::kBlockedBloomWordsPerBlock;

inline __m256i Splat64(uint64_t x) {
  return _mm256_set1_epi64x(static_cast<long long>(x));
}

/// Lane-wise a * b keeping the low 64 bits (pmuludq cross products).
inline __m256i Mul64(__m256i a, __m256i b) {
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(a_hi, b), _mm256_mul_epu32(a, b_hi));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

/// Lane-wise rotate left.
inline __m256i RotL64(__m256i x, int r) {
  return _mm256_or_si256(_mm256_slli_epi64(x, r),
                         _mm256_srli_epi64(x, 64 - r));
}

/// Lane-wise unsigned a > b (bias both sides into signed range).
inline __m256i CmpGtU64(__m256i a, __m256i b) {
  const __m256i bias = Splat64(0x8000000000000000ULL);
  return _mm256_cmpgt_epi64(_mm256_xor_si256(a, bias),
                            _mm256_xor_si256(b, bias));
}

/// Lane-wise unsigned min.
inline __m256i MinU64(__m256i a, __m256i b) {
  // Where a > b take b, else a.
  return _mm256_blendv_epi8(a, b, CmpGtU64(a, b));
}

/// Four lanes of Mix64 (the SplitMix64 finalizer), bit-identical to the
/// scalar gems::Mix64.
inline __m256i Mix64V(__m256i x) {
  x = Mul64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 30)),
            Splat64(0xBF58476D1CE4E5B9ULL));
  x = Mul64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 27)),
            Splat64(0x94D049BB133111EBULL));
  return _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
}

/// Four lanes of Murmur3's FMix64 finalizer.
inline __m256i FMix64V(__m256i k) {
  k = _mm256_xor_si256(k, _mm256_srli_epi64(k, 33));
  k = Mul64(k, Splat64(0xFF51AFD7ED558CCDULL));
  k = _mm256_xor_si256(k, _mm256_srli_epi64(k, 33));
  k = Mul64(k, Splat64(0xC4CEB9FE1A85EC53ULL));
  return _mm256_xor_si256(k, _mm256_srli_epi64(k, 33));
}

/// Four lanes of Murmur3_128_U64: lo/hi halves for keys[0..3].
inline void Murmur3x4(__m256i keys, uint64_t seed, __m256i* lo, __m256i* hi) {
  const __m256i seedv = Splat64(seed);
  __m256i k1 = Mul64(keys, Splat64(murmur3_detail::kC1));
  k1 = RotL64(k1, 31);
  k1 = Mul64(k1, Splat64(murmur3_detail::kC2));
  __m256i h1 = _mm256_xor_si256(seedv, k1);
  __m256i h2 = seedv;
  // Finalize(h1, seed, len=8).
  const __m256i len = Splat64(8);
  h1 = _mm256_xor_si256(h1, len);
  h2 = _mm256_xor_si256(h2, len);
  h1 = _mm256_add_epi64(h1, h2);
  h2 = _mm256_add_epi64(h2, h1);
  h1 = FMix64V(h1);
  h2 = FMix64V(h2);
  h1 = _mm256_add_epi64(h1, h2);
  h2 = _mm256_add_epi64(h2, h1);
  *lo = h1;
  *hi = h2;
}

/// Vector Granlund-Montgomery modulo with the exact same math as
/// InvariantMod: q = mulhi64(magic, x), r = x - q*d, one correction.
struct VecMod {
  explicit VecMod(uint64_t divisor)
      : scalar(divisor),
        d(Splat64(divisor)),
        pow2((divisor & (divisor - 1)) == 0),
        mask(Splat64(divisor - 1)) {
    const uint64_t magic = pow2 ? 0 : ~uint64_t{0} / divisor;
    magic_lo = Splat64(magic & 0xFFFFFFFFULL);
    magic_hi = Splat64(magic >> 32);
  }

  __m256i operator()(__m256i x) const {
    if (pow2) return _mm256_and_si256(x, mask);
    // mulhi64(x, magic) out of four pmuludq partial products.
    const __m256i x_hi = _mm256_srli_epi64(x, 32);
    const __m256i lolo = _mm256_mul_epu32(x, magic_lo);
    const __m256i hilo = _mm256_mul_epu32(x_hi, magic_lo);
    const __m256i lohi = _mm256_mul_epu32(x, magic_hi);
    const __m256i hihi = _mm256_mul_epu32(x_hi, magic_hi);
    const __m256i low_mask = Splat64(0xFFFFFFFFULL);
    const __m256i t = _mm256_srli_epi64(lolo, 32);
    const __m256i u = _mm256_add_epi64(hilo, t);
    const __m256i v =
        _mm256_add_epi64(lohi, _mm256_and_si256(u, low_mask));
    const __m256i q = _mm256_add_epi64(
        hihi, _mm256_add_epi64(_mm256_srli_epi64(u, 32),
                               _mm256_srli_epi64(v, 32)));
    __m256i r = _mm256_sub_epi64(x, Mul64(q, d));
    // If r >= d subtract d once: correction is d wherever NOT (d > r).
    const __m256i lt = CmpGtU64(d, r);
    return _mm256_sub_epi64(r, _mm256_andnot_si256(lt, d));
  }

  InvariantMod scalar;  // for tails, bit-identical by shared contract
  __m256i d;
  bool pow2;
  __m256i mask;
  __m256i magic_lo;
  __m256i magic_hi;
};

// ------------------------------------------------------------------- hash

void Mix64Batch(const uint64_t* keys, size_t n, uint64_t mixed_seed,
                uint64_t* out) {
  const __m256i seedv = Splat64(mixed_seed);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i a = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(keys + i));
    const __m256i b = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(keys + i + 4));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        Mix64V(_mm256_add_epi64(a, seedv)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 4),
                        Mix64V(_mm256_add_epi64(b, seedv)));
  }
  for (; i < n; ++i) out[i] = Mix64(keys[i] + mixed_seed);
}

uint64_t Mix64Min(const uint64_t* keys, size_t n, uint64_t mixed_seed) {
  uint64_t best = ~uint64_t{0};
  const __m256i seedv = Splat64(mixed_seed);
  size_t i = 0;
  if (n >= 4) {
    __m256i bestv = Splat64(~uint64_t{0});
    for (; i + 4 <= n; i += 4) {
      const __m256i k = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(keys + i));
      bestv = MinU64(bestv, Mix64V(_mm256_add_epi64(k, seedv)));
    }
    alignas(32) uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), bestv);
    for (uint64_t lane : lanes) best = std::min(best, lane);
  }
  for (; i < n; ++i) best = std::min(best, Mix64(keys[i] + mixed_seed));
  return best;
}

void Murmur3BatchU64(const uint64_t* keys, size_t n, uint64_t seed,
                     uint64_t* lo, uint64_t* hi) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i k = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(keys + i));
    __m256i l, h;
    Murmur3x4(k, seed, &l, &h);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(lo + i), l);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(hi + i), h);
  }
  for (; i < n; ++i) {
    const Hash128 h = Murmur3_128_U64(keys[i], seed);
    lo[i] = h.low;
    hi[i] = h.high;
  }
}

// ------------------------------------------------------------ cardinality

void HllIngest(uint8_t* regs, int precision, const uint64_t* keys, size_t n,
               uint64_t mixed_seed) {
  const int shift = 64 - precision;
  const __m256i seedv = Splat64(mixed_seed);
  const __m128i shiftc = _mm_cvtsi32_si128(shift);
  const __m256i low_mask = Splat64((uint64_t{1} << shift) - 1);
  const __m256i lo32_mask = Splat64(0xFFFFFFFFull);
  const __m256i zero = _mm256_setzero_si256();
  // 0x433... is 2^52's bit pattern: OR-ing a value < 2^32 into it and
  // subtracting 2^52 as a double yields that value *exactly* as a double,
  // whose exponent field is 1023 + FloorLog2(value) (0 when value == 0).
  // This is an exact vector FloorLog2 — no rounding is possible because
  // every input fits in the 52-bit mantissa — applied to whichever 32-bit
  // half of the masked hash holds the leading one bit.
  const __m256i magic = Splat64(0x4330000000000000ull);
  const __m256i bias = Splat64(1023);
  const __m256i thirty_two = Splat64(32);
  const __m256i shift_v = Splat64(static_cast<uint64_t>(shift));
  const __m256i rho_cap = Splat64(static_cast<uint64_t>(shift) + 1);

  // One packed word per key: (index << 8) | rho. Everything up to the
  // register max is vector math; only the max itself runs scalar, because
  // duplicate indices within a block make a gathered max lose updates.
  const auto packed_rho_idx = [&](__m256i h) {
    const __m256i idx = _mm256_srl_epi64(h, shiftc);
    const __m256i v = _mm256_and_si256(h, low_mask);
    const __m256i hi = _mm256_srli_epi64(v, 32);
    const __m256i hi_zero = _mm256_cmpeq_epi64(hi, zero);
    const __m256i x =
        _mm256_blendv_epi8(hi, _mm256_and_si256(v, lo32_mask), hi_zero);
    const __m256d d = _mm256_sub_pd(
        _mm256_castsi256_pd(_mm256_or_si256(x, magic)),
        _mm256_castsi256_pd(magic));
    __m256i floor_log2 =
        _mm256_sub_epi64(_mm256_srli_epi64(_mm256_castpd_si256(d), 52), bias);
    floor_log2 = _mm256_add_epi64(floor_log2,
                                  _mm256_andnot_si256(hi_zero, thirty_two));
    // rho = shift - FloorLog2(v); v == 0 left floor_log2 at -1023, so the
    // unsigned min supplies the shift+1 "all low bits clear" answer. Lanes
    // stay in [1, shift+1023], high halves zero, so a 32-bit min is safe.
    const __m256i rho = _mm256_min_epu32(_mm256_sub_epi64(shift_v, floor_log2),
                                         rho_cap);
    return _mm256_or_si256(_mm256_slli_epi64(idx, 8), rho);
  };

  alignas(32) uint64_t packed[8];
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i a = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(keys + i));
    const __m256i b = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(keys + i + 4));
    _mm256_store_si256(reinterpret_cast<__m256i*>(packed),
                       packed_rho_idx(Mix64V(_mm256_add_epi64(a, seedv))));
    _mm256_store_si256(reinterpret_cast<__m256i*>(packed + 4),
                       packed_rho_idx(Mix64V(_mm256_add_epi64(b, seedv))));
    for (int j = 0; j < 8; ++j) {
      const uint64_t w = packed[j];
      const uint8_t rho = static_cast<uint8_t>(w);
      uint8_t* reg = regs + (w >> 8);
      // Conditional store: registers saturate fast, so the branch predicts
      // not-taken and repeated same-index updates skip the store entirely.
      if (rho > *reg) *reg = rho;
    }
  }
  for (; i < n; ++i) {
    const uint64_t hash = Mix64(keys[i] + mixed_seed);
    const uint32_t index = static_cast<uint32_t>(hash >> shift);
    const uint8_t rho = static_cast<uint8_t>(RankOfLeftmostOne(hash, shift));
    regs[index] = std::max(regs[index], rho);
  }
}

void U8Max(uint8_t* dst, const uint8_t* src, size_t n) {
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_max_epu8(a, b));
  }
  for (; i < n; ++i) dst[i] = std::max(dst[i], src[i]);
}

void HllHarmonicSum(const uint8_t* regs, size_t n, double* sum,
                    uint32_t* zeros) {
  // One vector accumulator IS the four stripes: lane j sums elements with
  // index ≡ j (mod 4) in increasing order, exactly the scalar reference's
  // s[i & 3] schedule, so the additions associate identically.
  __m256d acc = _mm256_setzero_pd();
  __m256i zero_count = _mm256_setzero_si256();
  const __m256i izero = _mm256_setzero_si256();
  const __m256i bias = Splat64(1023);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    uint32_t packed;
    __builtin_memcpy(&packed, regs + i, 4);
    const __m256i r64 = _mm256_cvtepu8_epi64(
        _mm_cvtsi32_si128(static_cast<int>(packed)));
    // 2^-reg as a raw bit pattern: (1023 - reg) << 52.
    const __m256i bits =
        _mm256_slli_epi64(_mm256_sub_epi64(bias, r64), 52);
    acc = _mm256_add_pd(acc, _mm256_castsi256_pd(bits));
    zero_count =
        _mm256_sub_epi64(zero_count, _mm256_cmpeq_epi64(r64, izero));
  }
  alignas(32) double s[4];
  _mm256_store_pd(s, acc);
  alignas(32) uint64_t zc[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(zc), zero_count);
  uint32_t z = static_cast<uint32_t>(zc[0] + zc[1] + zc[2] + zc[3]);
  for (; i < n; ++i) {
    const uint8_t reg = regs[i];
    s[i & 3] += internal::Pow2Neg(reg);
    z += (reg == 0) ? 1 : 0;
  }
  *sum = (s[0] + s[1]) + (s[2] + s[3]);
  *zeros = z;
}

// -------------------------------------------------------------- frequency

void CmRowAdd(uint64_t* row, uint64_t width, const uint64_t* hashes,
              size_t n) {
  const VecMod mod(width);
  alignas(32) uint64_t idx[4];
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i h = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(hashes + i));
    _mm256_store_si256(reinterpret_cast<__m256i*>(idx), mod(h));
    row[idx[0]] += 1;
    row[idx[1]] += 1;
    row[idx[2]] += 1;
    row[idx[3]] += 1;
  }
  for (; i < n; ++i) row[mod.scalar(hashes[i])] += 1;
}

void CmRowAddWeighted(uint64_t* row, uint64_t width, const uint64_t* hashes,
                      const int64_t* weights, size_t n) {
  const VecMod mod(width);
  alignas(32) uint64_t idx[4];
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i h = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(hashes + i));
    _mm256_store_si256(reinterpret_cast<__m256i*>(idx), mod(h));
    row[idx[0]] += static_cast<uint64_t>(weights[i]);
    row[idx[1]] += static_cast<uint64_t>(weights[i + 1]);
    row[idx[2]] += static_cast<uint64_t>(weights[i + 2]);
    row[idx[3]] += static_cast<uint64_t>(weights[i + 3]);
  }
  for (; i < n; ++i) {
    row[mod.scalar(hashes[i])] += static_cast<uint64_t>(weights[i]);
  }
}

void CmRowMin(const uint64_t* row, uint64_t width, const uint64_t* hashes,
              size_t n, uint64_t* out) {
  const VecMod mod(width);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i h = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(hashes + i));
    const __m256i counters = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(row), mod(h), 8);
    const __m256i prev = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(out + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        MinU64(prev, counters));
  }
  for (; i < n; ++i) {
    out[i] = std::min(out[i], row[mod.scalar(hashes[i])]);
  }
}

using internal::CmBlockedAddOne;
using internal::CmBlockedMinOne;
using internal::CsBlockedAddOne;
using internal::kCmBlockSlots;

/// Hash + block-select phase shared by the blocked frequency kernels:
/// 4-wide Murmur3 and vector modulo into the chunk-local blocks/probes
/// arrays, scalar tail bit-identical by the shared InvariantMod contract.
inline void CmHashBlocksChunk(const uint64_t* keys, size_t len, uint64_t seed,
                              const VecMod& mod, uint64_t* blocks,
                              uint64_t* probes) {
  size_t i = 0;
  for (; i + 4 <= len; i += 4) {
    const __m256i key =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    __m256i lo, hi;
    Murmur3x4(key, seed, &lo, &hi);
    _mm256_store_si256(reinterpret_cast<__m256i*>(blocks + i), mod(lo));
    _mm256_store_si256(reinterpret_cast<__m256i*>(probes + i), hi);
  }
  for (; i < len; ++i) {
    const Hash128 h = Murmur3_128_U64(keys[i], seed);
    blocks[i] = mod.scalar(h.low);
    probes[i] = h.high;
  }
}

void CmBlockedAdd(uint64_t* slots, uint64_t num_blocks, uint32_t depth,
                  uint32_t cols, uint64_t seed, const uint64_t* keys,
                  size_t n) {
  const VecMod mod(num_blocks);
  constexpr size_t kChunk = 64;
  alignas(32) uint64_t blocks[kChunk];
  alignas(32) uint64_t probes[kChunk];
  for (size_t base = 0; base < n; base += kChunk) {
    const size_t len = std::min(kChunk, n - base);
    CmHashBlocksChunk(keys + base, len, seed, mod, blocks, probes);
    for (size_t i = 0; i < len; ++i) {
      __builtin_prefetch(&slots[blocks[i] * kCmBlockSlots], 1);
    }
    for (size_t i = 0; i < len; ++i) {
      CmBlockedAddOne(&slots[blocks[i] * kCmBlockSlots], depth, cols,
                      probes[i], 1);
    }
  }
}

void CmBlockedAddWeighted(uint64_t* slots, uint64_t num_blocks, uint32_t depth,
                          uint32_t cols, uint64_t seed, const uint64_t* keys,
                          const int64_t* weights, size_t n) {
  const VecMod mod(num_blocks);
  constexpr size_t kChunk = 64;
  alignas(32) uint64_t blocks[kChunk];
  alignas(32) uint64_t probes[kChunk];
  for (size_t base = 0; base < n; base += kChunk) {
    const size_t len = std::min(kChunk, n - base);
    CmHashBlocksChunk(keys + base, len, seed, mod, blocks, probes);
    for (size_t i = 0; i < len; ++i) {
      __builtin_prefetch(&slots[blocks[i] * kCmBlockSlots], 1);
    }
    for (size_t i = 0; i < len; ++i) {
      CmBlockedAddOne(&slots[blocks[i] * kCmBlockSlots], depth, cols,
                      probes[i], static_cast<uint64_t>(weights[base + i]));
    }
  }
}

void CmBlockedMin(const uint64_t* slots, uint64_t num_blocks, uint32_t depth,
                  uint32_t cols, uint64_t seed, const uint64_t* keys, size_t n,
                  uint64_t* out) {
  const VecMod mod(num_blocks);
  constexpr size_t kChunk = 64;
  alignas(32) uint64_t blocks[kChunk];
  alignas(32) uint64_t probes[kChunk];
  for (size_t base = 0; base < n; base += kChunk) {
    const size_t len = std::min(kChunk, n - base);
    CmHashBlocksChunk(keys + base, len, seed, mod, blocks, probes);
    for (size_t i = 0; i < len; ++i) {
      __builtin_prefetch(&slots[blocks[i] * kCmBlockSlots], 0);
    }
    for (size_t i = 0; i < len; ++i) {
      out[base + i] = CmBlockedMinOne(&slots[blocks[i] * kCmBlockSlots], depth,
                                      cols, probes[i]);
    }
  }
}

void CsBlockedAdd(int64_t* slots, uint64_t num_blocks, uint32_t depth,
                  uint32_t cols, uint64_t seed, const uint64_t* keys,
                  const int64_t* weights, size_t n) {
  const VecMod mod(num_blocks);
  constexpr size_t kChunk = 64;
  alignas(32) uint64_t blocks[kChunk];
  alignas(32) uint64_t probes[kChunk];
  for (size_t base = 0; base < n; base += kChunk) {
    const size_t len = std::min(kChunk, n - base);
    CmHashBlocksChunk(keys + base, len, seed, mod, blocks, probes);
    for (size_t i = 0; i < len; ++i) {
      __builtin_prefetch(&slots[blocks[i] * kCmBlockSlots], 1);
    }
    for (size_t i = 0; i < len; ++i) {
      CsBlockedAddOne(&slots[blocks[i] * kCmBlockSlots], depth, cols,
                      probes[i], weights == nullptr ? 1 : weights[base + i]);
    }
  }
}

double I64SumSquares(const int64_t* values, size_t n) {
  // AVX2 has no packed int64->double conversion; convert lanes through the
  // scalar unit (identical rounding to the reference's cast) and keep the
  // multiply-accumulate vectorized. One accumulator = the four stripes.
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_set_pd(
        static_cast<double>(values[i + 3]), static_cast<double>(values[i + 2]),
        static_cast<double>(values[i + 1]), static_cast<double>(values[i]));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(v, v));
  }
  alignas(32) double s[4];
  _mm256_store_pd(s, acc);
  for (; i < n; ++i) {
    const double v = static_cast<double>(values[i]);
    s[i & 3] += v * v;
  }
  return (s[0] + s[1]) + (s[2] + s[3]);
}

// ------------------------------------------------------------- membership

void BloomInsert(uint64_t* bits, uint64_t num_bits, int k, const uint64_t* h1,
                 const uint64_t* h2, size_t n) {
  const VecMod mod(num_bits);
  alignas(32) uint64_t idx[4];
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i h = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(h1 + i));
    const __m256i step = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(h2 + i));
    for (int j = 0; j < k; ++j) {
      _mm256_store_si256(reinterpret_cast<__m256i*>(idx), mod(h));
      for (int lane = 0; lane < 4; ++lane) {
        bits[idx[lane] >> 6] |= uint64_t{1} << (idx[lane] & 63);
      }
      h = _mm256_add_epi64(h, step);
    }
  }
  for (; i < n; ++i) {
    uint64_t h = h1[i];
    const uint64_t step = h2[i];
    for (int j = 0; j < k; ++j) {
      const uint64_t bit = mod.scalar(h);
      bits[bit >> 6] |= uint64_t{1} << (bit & 63);
      h += step;
    }
  }
}

void BloomQuery(const uint64_t* bits, uint64_t num_bits, int k,
                const uint64_t* h1, const uint64_t* h2, size_t n,
                uint8_t* out) {
  const VecMod mod(num_bits);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i h = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(h1 + i));
    const __m256i step = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(h2 + i));
    const __m256i one = Splat64(1);
    __m256i all_set = one;
    for (int j = 0; j < k; ++j) {
      const __m256i bit = mod(h);
      const __m256i word = _mm256_i64gather_epi64(
          reinterpret_cast<const long long*>(bits),
          _mm256_srli_epi64(bit, 6), 8);
      // (word >> (bit & 63)) & 1 per lane.
      const __m256i shift = _mm256_and_si256(bit, Splat64(63));
      const __m256i probe =
          _mm256_and_si256(_mm256_srlv_epi64(word, shift), one);
      all_set = _mm256_and_si256(all_set, probe);
      h = _mm256_add_epi64(h, step);
    }
    alignas(32) uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), all_set);
    out[i] = static_cast<uint8_t>(lanes[0]);
    out[i + 1] = static_cast<uint8_t>(lanes[1]);
    out[i + 2] = static_cast<uint8_t>(lanes[2]);
    out[i + 3] = static_cast<uint8_t>(lanes[3]);
  }
  for (; i < n; ++i) {
    uint64_t h = h1[i];
    const uint64_t step = h2[i];
    uint8_t all_set = 1;
    for (int j = 0; j < k; ++j) {
      const uint64_t bit = mod.scalar(h);
      all_set &= static_cast<uint8_t>((bits[bit >> 6] >> (bit & 63)) & 1);
      h += step;
    }
    out[i] = all_set;
  }
}

void BlockedBloomInsert(uint64_t* words, uint64_t num_blocks, int k,
                        uint64_t seed, const uint64_t* keys, size_t n) {
  const VecMod mod(num_blocks);
  constexpr size_t kChunk = 64;
  alignas(32) uint64_t blocks[kChunk];
  alignas(32) uint64_t probes[kChunk];
  for (size_t base = 0; base < n; base += kChunk) {
    const size_t len = std::min(kChunk, n - base);
    size_t i = 0;
    for (; i + 4 <= len; i += 4) {
      const __m256i key = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(keys + base + i));
      __m256i lo, hi;
      Murmur3x4(key, seed, &lo, &hi);
      _mm256_store_si256(reinterpret_cast<__m256i*>(blocks + i), mod(lo));
      _mm256_store_si256(reinterpret_cast<__m256i*>(probes + i), hi);
    }
    for (; i < len; ++i) {
      const Hash128 h = Murmur3_128_U64(keys[base + i], seed);
      blocks[i] = mod.scalar(h.low);
      probes[i] = h.high;
    }
    for (i = 0; i < len; ++i) {
      __builtin_prefetch(&words[blocks[i] * kBlockedBloomWordsPerBlock], 1);
    }
    for (i = 0; i < len; ++i) {
      BlockedBloomProbe(&words[blocks[i] * kBlockedBloomWordsPerBlock], k,
                        probes[i]);
    }
  }
}

void BlockedBloomQuery(const uint64_t* words, uint64_t num_blocks, int k,
                       uint64_t seed, const uint64_t* keys, size_t n,
                       uint8_t* out) {
  const VecMod mod(num_blocks);
  constexpr size_t kChunk = 64;
  alignas(32) uint64_t blocks[kChunk];
  alignas(32) uint64_t probes[kChunk];
  for (size_t base = 0; base < n; base += kChunk) {
    const size_t len = std::min(kChunk, n - base);
    size_t i = 0;
    for (; i + 4 <= len; i += 4) {
      const __m256i key = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(keys + base + i));
      __m256i lo, hi;
      Murmur3x4(key, seed, &lo, &hi);
      _mm256_store_si256(reinterpret_cast<__m256i*>(blocks + i), mod(lo));
      _mm256_store_si256(reinterpret_cast<__m256i*>(probes + i), hi);
    }
    for (; i < len; ++i) {
      const Hash128 h = Murmur3_128_U64(keys[base + i], seed);
      blocks[i] = mod.scalar(h.low);
      probes[i] = h.high;
    }
    for (i = 0; i < len; ++i) {
      __builtin_prefetch(&words[blocks[i] * kBlockedBloomWordsPerBlock], 0);
    }
    for (i = 0; i < len; ++i) {
      out[base + i] = BlockedBloomTest(
          &words[blocks[i] * kBlockedBloomWordsPerBlock], k, probes[i]);
    }
  }
}

// ------------------------------------------------------------ elementwise

void U64Min(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), MinU64(a, b));
  }
  for (; i < n; ++i) dst[i] = std::min(dst[i], src[i]);
}

void U64Or(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(a, b));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

void U64Add(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_add_epi64(a, b));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

void I64Add(int64_t* dst, const int64_t* src, size_t n) {
  U64Add(reinterpret_cast<uint64_t*>(dst),
         reinterpret_cast<const uint64_t*>(src), n);
}

}  // namespace

const SimdKernels* Avx2Kernels() {
  // Start from the scalar table so loops with no profitable vector form
  // (scatter adds, sorts, the precomputed-hash register pass) share the
  // reference implementation by construction.
  static const SimdKernels table = [] {
    SimdKernels t = ScalarKernels();
    t.name = "avx2";
    t.mix64_batch = &Mix64Batch;
    t.mix64_min = &Mix64Min;
    t.murmur3_batch_u64 = &Murmur3BatchU64;
    t.hll_ingest = &HllIngest;
    t.u8_max = &U8Max;
    t.hll_harmonic_sum = &HllHarmonicSum;
    t.cm_row_add = &CmRowAdd;
    t.cm_row_add_weighted = &CmRowAddWeighted;
    t.cm_row_min = &CmRowMin;
    t.i64_sum_squares = &I64SumSquares;
    t.cm_blocked_add = &CmBlockedAdd;
    t.cm_blocked_add_weighted = &CmBlockedAddWeighted;
    t.cm_blocked_min = &CmBlockedMin;
    t.cs_blocked_add = &CsBlockedAdd;
    t.bloom_insert = &BloomInsert;
    t.bloom_query = &BloomQuery;
    t.blocked_bloom_insert = &BlockedBloomInsert;
    t.blocked_bloom_query = &BlockedBloomQuery;
    t.u64_min = &U64Min;
    t.u64_or = &U64Or;
    t.u64_add = &U64Add;
    t.i64_add = &I64Add;
    return t;
  }();
  return &table;
}

}  // namespace gems::simd

#endif  // x86-64
