#ifndef GEMS_SIMD_KERNELS_H_
#define GEMS_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

/// \file
/// The kernel table: one function pointer per measured hot loop, with one
/// scalar reference implementation (kernels_scalar.cc) and per-ISA variants
/// (kernels_avx2.cc and kernels_avx512.cc on x86-64, kernels_neon.cc on
/// aarch64). A table is
/// selected once at startup by dispatch.cc; sketches call through
/// `simd::Kernels()` and never test CPU features themselves.
///
/// The contract every variant must honor is **bit identity**: for any
/// input, a variant produces exactly the bytes/values the scalar reference
/// produces — same register contents, same counter values, same sorted
/// order — so a sketch ingested under one dispatch level serializes to the
/// same envelope as under any other. tests/simd_test.cc enforces this on
/// randomized lengths (empty, single element, non-multiple-of-lane-width
/// tails) for every kernel.
///
/// Floating-point kernels state their reduction order explicitly (stripe-4
/// accumulation, reduced as (s0+s1)+(s2+s3)) so scalar and vector variants
/// associate additions identically. Sort kernels are unstable and assume
/// no NaNs; values that compare equal but differ bitwise (-0.0 vs +0.0)
/// may permute across variants.

namespace gems::simd {

struct SimdKernels {
  /// Variant name for bench/caps attribution: "scalar", "avx2", "avx512",
  /// "neon".
  const char* name;

  // ---------------------------------------------------------------- hash

  /// out[i] = Mix64(keys[i] + mixed_seed) — the hoisted-seed form of
  /// Hash64(key, seed) that HashBatch uses (mixed_seed is the caller's
  /// Mix64(seed + golden) value).
  void (*mix64_batch)(const uint64_t* keys, size_t n, uint64_t mixed_seed,
                      uint64_t* out);

  /// min over i of Mix64(keys[i] + mixed_seed); ~0ull when n == 0.
  /// MinHash's coordinate-outer batch reduces each signature slot with one
  /// call (pure min reduction, no scatter).
  uint64_t (*mix64_min)(const uint64_t* keys, size_t n, uint64_t mixed_seed);

  /// 4-8 keys in flight of the 8-byte Murmur3 x64-128 specialization:
  /// lo[i]/hi[i] = Murmur3_128_U64(keys[i], seed).
  void (*murmur3_batch_u64)(const uint64_t* keys, size_t n, uint64_t seed,
                            uint64_t* lo, uint64_t* hi);

  // -------------------------------------------- cardinality (HLL, HLL++)

  /// Dense HLL register pass over precomputed 64-bit hashes:
  ///   idx = hash >> (64-p),  rho = clz(hash & ((1<<(64-p))-1)) - p + 1,
  ///   regs[idx] = max(regs[idx], rho).
  /// `precision` in [4, 18].
  void (*hll_update_hashes)(uint8_t* regs, int precision,
                            const uint64_t* hashes, size_t n);

  /// Fused ingest: hll_update_hashes applied to Mix64(keys[i] + mixed_seed)
  /// without materializing the hash words (the UpdateBatch fast path).
  void (*hll_ingest)(uint8_t* regs, int precision, const uint64_t* keys,
                     size_t n, uint64_t mixed_seed);

  /// dst[i] = max(dst[i], src[i]) over bytes (HLL merge / merge-from-view).
  void (*u8_max)(uint8_t* dst, const uint8_t* src, size_t n);

  /// Dense harmonic sum for estimation: *sum = Σ 2^-regs[i] with stripe-4
  /// accumulation (element i feeds stripe i & 3; final reduce
  /// (s0+s1)+(s2+s3)), *zeros = #{i : regs[i] == 0}. Register values must
  /// be <= 64.
  void (*hll_harmonic_sum)(const uint8_t* regs, size_t n, double* sum,
                           uint32_t* zeros);

  // --------------------------------------------------- frequency sketches

  /// Count-Min row update: row[hashes[i] % width] += 1. The modulo is
  /// exact (strength-reduced internally), so results match any correct
  /// per-item path bit for bit.
  void (*cm_row_add)(uint64_t* row, uint64_t width, const uint64_t* hashes,
                     size_t n);

  /// Weighted variant: row[hashes[i] % width] += weights[i] (as uint64).
  void (*cm_row_add_weighted)(uint64_t* row, uint64_t width,
                              const uint64_t* hashes, const int64_t* weights,
                              size_t n);

  /// One row of a batched min-reduce point query:
  /// out[i] = min(out[i], row[hashes[i] % width]). Callers seed `out` with
  /// ~0ull and fold one row per call (also the conservative-update variant's
  /// min pass, applied over its per-row buckets).
  void (*cm_row_min)(const uint64_t* row, uint64_t width,
                     const uint64_t* hashes, size_t n, uint64_t* out);

  /// CountSketch signed row update over precomputed buckets:
  /// row[buckets[i]] += signed_weights[i].
  void (*cs_row_scatter)(int64_t* row, const uint32_t* buckets,
                         const int64_t* signed_weights, size_t n);

  /// Σ (double)v[i] * (double)v[i] with the stripe-4 contract above
  /// (CountSketch/AMS F2 row evaluation feeding the median).
  double (*i64_sum_squares)(const int64_t* values, size_t n);

  /// Cache-line-blocked Count-Min batch update, fused hash + block-select +
  /// prefetch + probe (the kBlocked layout): one Murmur3_128_U64 per key,
  /// block = h.low % num_blocks, then all `depth` row counters live in the
  /// selected 8-slot block — row r owns slots [r*cols, (r+1)*cols) and its
  /// sub-column is 3-bit slice r of h.high masked to cols-1. `cols` is a
  /// power of two with cols * depth <= 8.
  void (*cm_blocked_add)(uint64_t* slots, uint64_t num_blocks, uint32_t depth,
                         uint32_t cols, uint64_t seed, const uint64_t* keys,
                         size_t n);

  /// Weighted variant: every touched slot gains weights[i] (as uint64).
  void (*cm_blocked_add_weighted)(uint64_t* slots, uint64_t num_blocks,
                                  uint32_t depth, uint32_t cols, uint64_t seed,
                                  const uint64_t* keys, const int64_t* weights,
                                  size_t n);

  /// Blocked Count-Min batch point query with the same probe schedule:
  /// out[i] = min over rows of the selected block's counters (written
  /// directly — no caller seeding, unlike cm_row_min's row-fold contract).
  void (*cm_blocked_min)(const uint64_t* slots, uint64_t num_blocks,
                         uint32_t depth, uint32_t cols, uint64_t seed,
                         const uint64_t* keys, size_t n, uint64_t* out);

  /// Blocked CountSketch batch update: same block/column schedule over
  /// int64 counters, sign for row r from bit 24+r of h.high (disjoint from
  /// the column slices). `weights == nullptr` means unit weight.
  void (*cs_blocked_add)(int64_t* slots, uint64_t num_blocks, uint32_t depth,
                         uint32_t cols, uint64_t seed, const uint64_t* keys,
                         const int64_t* weights, size_t n);

  // -------------------------------------------------- membership filters

  /// Kirsch-Mitzenmacher multi-probe insert for the flat Bloom filter:
  /// for each key i, set bit (h1[i] + j*h2[i]) % num_bits for j in [0, k).
  void (*bloom_insert)(uint64_t* bits, uint64_t num_bits, int k,
                       const uint64_t* h1, const uint64_t* h2, size_t n);

  /// Batch membership: out[i] = 1 iff all k probe bits of key i are set.
  void (*bloom_query)(const uint64_t* bits, uint64_t num_bits, int k,
                      const uint64_t* h1, const uint64_t* h2, size_t n,
                      uint8_t* out);

  /// Blocked Bloom batch insert, fused hash + block-select + probe pass
  /// (Murmur3_128_U64 per key; block = h.low % num_blocks; probes are
  /// 9-bit slices of h.high, refilled from Mix64(h.high) after the sixth).
  /// Blocks are 8 words (512 bits); prefetching is the kernel's job.
  void (*blocked_bloom_insert)(uint64_t* words, uint64_t num_blocks, int k,
                               uint64_t seed, const uint64_t* keys, size_t n);

  /// Blocked Bloom batch membership with the same probe schedule.
  void (*blocked_bloom_query)(const uint64_t* words, uint64_t num_blocks,
                              int k, uint64_t seed, const uint64_t* keys,
                              size_t n, uint8_t* out);

  // ------------------------------------------------------ quantiles (KLL)

  /// Unstable ascending sort (KLL level-buffer compaction). No NaNs.
  void (*sort_doubles)(double* data, size_t n);

  /// Merge two ascending runs into `out` (size na + nb). Ties take from
  /// `a` first. No NaNs. `out` must not alias the inputs.
  void (*merge_doubles)(const double* a, size_t na, const double* b,
                        size_t nb, double* out);

  // ------------------------------------------- elementwise merge kernels

  /// dst[i] = min(dst[i], src[i]) (MinHash signature merge).
  void (*u64_min)(uint64_t* dst, const uint64_t* src, size_t n);

  /// dst[i] |= src[i] (Bloom-family merges).
  void (*u64_or)(uint64_t* dst, const uint64_t* src, size_t n);

  /// dst[i] += src[i] (Count-Min merge).
  void (*u64_add)(uint64_t* dst, const uint64_t* src, size_t n);

  /// dst[i] += src[i] (CountSketch / AMS merges).
  void (*i64_add)(int64_t* dst, const int64_t* src, size_t n);
};

/// The scalar reference table (always available; the parity baseline).
const SimdKernels& ScalarKernels();

#if defined(__x86_64__) || defined(_M_X64)
/// The AVX2 table, or nullptr when the build lacks the variant TU.
/// dispatch.cc checks CPU support before selecting it.
const SimdKernels* Avx2Kernels();

/// The AVX-512 table (requires F+CD+DQ+VL+BW at run time), or nullptr when
/// the toolchain cannot target AVX-512. Inherits AVX2 kernels where a
/// 512-bit form buys nothing.
const SimdKernels* Avx512Kernels();
#endif

#if defined(__aarch64__)
/// The NEON table (aarch64 always has NEON).
const SimdKernels* NeonKernels();
#endif

}  // namespace gems::simd

#endif  // GEMS_SIMD_KERNELS_H_
