#include "simd/dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

namespace gems::simd {
namespace {

bool ForceScalarFromEnv() {
  const char* v = std::getenv("GEMS_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

#if defined(__x86_64__) || defined(_M_X64)
std::string DetectX86Features() {
  // __builtin_cpu_supports consults libgcc's cpu_indicator, which already
  // folds in the OSXSAVE/XCR0 check — "avx2" here means usable, not just
  // present in CPUID.
  std::string out;
  const auto add = [&out](const char* name, bool present) {
    if (!present) return;
    if (!out.empty()) out += ' ';
    out += name;
  };
  add("sse2", __builtin_cpu_supports("sse2"));
  add("sse4.2", __builtin_cpu_supports("sse4.2"));
  add("popcnt", __builtin_cpu_supports("popcnt"));
  add("avx", __builtin_cpu_supports("avx"));
  add("avx2", __builtin_cpu_supports("avx2"));
  add("bmi", __builtin_cpu_supports("bmi"));
  add("bmi2", __builtin_cpu_supports("bmi2"));
  add("fma", __builtin_cpu_supports("fma"));
  add("avx512f", __builtin_cpu_supports("avx512f"));
  add("avx512cd", __builtin_cpu_supports("avx512cd"));
  add("avx512dq", __builtin_cpu_supports("avx512dq"));
  add("avx512vl", __builtin_cpu_supports("avx512vl"));
  add("avx512bw", __builtin_cpu_supports("avx512bw"));
  return out;
}

bool CpuHasAvx512Subsets() {
  // The five subsets kernels_avx512.cc is compiled against. Every
  // AVX-512-era server core (Skylake-SP onward) has all five; Knights
  // Landing-style F-only parts fall back to AVX2.
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512cd") &&
         __builtin_cpu_supports("avx512dq") &&
         __builtin_cpu_supports("avx512vl") &&
         __builtin_cpu_supports("avx512bw");
}
#endif

struct Selection {
  const SimdKernels* table;
  DispatchInfo info;
};

Selection Select() {
  Selection s;
  s.table = &ScalarKernels();
  s.info.level = s.table->name;
  s.info.forced_scalar = false;
#if defined(__x86_64__) || defined(_M_X64)
  s.info.cpu_features = DetectX86Features();
  const SimdKernels* avx2 = Avx2Kernels();
  if (avx2 != nullptr && __builtin_cpu_supports("avx2")) {
    s.table = avx2;
  }
  const SimdKernels* avx512 = Avx512Kernels();
  if (avx512 != nullptr && CpuHasAvx512Subsets()) {
    s.table = avx512;
  }
#elif defined(__aarch64__)
  s.info.cpu_features = "neon";
  s.table = NeonKernels();
#endif
  if (ForceScalarFromEnv()) {
    s.info.forced_scalar = s.table != &ScalarKernels();
    s.table = &ScalarKernels();
  }
  s.info.level = s.table->name;
  return s;
}

const Selection& GlobalSelection() {
  static const Selection s = Select();
  return s;
}

std::atomic<bool> g_force_scalar{false};

std::string JsonEscape(const std::string& in) {
  // Feature strings are [a-z0-9. ] in practice; escape defensively anyway.
  std::string out;
  for (char c : in) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

const SimdKernels& Kernels() {
  if (g_force_scalar.load(std::memory_order_relaxed)) return ScalarKernels();
  return *GlobalSelection().table;
}

const DispatchInfo& Dispatch() { return GlobalSelection().info; }

const char* ActiveLevel() { return Kernels().name; }

std::string DispatchJson() {
  const DispatchInfo& info = Dispatch();
  std::string out = "{\"level\": \"";
  out += info.level;
  out += "\", \"cpu_features\": \"";
  out += JsonEscape(info.cpu_features);
  out += "\", \"forced_scalar\": ";
  out += info.forced_scalar ? "true" : "false";
  out += "}";
  return out;
}

void ForceScalarForTesting(bool force) {
  g_force_scalar.store(force, std::memory_order_relaxed);
}

}  // namespace gems::simd
