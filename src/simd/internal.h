#ifndef GEMS_SIMD_INTERNAL_H_
#define GEMS_SIMD_INTERNAL_H_

#include <bit>
#include <cstdint>

#include "common/random.h"

/// \file
/// Helpers shared by the kernel variant TUs (scalar / AVX2 / NEON). These
/// define scalar sub-steps that every variant must reproduce exactly —
/// keeping them in one header is what keeps the variants bit-identical by
/// construction rather than by vigilance.

namespace gems::simd::internal {

/// 2^-reg exactly, for reg in [0, 64]: build the double's bit pattern
/// directly (exponent field 1023 - reg stays normal down to reg == 64).
inline double Pow2Neg(uint8_t reg) {
  return std::bit_cast<double>(static_cast<uint64_t>(1023 - reg) << 52);
}

// Blocked Bloom probe schedule (matches BlockedBloomFilter::InsertProbes):
// consecutive 9-bit slices of the 64-bit probe word; after the sixth slice
// the word is refilled with Mix64(probe_bits). Blocks are 8 x 64-bit words
// (one cache line).
inline constexpr int kBlockedBloomWordsPerBlock = 8;
inline constexpr int kBlockedBloomProbeBits = 9;
inline constexpr int kBlockedBloomProbesPerWord = 6;

inline void BlockedBloomProbe(uint64_t* block, int k, uint64_t probe_bits) {
  uint64_t probes = probe_bits;
  for (int i = 0; i < k; ++i) {
    if (i == kBlockedBloomProbesPerWord) probes = Mix64(probe_bits);
    const uint32_t bit =
        static_cast<uint32_t>(probes) & ((1u << kBlockedBloomProbeBits) - 1);
    probes >>= kBlockedBloomProbeBits;
    block[bit >> 6] |= uint64_t{1} << (bit & 63);
  }
}

inline bool BlockedBloomTest(const uint64_t* block, int k,
                             uint64_t probe_bits) {
  uint64_t probes = probe_bits;
  for (int i = 0; i < k; ++i) {
    if (i == kBlockedBloomProbesPerWord) probes = Mix64(probe_bits);
    const uint32_t bit =
        static_cast<uint32_t>(probes) & ((1u << kBlockedBloomProbeBits) - 1);
    probes >>= kBlockedBloomProbeBits;
    if (((block[bit >> 6] >> (bit & 63)) & 1) == 0) return false;
  }
  return true;
}

}  // namespace gems::simd::internal

#endif  // GEMS_SIMD_INTERNAL_H_
