#ifndef GEMS_SIMD_INTERNAL_H_
#define GEMS_SIMD_INTERNAL_H_

#include <algorithm>
#include <bit>
#include <cstdint>

#include "common/random.h"

/// \file
/// Helpers shared by the kernel variant TUs (scalar / AVX2 / NEON). These
/// define scalar sub-steps that every variant must reproduce exactly —
/// keeping them in one header is what keeps the variants bit-identical by
/// construction rather than by vigilance.

namespace gems::simd::internal {

/// 2^-reg exactly, for reg in [0, 64]: build the double's bit pattern
/// directly (exponent field 1023 - reg stays normal down to reg == 64).
inline double Pow2Neg(uint8_t reg) {
  return std::bit_cast<double>(static_cast<uint64_t>(1023 - reg) << 52);
}

// Blocked Bloom probe schedule (matches BlockedBloomFilter::InsertProbes):
// consecutive 9-bit slices of the 64-bit probe word; after the sixth slice
// the word is refilled with Mix64(probe_bits). Blocks are 8 x 64-bit words
// (one cache line).
inline constexpr int kBlockedBloomWordsPerBlock = 8;
inline constexpr int kBlockedBloomProbeBits = 9;
inline constexpr int kBlockedBloomProbesPerWord = 6;

inline void BlockedBloomProbe(uint64_t* block, int k, uint64_t probe_bits) {
  uint64_t probes = probe_bits;
  for (int i = 0; i < k; ++i) {
    if (i == kBlockedBloomProbesPerWord) probes = Mix64(probe_bits);
    const uint32_t bit =
        static_cast<uint32_t>(probes) & ((1u << kBlockedBloomProbeBits) - 1);
    probes >>= kBlockedBloomProbeBits;
    block[bit >> 6] |= uint64_t{1} << (bit & 63);
  }
}

inline bool BlockedBloomTest(const uint64_t* block, int k,
                             uint64_t probe_bits) {
  uint64_t probes = probe_bits;
  for (int i = 0; i < k; ++i) {
    if (i == kBlockedBloomProbesPerWord) probes = Mix64(probe_bits);
    const uint32_t bit =
        static_cast<uint32_t>(probes) & ((1u << kBlockedBloomProbeBits) - 1);
    probes >>= kBlockedBloomProbeBits;
    if (((block[bit >> 6] >> (bit & 63)) & 1) == 0) return false;
  }
  return true;
}

// Cache-line-blocked frequency-sketch tile schedule (matches the kBlocked
// layout in CountMinSketch / CountSketch): a block is 8 x 64-bit counters
// (one cache line); row r owns the `cols` consecutive slots starting at
// r * cols, where cols is a power of two <= 8 / depth. One
// Murmur3_128_U64(item, seed) drives everything: block = h.low % num_blocks,
// and row r's sub-column is 3-bit slice r of h.high masked to cols - 1.
// CountSketch signs come from bits 24+r of h.high, above every column slice
// (depth <= 8 uses column bits 0..23 at most), so columns and signs never
// share entropy.
inline constexpr int kCmBlockSlots = 8;
inline constexpr int kCmBlockColBits = 3;
inline constexpr int kCsBlockSignShift = 24;

inline uint32_t CmBlockCol(uint64_t probe_bits, uint32_t row,
                           uint32_t col_mask) {
  return static_cast<uint32_t>(probe_bits >> (kCmBlockColBits * row)) &
         col_mask;
}

inline void CmBlockedAddOne(uint64_t* block, uint32_t depth, uint32_t cols,
                            uint64_t probe_bits, uint64_t weight) {
  const uint32_t col_mask = cols - 1;
  for (uint32_t r = 0; r < depth; ++r) {
    block[r * cols + CmBlockCol(probe_bits, r, col_mask)] += weight;
  }
}

inline uint64_t CmBlockedMinOne(const uint64_t* block, uint32_t depth,
                                uint32_t cols, uint64_t probe_bits) {
  const uint32_t col_mask = cols - 1;
  uint64_t best = ~uint64_t{0};
  for (uint32_t r = 0; r < depth; ++r) {
    best = std::min(best, block[r * cols + CmBlockCol(probe_bits, r, col_mask)]);
  }
  return best;
}

inline int64_t CsBlockSign(uint64_t probe_bits, uint32_t row) {
  return ((probe_bits >> (kCsBlockSignShift + row)) & 1) ? int64_t{1}
                                                         : int64_t{-1};
}

inline void CsBlockedAddOne(int64_t* block, uint32_t depth, uint32_t cols,
                            uint64_t probe_bits, int64_t weight) {
  const uint32_t col_mask = cols - 1;
  // Sign application and accumulation both run in unsigned arithmetic:
  // negating or adding at the extremes of int64 must wrap in two's
  // complement (as the flat path's hardware vector adds do), not hit
  // signed-overflow UB.
  const uint64_t mag = static_cast<uint64_t>(weight);
  for (uint32_t r = 0; r < depth; ++r) {
    int64_t& slot = block[r * cols + CmBlockCol(probe_bits, r, col_mask)];
    const uint64_t delta = CsBlockSign(probe_bits, r) > 0 ? mag : uint64_t{0} - mag;
    slot = static_cast<int64_t>(static_cast<uint64_t>(slot) + delta);
  }
}

}  // namespace gems::simd::internal

#endif  // GEMS_SIMD_INTERNAL_H_
