#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "common/bits.h"
#include "common/random.h"
#include "hash/hashed_batch.h"
#include "hash/murmur3.h"
#include "simd/internal.h"
#include "simd/kernels.h"

/// \file
/// The scalar reference table. These loops define the semantics every
/// vector variant must reproduce bit for bit: integer kernels are exact by
/// construction, and the two floating-point reductions fix their
/// association order (stripe-4) so a 4-lane vector accumulator adds the
/// same operands in the same order. GCC/Clang auto-vectorize several of
/// these at -O3 — that is fine; the dispatch layer exists for the loops
/// the autovectorizer cannot touch (64-bit mixing, gathers, probe math).

namespace gems::simd {
namespace {

// ------------------------------------------------------------------- hash

void Mix64Batch(const uint64_t* keys, size_t n, uint64_t mixed_seed,
                uint64_t* out) {
  for (size_t i = 0; i < n; ++i) out[i] = Mix64(keys[i] + mixed_seed);
}

uint64_t Mix64Min(const uint64_t* keys, size_t n, uint64_t mixed_seed) {
  uint64_t best = ~uint64_t{0};
  for (size_t i = 0; i < n; ++i) {
    best = std::min(best, Mix64(keys[i] + mixed_seed));
  }
  return best;
}

void Murmur3BatchU64(const uint64_t* keys, size_t n, uint64_t seed,
                     uint64_t* lo, uint64_t* hi) {
  for (size_t i = 0; i < n; ++i) {
    const Hash128 h = Murmur3_128_U64(keys[i], seed);
    lo[i] = h.low;
    hi[i] = h.high;
  }
}

// ------------------------------------------------------------ cardinality

void HllUpdateHashes(uint8_t* regs, int precision, const uint64_t* hashes,
                     size_t n) {
  const int shift = 64 - precision;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t hash = hashes[i];
    const uint32_t index = static_cast<uint32_t>(hash >> shift);
    const uint8_t rho = static_cast<uint8_t>(RankOfLeftmostOne(hash, shift));
    regs[index] = std::max(regs[index], rho);
  }
}

void HllIngest(uint8_t* regs, int precision, const uint64_t* keys, size_t n,
               uint64_t mixed_seed) {
  const int shift = 64 - precision;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t hash = Mix64(keys[i] + mixed_seed);
    const uint32_t index = static_cast<uint32_t>(hash >> shift);
    const uint8_t rho = static_cast<uint8_t>(RankOfLeftmostOne(hash, shift));
    regs[index] = std::max(regs[index], rho);
  }
}

void U8Max(uint8_t* dst, const uint8_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] = std::max(dst[i], src[i]);
}

using internal::Pow2Neg;

void HllHarmonicSum(const uint8_t* regs, size_t n, double* sum,
                    uint32_t* zeros) {
  double s[4] = {0.0, 0.0, 0.0, 0.0};
  uint32_t z = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint8_t reg = regs[i];
    s[i & 3] += Pow2Neg(reg);
    z += (reg == 0) ? 1 : 0;
  }
  *sum = (s[0] + s[1]) + (s[2] + s[3]);
  *zeros = z;
}

// -------------------------------------------------------------- frequency

void CmRowAdd(uint64_t* row, uint64_t width, const uint64_t* hashes,
              size_t n) {
  const InvariantMod mod(width);
  for (size_t i = 0; i < n; ++i) row[mod(hashes[i])] += 1;
}

void CmRowAddWeighted(uint64_t* row, uint64_t width, const uint64_t* hashes,
                      const int64_t* weights, size_t n) {
  const InvariantMod mod(width);
  for (size_t i = 0; i < n; ++i) {
    row[mod(hashes[i])] += static_cast<uint64_t>(weights[i]);
  }
}

void CmRowMin(const uint64_t* row, uint64_t width, const uint64_t* hashes,
              size_t n, uint64_t* out) {
  const InvariantMod mod(width);
  for (size_t i = 0; i < n; ++i) {
    out[i] = std::min(out[i], row[mod(hashes[i])]);
  }
}

void CsRowScatter(int64_t* row, const uint32_t* buckets,
                  const int64_t* signed_weights, size_t n) {
  // Unsigned wrapping add: counters near INT64_MAX must wrap in two's
  // complement like the vector kernels' hardware adds do, not hit signed-
  // overflow UB.
  for (size_t i = 0; i < n; ++i) {
    row[buckets[i]] =
        static_cast<int64_t>(static_cast<uint64_t>(row[buckets[i]]) +
                             static_cast<uint64_t>(signed_weights[i]));
  }
}

using internal::CmBlockedAddOne;
using internal::CmBlockedMinOne;
using internal::CsBlockedAddOne;
using internal::kCmBlockSlots;

void CmBlockedAdd(uint64_t* slots, uint64_t num_blocks, uint32_t depth,
                  uint32_t cols, uint64_t seed, const uint64_t* keys,
                  size_t n) {
  const InvariantMod mod(num_blocks);
  // Same chunked hash-then-touch shape as BlockedBloomInsert: block-select a
  // run of keys, prefetch their lines, probe once the loads are in flight.
  constexpr size_t kChunk = 64;
  uint64_t blocks[kChunk];
  uint64_t probes[kChunk];
  for (size_t base = 0; base < n; base += kChunk) {
    const size_t len = std::min(kChunk, n - base);
    for (size_t i = 0; i < len; ++i) {
      const Hash128 h = Murmur3_128_U64(keys[base + i], seed);
      blocks[i] = mod(h.low);
      probes[i] = h.high;
      __builtin_prefetch(&slots[blocks[i] * kCmBlockSlots], 1);
    }
    for (size_t i = 0; i < len; ++i) {
      CmBlockedAddOne(&slots[blocks[i] * kCmBlockSlots], depth, cols,
                      probes[i], 1);
    }
  }
}

void CmBlockedAddWeighted(uint64_t* slots, uint64_t num_blocks, uint32_t depth,
                          uint32_t cols, uint64_t seed, const uint64_t* keys,
                          const int64_t* weights, size_t n) {
  const InvariantMod mod(num_blocks);
  constexpr size_t kChunk = 64;
  uint64_t blocks[kChunk];
  uint64_t probes[kChunk];
  for (size_t base = 0; base < n; base += kChunk) {
    const size_t len = std::min(kChunk, n - base);
    for (size_t i = 0; i < len; ++i) {
      const Hash128 h = Murmur3_128_U64(keys[base + i], seed);
      blocks[i] = mod(h.low);
      probes[i] = h.high;
      __builtin_prefetch(&slots[blocks[i] * kCmBlockSlots], 1);
    }
    for (size_t i = 0; i < len; ++i) {
      CmBlockedAddOne(&slots[blocks[i] * kCmBlockSlots], depth, cols,
                      probes[i], static_cast<uint64_t>(weights[base + i]));
    }
  }
}

void CmBlockedMin(const uint64_t* slots, uint64_t num_blocks, uint32_t depth,
                  uint32_t cols, uint64_t seed, const uint64_t* keys, size_t n,
                  uint64_t* out) {
  const InvariantMod mod(num_blocks);
  constexpr size_t kChunk = 64;
  uint64_t blocks[kChunk];
  uint64_t probes[kChunk];
  for (size_t base = 0; base < n; base += kChunk) {
    const size_t len = std::min(kChunk, n - base);
    for (size_t i = 0; i < len; ++i) {
      const Hash128 h = Murmur3_128_U64(keys[base + i], seed);
      blocks[i] = mod(h.low);
      probes[i] = h.high;
      __builtin_prefetch(&slots[blocks[i] * kCmBlockSlots], 0);
    }
    for (size_t i = 0; i < len; ++i) {
      out[base + i] = CmBlockedMinOne(&slots[blocks[i] * kCmBlockSlots], depth,
                                      cols, probes[i]);
    }
  }
}

void CsBlockedAdd(int64_t* slots, uint64_t num_blocks, uint32_t depth,
                  uint32_t cols, uint64_t seed, const uint64_t* keys,
                  const int64_t* weights, size_t n) {
  const InvariantMod mod(num_blocks);
  constexpr size_t kChunk = 64;
  uint64_t blocks[kChunk];
  uint64_t probes[kChunk];
  for (size_t base = 0; base < n; base += kChunk) {
    const size_t len = std::min(kChunk, n - base);
    for (size_t i = 0; i < len; ++i) {
      const Hash128 h = Murmur3_128_U64(keys[base + i], seed);
      blocks[i] = mod(h.low);
      probes[i] = h.high;
      __builtin_prefetch(&slots[blocks[i] * kCmBlockSlots], 1);
    }
    for (size_t i = 0; i < len; ++i) {
      CsBlockedAddOne(&slots[blocks[i] * kCmBlockSlots], depth, cols,
                      probes[i], weights == nullptr ? 1 : weights[base + i]);
    }
  }
}

double I64SumSquares(const int64_t* values, size_t n) {
  double s[4] = {0.0, 0.0, 0.0, 0.0};
  for (size_t i = 0; i < n; ++i) {
    const double v = static_cast<double>(values[i]);
    s[i & 3] += v * v;
  }
  return (s[0] + s[1]) + (s[2] + s[3]);
}

// ------------------------------------------------------------- membership

void BloomInsert(uint64_t* bits, uint64_t num_bits, int k, const uint64_t* h1,
                 const uint64_t* h2, size_t n) {
  const InvariantMod mod(num_bits);
  for (size_t i = 0; i < n; ++i) {
    uint64_t h = h1[i];
    const uint64_t step = h2[i];
    for (int j = 0; j < k; ++j) {
      const uint64_t bit = mod(h);
      bits[bit >> 6] |= uint64_t{1} << (bit & 63);
      h += step;
    }
  }
}

void BloomQuery(const uint64_t* bits, uint64_t num_bits, int k,
                const uint64_t* h1, const uint64_t* h2, size_t n,
                uint8_t* out) {
  const InvariantMod mod(num_bits);
  for (size_t i = 0; i < n; ++i) {
    uint64_t h = h1[i];
    const uint64_t step = h2[i];
    uint8_t all_set = 1;
    for (int j = 0; j < k; ++j) {
      const uint64_t bit = mod(h);
      all_set &= static_cast<uint8_t>((bits[bit >> 6] >> (bit & 63)) & 1);
      h += step;
    }
    out[i] = all_set;
  }
}

using internal::BlockedBloomProbe;
using internal::BlockedBloomTest;
using internal::kBlockedBloomWordsPerBlock;

void BlockedBloomInsert(uint64_t* words, uint64_t num_blocks, int k,
                        uint64_t seed, const uint64_t* keys, size_t n) {
  const InvariantMod mod(num_blocks);
  // Chunked: hash + block-select a run of keys, prefetch their blocks, then
  // do the probe writes once the lines are (hopefully) in flight.
  constexpr size_t kChunk = 64;
  uint64_t blocks[kChunk];
  uint64_t probes[kChunk];
  for (size_t base = 0; base < n; base += kChunk) {
    const size_t len = std::min(kChunk, n - base);
    for (size_t i = 0; i < len; ++i) {
      const Hash128 h = Murmur3_128_U64(keys[base + i], seed);
      blocks[i] = mod(h.low);
      probes[i] = h.high;
      __builtin_prefetch(&words[blocks[i] * kBlockedBloomWordsPerBlock], 1);
    }
    for (size_t i = 0; i < len; ++i) {
      BlockedBloomProbe(&words[blocks[i] * kBlockedBloomWordsPerBlock], k,
                        probes[i]);
    }
  }
}

void BlockedBloomQuery(const uint64_t* words, uint64_t num_blocks, int k,
                       uint64_t seed, const uint64_t* keys, size_t n,
                       uint8_t* out) {
  const InvariantMod mod(num_blocks);
  constexpr size_t kChunk = 64;
  uint64_t blocks[kChunk];
  uint64_t probes[kChunk];
  for (size_t base = 0; base < n; base += kChunk) {
    const size_t len = std::min(kChunk, n - base);
    for (size_t i = 0; i < len; ++i) {
      const Hash128 h = Murmur3_128_U64(keys[base + i], seed);
      blocks[i] = mod(h.low);
      probes[i] = h.high;
      __builtin_prefetch(&words[blocks[i] * kBlockedBloomWordsPerBlock], 0);
    }
    for (size_t i = 0; i < len; ++i) {
      out[base + i] = BlockedBloomTest(
          &words[blocks[i] * kBlockedBloomWordsPerBlock], k, probes[i]);
    }
  }
}

// -------------------------------------------------------------- quantiles

void SortDoubles(double* data, size_t n) { std::sort(data, data + n); }

void MergeDoubles(const double* a, size_t na, const double* b, size_t nb,
                  double* out) {
  // std::merge takes from the first range on ties, per the contract.
  std::merge(a, a + na, b, b + nb, out);
}

// ------------------------------------------------------------ elementwise

void U64Min(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] = std::min(dst[i], src[i]);
}

void U64Or(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] |= src[i];
}

void U64Add(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] += src[i];
}

void I64Add(int64_t* dst, const int64_t* src, size_t n) {
  // Unsigned wrapping add for the same reason as CsRowScatter: merging two
  // near-saturated counters must wrap like the vector variants, not be UB.
  for (size_t i = 0; i < n; ++i) {
    dst[i] = static_cast<int64_t>(static_cast<uint64_t>(dst[i]) +
                                  static_cast<uint64_t>(src[i]));
  }
}

}  // namespace

const SimdKernels& ScalarKernels() {
  static const SimdKernels table = {
      .name = "scalar",
      .mix64_batch = &Mix64Batch,
      .mix64_min = &Mix64Min,
      .murmur3_batch_u64 = &Murmur3BatchU64,
      .hll_update_hashes = &HllUpdateHashes,
      .hll_ingest = &HllIngest,
      .u8_max = &U8Max,
      .hll_harmonic_sum = &HllHarmonicSum,
      .cm_row_add = &CmRowAdd,
      .cm_row_add_weighted = &CmRowAddWeighted,
      .cm_row_min = &CmRowMin,
      .cs_row_scatter = &CsRowScatter,
      .i64_sum_squares = &I64SumSquares,
      .cm_blocked_add = &CmBlockedAdd,
      .cm_blocked_add_weighted = &CmBlockedAddWeighted,
      .cm_blocked_min = &CmBlockedMin,
      .cs_blocked_add = &CsBlockedAdd,
      .bloom_insert = &BloomInsert,
      .bloom_query = &BloomQuery,
      .blocked_bloom_insert = &BlockedBloomInsert,
      .blocked_bloom_query = &BlockedBloomQuery,
      .sort_doubles = &SortDoubles,
      .merge_doubles = &MergeDoubles,
      .u64_min = &U64Min,
      .u64_or = &U64Or,
      .u64_add = &U64Add,
      .i64_add = &I64Add,
  };
  return table;
}

}  // namespace gems::simd
