#if defined(__x86_64__) || defined(_M_X64)

#include <cstddef>
#include <cstdint>

#include "simd/kernels.h"

/// \file
/// AVX-512 kernel variants. This TU is the only one compiled with the
/// -mavx512{f,cd,dq,vl,bw} flags (see src/simd/CMakeLists.txt); dispatch.cc
/// checks __builtin_cpu_supports for every one of those subsets before
/// handing out this table, so nothing here runs on a CPU without them. When
/// the toolchain lacks the flags the stub at the bottom compiles instead
/// and dispatch falls back to the AVX2 table.
///
/// Where AVX2 had to emulate, AVX-512 has the real instruction: vpmullq
/// (64x64->64 multiply, the heart of Mix64/Murmur3), vplzcntq (per-lane
/// leading-zero count, the heart of the HLL rho computation), vpminuq
/// (unsigned 64-bit min) and vcvtqq2pd (int64 -> double). The kernels are
/// therefore shorter than their AVX2 counterparts, not just wider.
///
/// Two bit-identity rules carry over unchanged from kernels_avx2.cc:
/// scatter-style loops (register max, counter adds) stay scalar because
/// duplicate indices inside a vector carry a sequential dependency, and
/// floating-point kernels keep the scalar reference's stripe-4 association
/// (so they use 256-bit vectors — four lanes ARE the four stripes).
///
/// One uarch note, measured on Sapphire Rapids: forwarding from a 512-bit
/// store to the 64-bit reloads of an extract buffer stalls (~0.4x on the
/// Count-Min row add), while 256-bit stores forward fine. Every
/// vector-compute/scalar-scatter kernel below therefore spills indices
/// through two 256-bit stores, never one 512-bit store.

#if defined(__AVX512F__) && defined(__AVX512CD__) && defined(__AVX512DQ__) && \
    defined(__AVX512VL__) && defined(__AVX512BW__)

#include <immintrin.h>

#include <algorithm>

#include "common/bits.h"
#include "common/random.h"
#include "hash/hashed_batch.h"
#include "hash/murmur3.h"
#include "simd/internal.h"

namespace gems::simd {
namespace {

inline __m512i Splat8x64(uint64_t x) {
  return _mm512_set1_epi64(static_cast<long long>(x));
}

/// Eight lanes of Mix64 (the SplitMix64 finalizer), bit-identical to the
/// scalar gems::Mix64 — two native vpmullq instead of AVX2's six pmuludq.
inline __m512i Mix64V8(__m512i x) {
  x = _mm512_mullo_epi64(_mm512_xor_si512(x, _mm512_srli_epi64(x, 30)),
                         Splat8x64(0xBF58476D1CE4E5B9ULL));
  x = _mm512_mullo_epi64(_mm512_xor_si512(x, _mm512_srli_epi64(x, 27)),
                         Splat8x64(0x94D049BB133111EBULL));
  return _mm512_xor_si512(x, _mm512_srli_epi64(x, 31));
}

/// Eight lanes of Murmur3's FMix64 finalizer.
inline __m512i FMix64V8(__m512i k) {
  k = _mm512_xor_si512(k, _mm512_srli_epi64(k, 33));
  k = _mm512_mullo_epi64(k, Splat8x64(0xFF51AFD7ED558CCDULL));
  k = _mm512_xor_si512(k, _mm512_srli_epi64(k, 33));
  k = _mm512_mullo_epi64(k, Splat8x64(0xC4CEB9FE1A85EC53ULL));
  return _mm512_xor_si512(k, _mm512_srli_epi64(k, 33));
}

/// Eight lanes of Murmur3_128_U64: lo/hi halves for keys[0..7]. Same
/// schedule as the AVX2 Murmur3x4 with native multiply and rotate.
inline void Murmur3x8(__m512i keys, uint64_t seed, __m512i* lo, __m512i* hi) {
  const __m512i seedv = Splat8x64(seed);
  __m512i k1 = _mm512_mullo_epi64(keys, Splat8x64(murmur3_detail::kC1));
  k1 = _mm512_rol_epi64(k1, 31);
  k1 = _mm512_mullo_epi64(k1, Splat8x64(murmur3_detail::kC2));
  __m512i h1 = _mm512_xor_si512(seedv, k1);
  __m512i h2 = seedv;
  const __m512i len = Splat8x64(8);
  h1 = _mm512_xor_si512(h1, len);
  h2 = _mm512_xor_si512(h2, len);
  h1 = _mm512_add_epi64(h1, h2);
  h2 = _mm512_add_epi64(h2, h1);
  h1 = FMix64V8(h1);
  h2 = FMix64V8(h2);
  h1 = _mm512_add_epi64(h1, h2);
  h2 = _mm512_add_epi64(h2, h1);
  *lo = h1;
  *hi = h2;
}

/// Spill eight 64-bit lanes to a scalar-readable buffer through two 256-bit
/// stores (see the file comment for why not one 512-bit store).
inline void Store8(uint64_t* buf, __m512i v) {
  _mm256_store_si256(reinterpret_cast<__m256i*>(buf),
                     _mm512_castsi512_si256(v));
  _mm256_store_si256(reinterpret_cast<__m256i*>(buf + 4),
                     _mm512_extracti64x4_epi64(v, 1));
}

/// Vector Granlund-Montgomery modulo, same math as InvariantMod. The
/// multiply-high still needs 32-bit partial products (there is no vpmulhuq),
/// but q*d collapses to one vpmullq.
struct VecMod512 {
  explicit VecMod512(uint64_t divisor)
      : scalar(divisor),
        d(Splat8x64(divisor)),
        pow2((divisor & (divisor - 1)) == 0),
        mask(Splat8x64(divisor - 1)) {
    const uint64_t magic = pow2 ? 0 : ~uint64_t{0} / divisor;
    magic_lo = Splat8x64(magic & 0xFFFFFFFFULL);
    magic_hi = Splat8x64(magic >> 32);
  }

  __m512i operator()(__m512i x) const {
    if (pow2) return _mm512_and_si512(x, mask);
    const __m512i x_hi = _mm512_srli_epi64(x, 32);
    const __m512i lolo = _mm512_mul_epu32(x, magic_lo);
    const __m512i hilo = _mm512_mul_epu32(x_hi, magic_lo);
    const __m512i lohi = _mm512_mul_epu32(x, magic_hi);
    const __m512i hihi = _mm512_mul_epu32(x_hi, magic_hi);
    const __m512i low_mask = Splat8x64(0xFFFFFFFFULL);
    const __m512i t = _mm512_srli_epi64(lolo, 32);
    const __m512i u = _mm512_add_epi64(hilo, t);
    const __m512i v = _mm512_add_epi64(lohi, _mm512_and_si512(u, low_mask));
    const __m512i q = _mm512_add_epi64(
        hihi, _mm512_add_epi64(_mm512_srli_epi64(u, 32),
                               _mm512_srli_epi64(v, 32)));
    __m512i r = _mm512_sub_epi64(x, _mm512_mullo_epi64(q, d));
    const __mmask8 ge = _mm512_cmpge_epu64_mask(r, d);
    return _mm512_mask_sub_epi64(r, ge, r, d);
  }

  InvariantMod scalar;  // for tails, bit-identical by shared contract
  __m512i d;
  bool pow2;
  __m512i mask;
  __m512i magic_lo;
  __m512i magic_hi;
};

// ------------------------------------------------------------------- hash

void Mix64Batch(const uint64_t* keys, size_t n, uint64_t mixed_seed,
                uint64_t* out) {
  const __m512i seedv = Splat8x64(mixed_seed);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i a = _mm512_loadu_si512(keys + i);
    const __m512i b = _mm512_loadu_si512(keys + i + 8);
    _mm512_storeu_si512(out + i, Mix64V8(_mm512_add_epi64(a, seedv)));
    _mm512_storeu_si512(out + i + 8, Mix64V8(_mm512_add_epi64(b, seedv)));
  }
  for (; i < n; ++i) out[i] = Mix64(keys[i] + mixed_seed);
}

uint64_t Mix64Min(const uint64_t* keys, size_t n, uint64_t mixed_seed) {
  uint64_t best = ~uint64_t{0};
  const __m512i seedv = Splat8x64(mixed_seed);
  size_t i = 0;
  if (n >= 8) {
    __m512i bestv = Splat8x64(~uint64_t{0});
    for (; i + 8 <= n; i += 8) {
      const __m512i k = _mm512_loadu_si512(keys + i);
      bestv = _mm512_min_epu64(bestv, Mix64V8(_mm512_add_epi64(k, seedv)));
    }
    best = _mm512_reduce_min_epu64(bestv);
  }
  for (; i < n; ++i) best = std::min(best, Mix64(keys[i] + mixed_seed));
  return best;
}

void Murmur3BatchU64(const uint64_t* keys, size_t n, uint64_t seed,
                     uint64_t* lo, uint64_t* hi) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i k = _mm512_loadu_si512(keys + i);
    __m512i l, h;
    Murmur3x8(k, seed, &l, &h);
    _mm512_storeu_si512(lo + i, l);
    _mm512_storeu_si512(hi + i, h);
  }
  for (; i < n; ++i) {
    const Hash128 h = Murmur3_128_U64(keys[i], seed);
    lo[i] = h.low;
    hi[i] = h.high;
  }
}

// ------------------------------------------------------------ cardinality

/// (index << 8) | rho for eight hashes. vplzcntq makes rho branch-free in
/// one formula: rho = lzcnt(hash & low_mask) + shift - 63, and a masked
/// value of zero gives lzcnt = 64 = the "all low bits clear" answer of
/// shift + 1 with no special case.
inline __m512i PackedRhoIdx(__m512i h, int shift, __m512i low_mask,
                            __m512i rho_off) {
  const __m512i rho = _mm512_add_epi64(
      _mm512_lzcnt_epi64(_mm512_and_si512(h, low_mask)), rho_off);
  return _mm512_or_si512(
      _mm512_slli_epi64(_mm512_srli_epi64(h, shift), 8), rho);
}

inline void ScatterRegMax(uint8_t* regs, const uint64_t* packed, int count) {
  for (int j = 0; j < count; ++j) {
    const uint64_t w = packed[j];
    const uint8_t rho = static_cast<uint8_t>(w);
    uint8_t* reg = regs + (w >> 8);
    // Registers saturate fast, so the branch predicts not-taken and
    // repeated same-index updates skip the store entirely.
    if (rho > *reg) *reg = rho;
  }
}

void HllIngest(uint8_t* regs, int precision, const uint64_t* keys, size_t n,
               uint64_t mixed_seed) {
  const int shift = 64 - precision;
  const __m512i seedv = Splat8x64(mixed_seed);
  const __m512i low_mask = Splat8x64((uint64_t{1} << shift) - 1);
  const __m512i rho_off = Splat8x64(static_cast<uint64_t>(shift - 63));
  alignas(32) uint64_t packed[16];
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i ha =
        Mix64V8(_mm512_add_epi64(_mm512_loadu_si512(keys + i), seedv));
    const __m512i hb =
        Mix64V8(_mm512_add_epi64(_mm512_loadu_si512(keys + i + 8), seedv));
    Store8(packed, PackedRhoIdx(ha, shift, low_mask, rho_off));
    Store8(packed + 8, PackedRhoIdx(hb, shift, low_mask, rho_off));
    ScatterRegMax(regs, packed, 16);
  }
  for (; i < n; ++i) {
    const uint64_t hash = Mix64(keys[i] + mixed_seed);
    const uint32_t index = static_cast<uint32_t>(hash >> shift);
    const uint8_t rho = static_cast<uint8_t>(RankOfLeftmostOne(hash, shift));
    regs[index] = std::max(regs[index], rho);
  }
}

void HllUpdateHashes(uint8_t* regs, int precision, const uint64_t* hashes,
                     size_t n) {
  const int shift = 64 - precision;
  const __m512i low_mask = Splat8x64((uint64_t{1} << shift) - 1);
  const __m512i rho_off = Splat8x64(static_cast<uint64_t>(shift - 63));
  alignas(32) uint64_t packed[16];
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    Store8(packed, PackedRhoIdx(_mm512_loadu_si512(hashes + i), shift,
                                low_mask, rho_off));
    Store8(packed + 8, PackedRhoIdx(_mm512_loadu_si512(hashes + i + 8), shift,
                                    low_mask, rho_off));
    ScatterRegMax(regs, packed, 16);
  }
  for (; i < n; ++i) {
    const uint64_t hash = hashes[i];
    const uint32_t index = static_cast<uint32_t>(hash >> shift);
    const uint8_t rho = static_cast<uint8_t>(RankOfLeftmostOne(hash, shift));
    regs[index] = std::max(regs[index], rho);
  }
}

void U8Max(uint8_t* dst, const uint8_t* src, size_t n) {
  size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i a = _mm512_loadu_si512(dst + i);
    const __m512i b = _mm512_loadu_si512(src + i);
    _mm512_storeu_si512(dst + i, _mm512_max_epu8(a, b));
  }
  for (; i < n; ++i) dst[i] = std::max(dst[i], src[i]);
}

// -------------------------------------------------------------- frequency

void CmRowAdd(uint64_t* row, uint64_t width, const uint64_t* hashes,
              size_t n) {
  const VecMod512 mod(width);
  alignas(32) uint64_t idx[8];
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    Store8(idx, mod(_mm512_loadu_si512(hashes + i)));
    row[idx[0]] += 1;
    row[idx[1]] += 1;
    row[idx[2]] += 1;
    row[idx[3]] += 1;
    row[idx[4]] += 1;
    row[idx[5]] += 1;
    row[idx[6]] += 1;
    row[idx[7]] += 1;
  }
  for (; i < n; ++i) row[mod.scalar(hashes[i])] += 1;
}

void CmRowAddWeighted(uint64_t* row, uint64_t width, const uint64_t* hashes,
                      const int64_t* weights, size_t n) {
  const VecMod512 mod(width);
  alignas(32) uint64_t idx[8];
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    Store8(idx, mod(_mm512_loadu_si512(hashes + i)));
    for (int j = 0; j < 8; ++j) {
      row[idx[j]] += static_cast<uint64_t>(weights[i + j]);
    }
  }
  for (; i < n; ++i) {
    row[mod.scalar(hashes[i])] += static_cast<uint64_t>(weights[i]);
  }
}

void CmRowMin(const uint64_t* row, uint64_t width, const uint64_t* hashes,
              size_t n, uint64_t* out) {
  const VecMod512 mod(width);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i counters = _mm512_i64gather_epi64(
        mod(_mm512_loadu_si512(hashes + i)), row, 8);
    const __m512i prev = _mm512_loadu_si512(out + i);
    _mm512_storeu_si512(out + i, _mm512_min_epu64(prev, counters));
  }
  for (; i < n; ++i) {
    out[i] = std::min(out[i], row[mod.scalar(hashes[i])]);
  }
}

using internal::CmBlockedAddOne;
using internal::CmBlockedMinOne;
using internal::CsBlockedAddOne;
using internal::kCmBlockSlots;

/// Hash + block-select phase shared by the blocked frequency kernels:
/// 8-wide Murmur3 + vector modulo into the chunk-local arrays (blocks via
/// Store8 because the probe loop reloads them as scalars), scalar tail
/// bit-identical by the shared InvariantMod contract.
inline void CmHashBlocksChunk(const uint64_t* keys, size_t len, uint64_t seed,
                              const VecMod512& mod, uint64_t* blocks,
                              uint64_t* probes) {
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    __m512i lo, hi;
    Murmur3x8(_mm512_loadu_si512(keys + i), seed, &lo, &hi);
    Store8(blocks + i, mod(lo));
    _mm512_store_si512(probes + i, hi);
  }
  for (; i < len; ++i) {
    const Hash128 h = Murmur3_128_U64(keys[i], seed);
    blocks[i] = mod.scalar(h.low);
    probes[i] = h.high;
  }
}

void CmBlockedAdd(uint64_t* slots, uint64_t num_blocks, uint32_t depth,
                  uint32_t cols, uint64_t seed, const uint64_t* keys,
                  size_t n) {
  const VecMod512 mod(num_blocks);
  constexpr size_t kChunk = 64;
  alignas(64) uint64_t blocks[kChunk];
  alignas(64) uint64_t probes[kChunk];
  for (size_t base = 0; base < n; base += kChunk) {
    const size_t len = std::min(kChunk, n - base);
    CmHashBlocksChunk(keys + base, len, seed, mod, blocks, probes);
    for (size_t i = 0; i < len; ++i) {
      __builtin_prefetch(&slots[blocks[i] * kCmBlockSlots], 1);
    }
    for (size_t i = 0; i < len; ++i) {
      CmBlockedAddOne(&slots[blocks[i] * kCmBlockSlots], depth, cols,
                      probes[i], 1);
    }
  }
}

void CmBlockedAddWeighted(uint64_t* slots, uint64_t num_blocks, uint32_t depth,
                          uint32_t cols, uint64_t seed, const uint64_t* keys,
                          const int64_t* weights, size_t n) {
  const VecMod512 mod(num_blocks);
  constexpr size_t kChunk = 64;
  alignas(64) uint64_t blocks[kChunk];
  alignas(64) uint64_t probes[kChunk];
  for (size_t base = 0; base < n; base += kChunk) {
    const size_t len = std::min(kChunk, n - base);
    CmHashBlocksChunk(keys + base, len, seed, mod, blocks, probes);
    for (size_t i = 0; i < len; ++i) {
      __builtin_prefetch(&slots[blocks[i] * kCmBlockSlots], 1);
    }
    for (size_t i = 0; i < len; ++i) {
      CmBlockedAddOne(&slots[blocks[i] * kCmBlockSlots], depth, cols,
                      probes[i], static_cast<uint64_t>(weights[base + i]));
    }
  }
}

void CmBlockedMin(const uint64_t* slots, uint64_t num_blocks, uint32_t depth,
                  uint32_t cols, uint64_t seed, const uint64_t* keys, size_t n,
                  uint64_t* out) {
  const VecMod512 mod(num_blocks);
  constexpr size_t kChunk = 64;
  alignas(64) uint64_t blocks[kChunk];
  alignas(64) uint64_t probes[kChunk];
  for (size_t base = 0; base < n; base += kChunk) {
    const size_t len = std::min(kChunk, n - base);
    CmHashBlocksChunk(keys + base, len, seed, mod, blocks, probes);
    for (size_t i = 0; i < len; ++i) {
      __builtin_prefetch(&slots[blocks[i] * kCmBlockSlots], 0);
    }
    for (size_t i = 0; i < len; ++i) {
      out[base + i] = CmBlockedMinOne(&slots[blocks[i] * kCmBlockSlots], depth,
                                      cols, probes[i]);
    }
  }
}

void CsBlockedAdd(int64_t* slots, uint64_t num_blocks, uint32_t depth,
                  uint32_t cols, uint64_t seed, const uint64_t* keys,
                  const int64_t* weights, size_t n) {
  const VecMod512 mod(num_blocks);
  constexpr size_t kChunk = 64;
  alignas(64) uint64_t blocks[kChunk];
  alignas(64) uint64_t probes[kChunk];
  for (size_t base = 0; base < n; base += kChunk) {
    const size_t len = std::min(kChunk, n - base);
    CmHashBlocksChunk(keys + base, len, seed, mod, blocks, probes);
    for (size_t i = 0; i < len; ++i) {
      __builtin_prefetch(&slots[blocks[i] * kCmBlockSlots], 1);
    }
    for (size_t i = 0; i < len; ++i) {
      CsBlockedAddOne(&slots[blocks[i] * kCmBlockSlots], depth, cols,
                      probes[i], weights == nullptr ? 1 : weights[base + i]);
    }
  }
}

double I64SumSquares(const int64_t* values, size_t n) {
  // vcvtqq2pd rounds to nearest exactly like the scalar cast. 256-bit
  // vectors on purpose: the four lanes ARE the scalar reference's four
  // stripes, so the additions associate identically.
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_cvtepi64_pd(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i)));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(v, v));
  }
  alignas(32) double s[4];
  _mm256_store_pd(s, acc);
  for (; i < n; ++i) {
    const double v = static_cast<double>(values[i]);
    s[i & 3] += v * v;
  }
  return (s[0] + s[1]) + (s[2] + s[3]);
}

// ------------------------------------------------------------- membership

void BlockedBloomInsert(uint64_t* words, uint64_t num_blocks, int k,
                        uint64_t seed, const uint64_t* keys, size_t n) {
  using internal::kBlockedBloomWordsPerBlock;
  const VecMod512 mod(num_blocks);
  constexpr size_t kChunk = 64;
  alignas(64) uint64_t blocks[kChunk];
  alignas(64) uint64_t probes[kChunk];
  for (size_t base = 0; base < n; base += kChunk) {
    const size_t len = std::min(kChunk, n - base);
    size_t i = 0;
    for (; i + 8 <= len; i += 8) {
      __m512i lo, hi;
      Murmur3x8(_mm512_loadu_si512(keys + base + i), seed, &lo, &hi);
      Store8(blocks + i, mod(lo));
      _mm512_store_si512(probes + i, hi);
    }
    for (; i < len; ++i) {
      const Hash128 h = Murmur3_128_U64(keys[base + i], seed);
      blocks[i] = mod.scalar(h.low);
      probes[i] = h.high;
    }
    for (i = 0; i < len; ++i) {
      __builtin_prefetch(&words[blocks[i] * kBlockedBloomWordsPerBlock], 1);
    }
    for (i = 0; i < len; ++i) {
      internal::BlockedBloomProbe(
          &words[blocks[i] * kBlockedBloomWordsPerBlock], k, probes[i]);
    }
  }
}

void BlockedBloomQuery(const uint64_t* words, uint64_t num_blocks, int k,
                       uint64_t seed, const uint64_t* keys, size_t n,
                       uint8_t* out) {
  using internal::kBlockedBloomWordsPerBlock;
  const VecMod512 mod(num_blocks);
  constexpr size_t kChunk = 64;
  alignas(64) uint64_t blocks[kChunk];
  alignas(64) uint64_t probes[kChunk];
  for (size_t base = 0; base < n; base += kChunk) {
    const size_t len = std::min(kChunk, n - base);
    size_t i = 0;
    for (; i + 8 <= len; i += 8) {
      __m512i lo, hi;
      Murmur3x8(_mm512_loadu_si512(keys + base + i), seed, &lo, &hi);
      Store8(blocks + i, mod(lo));
      _mm512_store_si512(probes + i, hi);
    }
    for (; i < len; ++i) {
      const Hash128 h = Murmur3_128_U64(keys[base + i], seed);
      blocks[i] = mod.scalar(h.low);
      probes[i] = h.high;
    }
    for (i = 0; i < len; ++i) {
      __builtin_prefetch(&words[blocks[i] * kBlockedBloomWordsPerBlock], 0);
    }
    for (i = 0; i < len; ++i) {
      out[base + i] = internal::BlockedBloomTest(
          &words[blocks[i] * kBlockedBloomWordsPerBlock], k, probes[i]);
    }
  }
}

// ------------------------------------------------------------ elementwise

void U64Min(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i a = _mm512_loadu_si512(dst + i);
    const __m512i b = _mm512_loadu_si512(src + i);
    _mm512_storeu_si512(dst + i, _mm512_min_epu64(a, b));
  }
  for (; i < n; ++i) dst[i] = std::min(dst[i], src[i]);
}

void U64Or(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i a = _mm512_loadu_si512(dst + i);
    const __m512i b = _mm512_loadu_si512(src + i);
    _mm512_storeu_si512(dst + i, _mm512_or_si512(a, b));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

void U64Add(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i a = _mm512_loadu_si512(dst + i);
    const __m512i b = _mm512_loadu_si512(src + i);
    _mm512_storeu_si512(dst + i, _mm512_add_epi64(a, b));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

void I64Add(int64_t* dst, const int64_t* src, size_t n) {
  U64Add(reinterpret_cast<uint64_t*>(dst),
         reinterpret_cast<const uint64_t*>(src), n);
}

}  // namespace

const SimdKernels* Avx512Kernels() {
  // Start from the AVX2 table: kernels with no profitable 512-bit form
  // (Bloom flat-array probes, the gather-heavy query paths it already
  // handles well, sorts) inherit the best narrower implementation.
  static const SimdKernels table = [] {
    const SimdKernels* base = Avx2Kernels();
    SimdKernels t = base != nullptr ? *base : ScalarKernels();
    t.name = "avx512";
    t.mix64_batch = &Mix64Batch;
    t.mix64_min = &Mix64Min;
    t.murmur3_batch_u64 = &Murmur3BatchU64;
    t.hll_ingest = &HllIngest;
    t.hll_update_hashes = &HllUpdateHashes;
    t.u8_max = &U8Max;
    t.cm_row_add = &CmRowAdd;
    t.cm_row_add_weighted = &CmRowAddWeighted;
    t.cm_row_min = &CmRowMin;
    t.i64_sum_squares = &I64SumSquares;
    t.cm_blocked_add = &CmBlockedAdd;
    t.cm_blocked_add_weighted = &CmBlockedAddWeighted;
    t.cm_blocked_min = &CmBlockedMin;
    t.cs_blocked_add = &CsBlockedAdd;
    t.blocked_bloom_insert = &BlockedBloomInsert;
    t.blocked_bloom_query = &BlockedBloomQuery;
    t.u64_min = &U64Min;
    t.u64_or = &U64Or;
    t.u64_add = &U64Add;
    t.i64_add = &I64Add;
    return t;
  }();
  return &table;
}

}  // namespace gems::simd

#else  // toolchain cannot target AVX-512

namespace gems::simd {
const SimdKernels* Avx512Kernels() { return nullptr; }
}  // namespace gems::simd

#endif  // AVX-512 toolchain support

#endif  // x86-64
