#if defined(__aarch64__)

#include <arm_neon.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "simd/kernels.h"

/// \file
/// NEON kernel variants (aarch64). NEON lacks a 64x64 vector multiply, so
/// the mixing-heavy kernels keep the scalar reference (which aarch64
/// compilers already schedule well); the wins here are the wide
/// elementwise merge kernels. Every function must be bit-identical to
/// kernels_scalar.cc.

namespace gems::simd {
namespace {

void U8Max(uint8_t* dst, const uint8_t* src, size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    vst1q_u8(dst + i, vmaxq_u8(vld1q_u8(dst + i), vld1q_u8(src + i)));
  }
  for (; i < n; ++i) dst[i] = std::max(dst[i], src[i]);
}

void U64Min(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t a = vld1q_u64(dst + i);
    const uint64x2_t b = vld1q_u64(src + i);
    // No vminq_u64; select b where a > b.
    vst1q_u64(dst + i, vbslq_u64(vcgtq_u64(a, b), b, a));
  }
  for (; i < n; ++i) dst[i] = std::min(dst[i], src[i]);
}

void U64Or(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vorrq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

void U64Add(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vaddq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

void I64Add(int64_t* dst, const int64_t* src, size_t n) {
  U64Add(reinterpret_cast<uint64_t*>(dst),
         reinterpret_cast<const uint64_t*>(src), n);
}

}  // namespace

const SimdKernels* NeonKernels() {
  static const SimdKernels table = [] {
    SimdKernels t = ScalarKernels();
    t.name = "neon";
    t.u8_max = &U8Max;
    t.u64_min = &U64Min;
    t.u64_or = &U64Or;
    t.u64_add = &U64Add;
    t.i64_add = &I64Add;
    return t;
  }();
  return &table;
}

}  // namespace gems::simd

#endif  // aarch64
