#ifndef GEMS_SIMD_DISPATCH_H_
#define GEMS_SIMD_DISPATCH_H_

#include <string>

#include "simd/kernels.h"

/// \file
/// Startup kernel-table selection. The process picks one SimdKernels table
/// exactly once — GEMS_FORCE_SCALAR wins, then the best table the CPU
/// supports (AVX2 on x86-64, NEON on aarch64), else the scalar reference —
/// and every sketch hot loop calls through `Kernels()`. There is no other
/// CPU-feature-detection path in the codebase.

namespace gems::simd {

/// What dispatch decided at startup, for bench/caps attribution.
struct DispatchInfo {
  /// Selected table name: "scalar", "avx2", "neon".
  const char* level;
  /// Space-separated ISA features the CPU reports (x86 only; empty
  /// elsewhere). Attributes BENCH_*.json artifacts to hardware.
  std::string cpu_features;
  /// True when GEMS_FORCE_SCALAR overrode a faster table.
  bool forced_scalar;
};

/// The active kernel table. Selection happens on first call and is then a
/// single atomic load; safe to call from any thread.
const SimdKernels& Kernels();

/// The startup selection record (not affected by ForceScalarForTesting).
const DispatchInfo& Dispatch();

/// Name of the table Kernels() currently returns (reflects the test hook).
const char* ActiveLevel();

/// `{"level": ..., "cpu_features": ..., "forced_scalar": ...}` — the object
/// every bench --*_json output embeds under "dispatch".
std::string DispatchJson();

/// Bench/test hook: while forced, Kernels() returns the scalar table
/// regardless of the startup selection. The SIMD bench column measures
/// scalar-vs-dispatched in one process with this; parity tests use it to
/// cross-check. Not a public API.
void ForceScalarForTesting(bool force);

}  // namespace gems::simd

#endif  // GEMS_SIMD_DISPATCH_H_
