// libFuzzer harness for the gemsd wire protocol: arbitrary bytes go
// through the frame splitter and both body decoders, then any decode
// that *succeeds* is re-encoded and decoded again (the round trip must
// be a fixpoint). The protocol module's contract: hostile input yields
// a typed Status — never a crash, OOB read, or unbounded allocation.
// Run under ASan/UBSan; see fuzz/CMakeLists.txt.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "server/protocol.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const gems::ByteSpan bytes(data, size);

  // Frame splitting, at the default cap and at a tiny cap that makes the
  // oversized-length rejection path hot.
  for (uint32_t cap : {gems::server::kDefaultMaxFrameBytes, 256u}) {
    gems::ByteSpan body;
    size_t consumed = 0;
    (void)gems::server::SplitFrame(bytes, cap, &body, &consumed);
  }

  // The input as a raw request body. A successful decode may carry the
  // windowed-CREATE tail (has_timed_params) or an UPDATE timestamp
  // column; the re-encode fixpoint must hold for those shapes too.
  gems::server::Request request;
  std::vector<uint64_t> items_scratch;
  std::vector<uint64_t> timestamps_scratch;
  if (gems::server::DecodeRequest(bytes, &request, &items_scratch,
                                  &timestamps_scratch)
          .ok()) {
    std::vector<uint8_t> reencoded;
    gems::server::EncodeRequest(request, &reencoded);
    gems::ByteSpan body;
    size_t consumed = 0;
    if (gems::server::SplitFrame(reencoded,
                                 gems::server::kDefaultMaxFrameBytes, &body,
                                 &consumed)
            .ok() &&
        consumed == reencoded.size()) {
      gems::server::Request again;
      std::vector<uint64_t> again_scratch;
      std::vector<uint64_t> again_ts_scratch;
      if (!gems::server::DecodeRequest(body, &again, &again_scratch,
                                       &again_ts_scratch)
               .ok()) {
        __builtin_trap();  // Encode of a decoded request must re-decode.
      }
      if (again.has_timed_params != request.has_timed_params ||
          again.timestamps.size() != request.timestamps.size()) {
        __builtin_trap();  // Timed tails must survive the round trip.
      }
    }
  }

  // The input as a raw response body.
  gems::server::Response response;
  if (gems::server::DecodeResponse(bytes, &response).ok()) {
    std::vector<uint8_t> reencoded;
    gems::server::EncodeResponse(response, &reencoded);
    gems::ByteSpan body;
    size_t consumed = 0;
    if (gems::server::SplitFrame(reencoded,
                                 gems::server::kDefaultMaxFrameBytes, &body,
                                 &consumed)
            .ok() &&
        consumed == reencoded.size()) {
      gems::server::Response again;
      if (!gems::server::DecodeResponse(body, &again).ok()) {
        __builtin_trap();
      }
    }
  }
  return 0;
}
