// libFuzzer harness for the zero-copy wrap stack: arbitrary bytes go
// through SketchView::Wrap / WrapTrusted, the registry's type-erased
// Wrap + Materialize, and MergeFromView on a live accumulator. The
// contract under test is the wire module's: hostile input yields a
// Status (kCorruption, kInvalidArgument), never a crash, OOB read, or
// silently-garbage sketch. Run under ASan/UBSan; see fuzz/CMakeLists.txt.

#include <cstddef>
#include <cstdint>

#include "cardinality/hyperloglog.h"
#include "core/registry.h"
#include "core/view.h"
#include "frequency/count_min.h"

namespace {

// One live accumulator per family with an in-place MergeFromView, so the
// fuzzer exercises the payload walks (raw register block, varint counter
// grid) and their atomicity guards, not just envelope validation.
gems::HyperLogLog& HllAccumulator() {
  static gems::HyperLogLog hll(10, 7);
  return hll;
}

gems::CountMinSketch& CmAccumulator() {
  static gems::CountMinSketch cm(64, 3, 7);
  return cm;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  gems::RegisterBuiltinSketches();
  const gems::ByteSpan bytes(data, size);

  // Untyped wrap, both verification levels.
  gems::Result<gems::SketchView> view = gems::SketchView::Wrap(bytes);
  gems::Result<gems::SketchView> trusted = gems::SketchView::WrapTrusted(bytes);
  for (const auto* v : {&view, &trusted}) {
    if (!v->ok()) continue;
    (void)v->value().type_name();
    (void)v->value().payload();
  }

  // Type-erased wrap + materialize through the registry.
  gems::Result<gems::AnySketchView> any =
      gems::SketchRegistry::Global().Wrap(bytes);
  if (any.ok()) {
    gems::Result<gems::AnySketch> sketch = any.value().Materialize();
    if (sketch.ok()) (void)sketch.value().EstimateSummary();
  }

  // Typed merge-from-view into live accumulators. Type confusion, shape
  // mismatches, truncation and over-long lengths must all come back as
  // Status; WrapTrusted additionally feeds payloads whose checksum was
  // never checked, so the structural bounds checks stand alone.
  for (const auto* v : {&view, &trusted}) {
    if (!v->ok()) continue;
    auto hll_view =
        gems::View<gems::HyperLogLog>::FromSketchView(v->value());
    if (hll_view.ok()) {
      (void)HllAccumulator().MergeFromView(hll_view.value());
    }
    auto cm_view =
        gems::View<gems::CountMinSketch>::FromSketchView(v->value());
    if (cm_view.ok()) {
      (void)CmAccumulator().MergeFromView(cm_view.value());
    }
  }
  return 0;
}
